//! Fault-injection suite: prove the pipeline is fault-isolated, not
//! merely fault-free on happy paths.
//!
//! Two fault families, per the robustness design (DESIGN.md):
//!
//! * **Injected panics** — the `failpoint` feature arms a named site
//!   inside the grid's pooled fit jobs; the suite asserts a detonation
//!   surfaces as `PipelineError::Pool` carrying the *lowest* failing
//!   job index, identically at 1, 2 and 8 workers, and that the pool
//!   leaks no threads and stays usable afterwards.
//! * **Corrupted inputs** — sample CSVs with out-of-domain cells go
//!   through the validating ingest: strict mode names the first bad
//!   row, lenient mode quarantines exactly the corrupted rows and the
//!   grid completes on the clean remainder.
//!
//! Failpoints are process-global, so every test that arms one runs
//! under a single mutex with the default panic hook silenced.

use msaw_cohort::validate::ViolationReason;
use msaw_cohort::{generate, CohortConfig, CohortData};
use msaw_core::{grid, Approach, ExperimentConfig, PipelineError};
use msaw_parallel::failpoint;
use msaw_preprocess::{
    build_samples, read_sample_csv, FeaturePanel, IngestMode, OutcomeKind, PipelineConfig,
    SampleError, SampleSet,
};
use std::io::Cursor;
use std::sync::Mutex;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Serialize failpoint-armed tests and silence the default panic hook
/// while injected panics fly (they are caught by the pool, but the
/// hook would still spam stderr).
fn with_faults<R>(f: impl FnOnce() -> R) -> R {
    static FAULT_LOCK: Mutex<()> = Mutex::new(());
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::disarm_all();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    failpoint::disarm_all();
    out
}

fn cohort() -> CohortData {
    generate(&CohortConfig::small(42))
}

fn qol_set(data: &CohortData) -> SampleSet {
    let cfg = PipelineConfig::default();
    let panel = FeaturePanel::build(data, &cfg);
    build_samples(data, &panel, OutcomeKind::Qol, &cfg)
}

/// This process's live thread count (the suite only runs on Linux CI,
/// where /proc is authoritative).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
        })
        .and_then(|v| v.parse().ok())
        .expect("readable /proc/self/status")
}

#[test]
fn injected_panic_is_the_same_typed_error_at_every_worker_count() {
    with_faults(|| {
        let data = cohort();
        let cfg = ExperimentConfig::fast();
        let mut seen: Vec<PipelineError> = Vec::new();
        for workers in WORKER_COUNTS {
            failpoint::disarm_all();
            // Two armed jobs: the pool must drain and report the lower
            // index no matter which worker detonates first.
            failpoint::arm("grid_fit", 5);
            failpoint::arm("grid_fit", 17);
            let err = grid::try_run_full_grid_on(workers, &data, &cfg)
                .expect_err("armed failpoints must fail the grid");
            match &err {
                PipelineError::Pool(p) => {
                    assert_eq!(p.job, 5, "workers={workers}");
                    assert!(p.message.contains("failpoint `grid_fit` fired at job 5"), "{p}");
                }
                other => panic!("expected a pool error, got {other}"),
            }
            seen.push(err);
        }
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "error must be identical at every worker count: {seen:?}"
        );
    });
}

#[test]
fn pool_survives_faults_with_no_thread_leaks_and_clean_reruns() {
    with_faults(|| {
        let data = cohort();
        let cfg = ExperimentConfig::fast();
        let threads_before = thread_count();
        for round in 0..3 {
            failpoint::disarm_all();
            failpoint::arm("grid_fit", round);
            let err = grid::try_run_full_grid_on(8, &data, &cfg).unwrap_err();
            assert!(matches!(err, PipelineError::Pool(_)));
        }
        failpoint::disarm_all();
        // Scoped workers all joined: nothing left running.
        assert_eq!(thread_count(), threads_before, "worker threads leaked");
        // And the pool is not poisoned: clean runs complete and agree
        // bit-for-bit at every worker count.
        let baseline = grid::try_run_full_grid_on(1, &data, &cfg).unwrap();
        assert_eq!(baseline.len(), 12);
        for workers in WORKER_COUNTS {
            let got = grid::try_run_full_grid_on(workers, &data, &cfg).unwrap();
            assert_eq!(got.len(), baseline.len());
            for (a, b) in got.iter().zip(&baseline) {
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.regression, b.regression, "workers={workers}");
                assert_eq!(a.classification, b.classification, "workers={workers}");
                assert_eq!(a.cv_scores, b.cv_scores, "workers={workers}");
            }
        }
    });
}

/// Corrupt one cell of one data row of an exported sample CSV.
fn corrupt(csv: &[u8], data_row: usize, column: &str, value: &str) -> Vec<u8> {
    let text = std::str::from_utf8(csv).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let col = lines[0].split(',').position(|c| c == column).unwrap();
    let mut cells: Vec<String> = lines[1 + data_row].split(',').map(String::from).collect();
    cells[col] = value.to_string();
    lines[1 + data_row] = cells.join(",");
    (lines.join("\n") + "\n").into_bytes()
}

fn exported_csv(set: &SampleSet) -> Vec<u8> {
    let mut buf = Vec::new();
    msaw_tabular::csv::write_csv(&set.to_frame(), &mut buf).unwrap();
    buf
}

#[test]
fn lenient_ingest_quarantines_exactly_the_corrupted_rows_and_the_grid_completes() {
    let data = cohort();
    let set = qol_set(&data);
    let csv = exported_csv(&set);
    let bad = corrupt(&corrupt(&csv, 4, "label_QoL", "3.5"), 9, "steps_monthly_mean", "-250");

    let got = read_sample_csv(Cursor::new(&bad), IngestMode::Lenient).unwrap();
    let report = got.quarantine.expect("lenient mode always reports");
    assert_eq!(
        report.quarantined,
        vec![(4, ViolationReason::VasOutOfRange), (9, ViolationReason::NegativeActivity)]
    );
    assert_eq!(got.set.len(), set.len() - 2);

    // The clean remainder still carries a full experiment.
    let r = msaw_core::try_run_variant(
        &got.set,
        Approach::DataDriven,
        false,
        &ExperimentConfig::fast(),
    )
    .expect("grid must complete on the quarantined-clean subset");
    assert!(r.primary_metric().is_finite());
    assert_eq!(r.n_train + r.n_test, set.len() - 2);
}

#[test]
fn strict_ingest_names_the_first_corrupted_row() {
    let data = cohort();
    let csv = exported_csv(&qol_set(&data));
    let bad = corrupt(&corrupt(&csv, 11, "label_QoL", "2.0"), 3, "sleep_hours_monthly_mean", "-1");
    let err = read_sample_csv(Cursor::new(&bad), IngestMode::Strict).unwrap_err();
    match err {
        SampleError::Validation(msaw_cohort::validate::ValidateError::Violation(v)) => {
            assert_eq!(v.row, 3, "strict mode must report the lowest bad row");
            assert_eq!(v.reason, ViolationReason::NegativeActivity);
        }
        other => panic!("expected a strict violation, got {other}"),
    }
}

#[test]
fn clean_ingest_feeds_the_grid_identically_to_the_in_memory_set() {
    // End-to-end sanity for the no-fault path: parse → validate → grid
    // must agree with the in-memory pipeline bit for bit.
    let data = cohort();
    let set = qol_set(&data);
    let csv = exported_csv(&set);
    let cfg = ExperimentConfig::fast();

    let got = read_sample_csv(Cursor::new(&csv), IngestMode::Strict).unwrap();
    let from_disk =
        msaw_core::try_run_variant(&got.set, Approach::DataDriven, false, &cfg).unwrap();
    let in_memory = msaw_core::try_run_variant(&set, Approach::DataDriven, false, &cfg).unwrap();
    assert_eq!(from_disk.cv_scores, in_memory.cv_scores);
    assert_eq!(from_disk.regression, in_memory.regression);
}
