//! Property-based tests (proptest) over the core invariants of the
//! learners, the interpreter, the metrics and the data pipeline.

use mysawh_repro::gbdt::{Booster, Params, TreeMethod};
use mysawh_repro::metrics::{
    kfold, mae, one_minus_mape, rmse, stratified_kfold, BoxStats, ConfusionMatrix,
};
use mysawh_repro::preprocess::interpolate;
use mysawh_repro::shap::TreeExplainer;
use mysawh_repro::tabular::Matrix;
use proptest::prelude::*;

/// A small random regression dataset: values in a sane range, a target
/// correlated with feature 0.
fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (8usize..40, 1usize..5).prop_flat_map(|(rows, cols)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![4 => -10.0..10.0f64, 1 => Just(f64::NAN)],
                    cols,
                ),
                rows,
            ),
            proptest::collection::vec(-5.0..5.0f64, rows),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn training_always_yields_finite_predictions((rows, noise) in dataset()) {
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows
            .iter()
            .zip(&noise)
            .map(|(r, n)| if r[0].is_nan() { *n } else { r[0] + n })
            .collect();
        let params = Params { n_estimators: 5, max_depth: 3, ..Params::regression() };
        let model = Booster::train(&params, &x, &y).unwrap();
        for p in model.predict(&x) {
            prop_assert!(p.is_finite());
        }
        for t in model.trees() {
            prop_assert!(t.validate(), "structurally invalid tree");
        }
    }

    #[test]
    fn shap_efficiency_axiom_on_random_models((rows, noise) in dataset()) {
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows
            .iter()
            .zip(&noise)
            .map(|(r, n)| if r[0].is_nan() { *n } else { 2.0 * r[0] + n })
            .collect();
        let params = Params { n_estimators: 4, max_depth: 3, ..Params::regression() };
        let model = Booster::train(&params, &x, &y).unwrap();
        let explainer = TreeExplainer::new(&model);
        for i in 0..x.nrows().min(5) {
            let exp = explainer.shap_values_row(x.row(i));
            let total = exp.base_value + exp.values.iter().sum::<f64>();
            prop_assert!(
                (total - exp.prediction).abs() < 1e-7,
                "Σφ + base = {total} but prediction = {}",
                exp.prediction
            );
        }
    }

    #[test]
    fn model_serialisation_round_trips((rows, noise) in dataset()) {
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().zip(&noise).map(|(r, n)| r.len() as f64 + n).collect();
        let params = Params {
            n_estimators: 3,
            tree_method: TreeMethod::Hist { max_bins: 16 },
            ..Params::regression()
        };
        let model = Booster::train(&params, &x, &y).unwrap();
        let decoded = mysawh_repro::gbdt::serialize::decode(
            &mysawh_repro::gbdt::serialize::encode(&model),
        ).unwrap();
        prop_assert_eq!(model, decoded);
    }

    #[test]
    fn interpolation_never_extrapolates(
        values in proptest::collection::vec(
            prop_oneof![2 => 0.0..10.0f64, 1 => Just(f64::NAN)], 1..60),
        max_gap in 0usize..10,
    ) {
        let series: Vec<Option<f64>> = values
            .iter()
            .map(|&v| if v.is_nan() { None } else { Some(v) })
            .collect();
        let out = interpolate(&series, max_gap);
        let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if present.is_empty() {
            prop_assert!(out.iter().all(|v| v.is_nan()));
        } else {
            let lo = present.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (i, &v) in out.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "slot {i} = {v} outside [{lo},{hi}]");
                // Originally present values must never change.
                if !values[i].is_nan() {
                    prop_assert_eq!(v, values[i]);
                }
            }
        }
    }

    #[test]
    fn regression_metric_identities(
        pairs in proptest::collection::vec((0.1..10.0f64, 0.0..10.0f64), 1..50)
    ) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert!(mae(&t, &p) >= 0.0);
        prop_assert!(rmse(&t, &p) + 1e-12 >= mae(&t, &p), "RMSE must dominate MAE");
        let score = one_minus_mape(&t, &p);
        prop_assert!((0.0..=1.0).contains(&score));
        prop_assert_eq!(mae(&t, &t), 0.0);
        prop_assert_eq!(one_minus_mape(&t, &t), 1.0);
    }

    #[test]
    fn confusion_matrix_counts_are_conserved(
        labels in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)
    ) {
        let t: Vec<bool> = labels.iter().map(|l| l.0).collect();
        let p: Vec<bool> = labels.iter().map(|l| l.1).collect();
        let m = ConfusionMatrix::from_labels(&t, &p);
        prop_assert_eq!(m.total(), t.len());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        let r = m.report();
        for v in [r.precision_true, r.precision_false, r.recall_true,
                  r.recall_false, r.f1_true, r.f1_false] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn kfold_is_always_a_partition(n in 4usize..120, seed in any::<u64>()) {
        let k = 2 + (seed as usize % 3).min(n - 2);
        let folds = kfold(n, k.min(n), seed);
        let mut seen = vec![false; n];
        for fold in &folds {
            for &i in &fold.validation {
                prop_assert!(!seen[i], "row {i} validated twice");
                seen[i] = true;
            }
            prop_assert_eq!(fold.train.len() + fold.validation.len(), n);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn stratified_folds_balance_positives(
        labels in proptest::collection::vec(any::<bool>(), 20..200),
        seed in any::<u64>(),
    ) {
        let k = 4;
        let folds = stratified_kfold(&labels, k, seed);
        let total_pos = labels.iter().filter(|&&l| l).count();
        for fold in &folds {
            let pos = fold.validation.iter().filter(|&&i| labels[i]).count();
            // Round-robin dealing bounds each fold's share tightly.
            prop_assert!(pos <= total_pos / k + 1);
        }
    }

    #[test]
    fn boxstats_orderings_hold(values in proptest::collection::vec(-100.0..100.0f64, 1..200)) {
        let b = BoxStats::of(&values).unwrap();
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert!(b.whisker_low >= b.min - 1e-9);
        prop_assert!(b.whisker_high <= b.max + 1e-9);
        prop_assert_eq!(b.count, values.len());
    }

    #[test]
    fn hist_and_exact_agree_on_few_distinct_values(
        codes in proptest::collection::vec(0u8..4, 16..64),
        noise in proptest::collection::vec(-0.1..0.1f64, 64),
    ) {
        // With ≤4 distinct values per feature, hist cut points are the
        // exact midpoints, so the two methods must build identical trees.
        let rows: Vec<Vec<f64>> = codes.iter().map(|&c| vec![c as f64]).collect();
        let y: Vec<f64> = codes
            .iter()
            .zip(&noise)
            .map(|(&c, n)| c as f64 * 1.5 + n)
            .collect();
        let x = Matrix::from_rows(&rows);
        let exact = Booster::train(
            &Params { n_estimators: 4, ..Params::regression() }, &x, &y).unwrap();
        let hist = Booster::train(
            &Params {
                n_estimators: 4,
                tree_method: TreeMethod::Hist { max_bins: 64 },
                ..Params::regression()
            }, &x, &y).unwrap();
        for i in 0..x.nrows() {
            prop_assert!((exact.predict_row(x.row(i)) - hist.predict_row(x.row(i))).abs() < 1e-9);
        }
    }
}
