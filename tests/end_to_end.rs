//! End-to-end integration: raw synthetic cohort → QA pipeline → trained
//! models → metrics → SHAP explanations, across every workspace crate.

use mysawh_repro::cohort::{generate, CohortConfig};
use mysawh_repro::core::experiment::fit_final_model;
use mysawh_repro::core::interpret::{explain_row, global_ranking};
use mysawh_repro::core::{run_variant, Approach, ExperimentConfig};
use mysawh_repro::kd::attach_fi;
use mysawh_repro::preprocess::{build_samples, FeaturePanel, OutcomeKind};
use mysawh_repro::shap::TreeExplainer;

fn fast_setup() -> (mysawh_repro::cohort::CohortData, ExperimentConfig, FeaturePanel) {
    let data = generate(&CohortConfig::small(7));
    let cfg = ExperimentConfig::fast();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    (data, cfg, panel)
}

#[test]
fn pipeline_runs_for_every_outcome() {
    let (data, cfg, panel) = fast_setup();
    for outcome in OutcomeKind::ALL {
        let set = build_samples(&data, &panel, outcome, &cfg.pipeline);
        assert!(set.len() > 100, "{}: only {} samples", outcome.name(), set.len());
        let result = run_variant(&set, Approach::DataDriven, false, &cfg);
        let metric = result.primary_metric();
        assert!((0.0..=1.0).contains(&metric), "{}: metric {metric} out of range", outcome.name());
    }
}

#[test]
fn shap_local_accuracy_holds_on_the_real_pipeline() {
    // The TreeSHAP efficiency axiom must survive the full stack:
    // missing values, FI column, real monthly aggregates.
    let (data, cfg, panel) = fast_setup();
    let set = attach_fi(&build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline), &data);
    let model = fit_final_model(&set, &cfg);
    let explainer = TreeExplainer::new(&model);
    for row in (0..set.len()).step_by(37) {
        let exp = explainer.shap_values_row(set.features.row(row));
        let reconstructed = exp.base_value + exp.values.iter().sum::<f64>();
        assert!(
            (reconstructed - exp.prediction).abs() < 1e-7,
            "row {row}: SHAP does not sum to the prediction"
        );
    }
}

#[test]
fn explanations_name_real_features() {
    let (data, cfg, panel) = fast_setup();
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    let model = fit_final_model(&set, &cfg);
    let report = explain_row(&model, &set, 3, 5);
    assert_eq!(report.top.len(), 5);
    for attribution in &report.top {
        assert!(set.feature_names.contains(&attribution.feature));
    }
    let ranking = global_ranking(&model, &set, 10);
    assert_eq!(ranking.len(), 10);
}

#[test]
fn whole_run_is_reproducible() {
    let run = || {
        let data = generate(&CohortConfig::small(11));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);
        run_variant(&set, Approach::DataDriven, false, &cfg).primary_metric()
    };
    assert_eq!(run(), run());
}

#[test]
fn fi_column_is_present_and_bounded() {
    let (data, cfg, panel) = fast_setup();
    let set = attach_fi(&build_samples(&data, &panel, OutcomeKind::Falls, &cfg.pipeline), &data);
    assert_eq!(set.feature_names.last().unwrap(), "fi_baseline");
    let fi = set.features.column(set.features.ncols() - 1);
    assert!(fi.iter().all(|&v| (0.0..=1.0).contains(&v)));
}
