//! The full serving path, end to end: train a model on the synthetic
//! cohort, persist the prediction bundle through the registry, drop
//! every in-memory trace, reload from disk, and serve it through the
//! batching service — asserting the served predictions are
//! **bit-identical** to the in-process flat-forest path at every
//! worker count, with explanations that satisfy the SHAP efficiency
//! axiom against the reloaded model.

use mysawh_repro::cohort::{generate, CohortConfig};
use mysawh_repro::core::experiment::fit_final_model;
use mysawh_repro::core::{cohort_fingerprint, Approach, ExperimentConfig, ModelKey, ModelRegistry};
use mysawh_repro::gbdt::ModelArtifact;
use mysawh_repro::preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};
use mysawh_repro::serve::{PredictionService, RequestOptions, ServeConfig};
use std::path::PathBuf;

fn qol_samples() -> (SampleSet, ExperimentConfig) {
    let data = generate(&CohortConfig::small(7));
    let cfg = ExperimentConfig::fast();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    (build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline), cfg)
}

fn temp_registry_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msaw_serving_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn persisted_model_served_concurrently_matches_the_in_process_path() {
    let (set, cfg) = qol_samples();
    let key;
    let expected;
    let registry = ModelRegistry::open(temp_registry_dir("bitident")).unwrap();
    {
        // Train, snapshot the in-process predictions, persist — then
        // let model and artifact fall out of scope entirely.
        let model = fit_final_model(&set, &cfg);
        let artifact = ModelArtifact::from_booster(model, None);
        expected = artifact.forest.predict_batch(&set.features);
        key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &artifact).unwrap();
    }

    for workers in [1usize, 2, 8] {
        let reloaded = registry.load(&key).unwrap();
        let config = ServeConfig { workers, ..ServeConfig::default() };
        let service = PredictionService::spawn(reloaded, config).unwrap();

        // Several clients hammer the service concurrently with
        // overlapping row windows; every answer must be bitwise equal
        // to the offline path regardless of how requests coalesce.
        let mut clients = Vec::new();
        for c in 0..6usize {
            let handle = service.handle();
            let rows: Vec<usize> = (0..set.len()).skip(c * 11 % 50).step_by(1 + c % 3).collect();
            let matrix = set.features.take_rows(&rows);
            clients.push(std::thread::spawn(move || {
                let out =
                    handle.submit(&matrix, RequestOptions::default()).unwrap().wait().unwrap();
                (rows, out)
            }));
        }
        for client in clients {
            let (rows, out) = client.join().unwrap();
            assert_eq!(out.predictions.len(), rows.len());
            for (got, &row) in out.predictions.iter().zip(&rows) {
                assert_eq!(
                    got.to_bits(),
                    expected[row].to_bits(),
                    "workers={workers}, row {row}: served prediction diverged"
                );
            }
        }
        service.shutdown();
    }
    let _ = std::fs::remove_dir_all(registry.root());
}

#[test]
fn served_explanations_reconstruct_reloaded_predictions() {
    let (set, cfg) = qol_samples();
    let registry = ModelRegistry::open(temp_registry_dir("explain")).unwrap();
    let key = ModelKey::for_samples(&set, Approach::DataDriven);
    {
        let model = fit_final_model(&set, &cfg);
        registry.store(&key, &ModelArtifact::from_booster(model, None)).unwrap();
    }
    let reloaded = registry.load(&key).unwrap();
    let forest = reloaded.forest.clone();
    let service = PredictionService::spawn(reloaded, ServeConfig::default()).unwrap();
    let probe = set.features.take_rows(&[0, 17, 42]);
    let out = service
        .handle()
        .submit(&probe, RequestOptions { explain: true, ..RequestOptions::default() })
        .unwrap()
        .wait()
        .unwrap();
    let explanations = out.explanations.expect("requested explanations");
    assert_eq!(explanations.len(), 3);
    for (i, explanation) in explanations.iter().enumerate() {
        assert_eq!(explanation.values.len(), set.feature_names.len());
        let raw = forest.predict_raw_row(probe.row(i));
        let reconstructed = explanation.base_value + explanation.values.iter().sum::<f64>();
        assert!(
            (reconstructed - raw).abs() < 1e-7,
            "row {i}: SHAP values do not sum to the served prediction"
        );
    }
    service.shutdown();
    let _ = std::fs::remove_dir_all(registry.root());
}

#[test]
fn registry_keys_separate_variants_and_cohorts() {
    let (set, cfg) = qol_samples();
    let registry = ModelRegistry::open(temp_registry_dir("keys")).unwrap();
    let model = fit_final_model(&set, &cfg);
    let artifact = ModelArtifact::from_booster(model, None);

    let dd = ModelKey::for_samples(&set, Approach::DataDriven);
    let kd = ModelKey::for_samples(&set, Approach::KnowledgeDriven);
    assert_ne!(dd.file_name(), kd.file_name());
    registry.store(&dd, &artifact).unwrap();
    registry.store(&kd, &artifact).unwrap();
    assert_eq!(registry.list().unwrap().len(), 2);

    // A different cohort fingerprints differently, so a retrain on new
    // data can never silently overwrite the old artifact.
    let other = generate(&CohortConfig::small(8));
    let panel = FeaturePanel::build(&other, &cfg.pipeline);
    let other_set = build_samples(&other, &panel, OutcomeKind::Qol, &cfg.pipeline);
    assert_ne!(cohort_fingerprint(&set), cohort_fingerprint(&other_set));
    assert_ne!(ModelKey::for_samples(&other_set, Approach::DataDriven).file_name(), dd.file_name());
    let _ = std::fs::remove_dir_all(registry.root());
}
