//! The paper's qualitative claims, checked as integration tests on a
//! reduced cohort (claims are about orderings and structure, which must
//! be robust to scale).

use mysawh_repro::cohort::{generate, CohortConfig};
use mysawh_repro::core::grid::{find, run_full_grid};
use mysawh_repro::core::{Approach, ExperimentConfig};
use mysawh_repro::preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn grid() -> Vec<mysawh_repro::core::VariantResult> {
    let data = generate(&CohortConfig::small(42));
    run_full_grid(&data, &ExperimentConfig::fast())
}

#[test]
fn dd_beats_kd_on_both_regression_outcomes() {
    // §5.1: "the DD approach performs generally better than KD".
    let results = grid();
    for outcome in [OutcomeKind::Qol, OutcomeKind::Sppb] {
        for with_fi in [false, true] {
            let dd = find(&results, outcome, Approach::DataDriven, with_fi).primary_metric();
            let kd = find(&results, outcome, Approach::KnowledgeDriven, with_fi).primary_metric();
            assert!(
                dd >= kd - 0.005,
                "{} with_fi={with_fi}: DD {dd:.3} vs KD {kd:.3}",
                outcome.name()
            );
        }
    }
}

#[test]
fn regression_scores_are_in_the_paper_band() {
    // §5.1: "higher than 90% 1-MAPE for all cases in QoL and SPPB".
    // On the reduced cohort we allow a small slack below the paper's 90%.
    let results = grid();
    for outcome in [OutcomeKind::Qol, OutcomeKind::Sppb] {
        for approach in [Approach::DataDriven, Approach::KnowledgeDriven] {
            for with_fi in [false, true] {
                let m = find(&results, outcome, approach, with_fi).primary_metric();
                assert!(
                    m > 0.85,
                    "{} {} with_fi={with_fi}: 1-MAPE {m:.3} below band",
                    outcome.name(),
                    approach.label()
                );
            }
        }
    }
}

#[test]
fn fi_lifts_falls_recall_for_the_kd_model() {
    // §5.1: the KD Falls model without FI has very low recall on the
    // minority class; adding FI recovers it (2% → 54% in the paper).
    let results = grid();
    let without = find(&results, OutcomeKind::Falls, Approach::KnowledgeDriven, false)
        .classification
        .expect("classification");
    let with = find(&results, OutcomeKind::Falls, Approach::KnowledgeDriven, true)
        .classification
        .expect("classification");
    assert!(
        with.recall_true > without.recall_true,
        "FI should raise KD recall-True: {:.2} -> {:.2}",
        without.recall_true,
        with.recall_true
    );
}

#[test]
fn falls_is_imbalanced_like_fig1() {
    let data = generate(&CohortConfig::small(42));
    let cfg = ExperimentConfig::fast();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Falls, &cfg.pipeline);
    let rate = set.labels.iter().sum::<f64>() / set.len() as f64;
    assert!((0.05..=0.30).contains(&rate), "falls rate {rate}");
}

#[test]
fn qa_thins_the_sample_set_as_in_section_3() {
    // Paper: 2,250 usable of 4,176 potential (≈54%). The mechanism —
    // a sizeable but not overwhelming QA drop — must reproduce.
    let data = generate(&CohortConfig::small(42));
    let cfg = ExperimentConfig::fast();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);
    let potential = data.patients.len() * 16;
    let kept = set.len() as f64 / potential as f64;
    assert!((0.35..=0.85).contains(&kept), "kept {kept:.2} of potential");
}

#[test]
fn all_twelve_models_train_and_score() {
    let results = grid();
    assert_eq!(results.len(), 12);
    for r in &results {
        assert!(r.primary_metric().is_finite(), "{} broke", r.summary_line());
        assert!(r.n_train > r.n_test);
    }
}
