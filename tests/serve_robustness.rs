//! Serving robustness suite: prove the prediction service survives the
//! four failure modes it is designed around — slow clients (deadlines),
//! greedy clients (quotas), model republish (hot reload), and batcher
//! panics (supervision) — at every worker count, with typed errors and
//! bit-identical predictions throughout.
//!
//! Determinism strategy: the `failpoint` feature compiles two seams
//! into the batcher — `serve::batch` (fires after the first request of
//! a dequeue cycle is taken, before coalescing) and `serve::predict`
//! (fires after a batch is assembled, before inference). A *sleep*
//! action at `serve::batch` wedges the batcher so tests can pile queue
//! pressure deterministically; a *panic* action at either site
//! detonates exactly the dequeue cycle it is armed for. Failpoints are
//! process-global, so armed tests serialize under one mutex with the
//! panic hook silenced.

use msaw_core::{Approach, ModelKey, ModelRegistry};
use msaw_gbdt::{Booster, ModelArtifact, Params};
use msaw_parallel::failpoint;
use msaw_preprocess::OutcomeKind;
use msaw_serve::{
    ClientId, PredictionService, RequestOptions, ServeConfig, ServeError, ServiceStats,
};
use msaw_tabular::Matrix;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Serialize failpoint-armed tests and silence the default panic hook
/// while injected panics fly (they are caught by the supervisor, but
/// the hook would still spam stderr).
fn with_faults<R>(f: impl FnOnce() -> R) -> R {
    static FAULT_LOCK: Mutex<()> = Mutex::new(());
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::disarm_all();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    failpoint::disarm_all();
    out
}

/// A small deterministic model; `n_estimators` varies the fit so two
/// calls with different values produce observably different predictions
/// (the "retrained artifact" of the reload tests).
fn artifact(n_estimators: usize) -> ModelArtifact {
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![(i % 17) as f64, if i % 9 == 0 { f64::NAN } else { (i % 6) as f64 }])
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| r[0] - if r[1].is_nan() { 3.0 } else { r[1].clamp(0.0, 3.0) })
        .collect();
    let params = Params { n_estimators, ..Params::regression() };
    let model = Booster::train(&params, &Matrix::from_rows(&rows), &labels).unwrap();
    ModelArtifact::from_booster(model, None)
}

fn query_rows(n: usize) -> Matrix {
    Matrix::from_rows(
        &(0..n)
            .map(|i| vec![(i % 13) as f64, if i % 5 == 0 { f64::NAN } else { i as f64 }])
            .collect::<Vec<_>>(),
    )
}

fn model_key() -> ModelKey {
    ModelKey { outcome: OutcomeKind::Qol, variant: Approach::DataDriven, cohort_hash: 0xFEED }
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("msaw_serve_robust_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ModelRegistry::open(dir).unwrap()
}

/// Poll `probe` until it returns true or `timeout` elapses.
fn eventually(timeout: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn assert_bits_equal(got: &[f64], want: &[f64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length mismatch");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.to_bits(), w.to_bits(), "{context}: prediction diverged");
    }
}

#[test]
fn expired_deadline_is_shed_typed_at_every_worker_count() {
    let a = artifact(8);
    let expected = a.forest.predict_batch(&query_rows(12));
    for workers in WORKER_COUNTS {
        let config = ServeConfig { workers, ..ServeConfig::default() };
        let service = PredictionService::spawn(artifact(8), config).unwrap();
        let handle = service.handle();
        // A zero deadline is already expired when the batcher dequeues
        // it: shed, never predicted.
        let stale = RequestOptions { deadline: Some(Duration::ZERO), ..RequestOptions::default() };
        let err = handle.submit(&query_rows(12), stale).unwrap().wait().unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded, "workers={workers}");
        // A generous deadline never fires; the answer is exact, and
        // wait_timeout bounds the caller side without triggering.
        let fresh = RequestOptions {
            deadline: Some(Duration::from_secs(3600)),
            ..RequestOptions::default()
        };
        let out = handle
            .submit(&query_rows(12), fresh)
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .unwrap();
        assert_bits_equal(&out.predictions, &expected, &format!("workers={workers}"));
        let stats = service.stats();
        assert_eq!(stats.shed_deadline, 1, "workers={workers}");
        assert_eq!(stats.answered, 1, "workers={workers}");
        service.shutdown();
    }
}

#[test]
fn quota_isolates_the_greedy_client_from_the_polite_one() {
    with_faults(|| {
        for workers in WORKER_COUNTS {
            failpoint::disarm_all();
            // Wedge the batcher's first dequeue cycle so nothing is
            // answered while the clients submit: in-flight counts are
            // then exactly what was submitted.
            failpoint::arm_sleep("serve::batch", 0, Duration::from_millis(400));
            let config =
                ServeConfig { workers, max_in_flight_per_client: 2, ..ServeConfig::default() };
            let service = PredictionService::spawn(artifact(8), config).unwrap();
            let handle = service.handle();
            let rows = query_rows(3);
            let probe = handle.submit(&rows, RequestOptions::default()).unwrap();

            let greedy = RequestOptions { client: ClientId(1), ..RequestOptions::default() };
            let polite = RequestOptions { client: ClientId(2), ..RequestOptions::default() };
            let g1 = handle.submit(&rows, greedy).unwrap();
            let g2 = handle.submit(&rows, greedy).unwrap();
            assert_eq!(
                handle.submit(&rows, greedy).unwrap_err(),
                ServeError::QuotaExceeded { limit: 2 },
                "workers={workers}: greedy client's third in-flight request"
            );
            // The polite client is untouched by the greedy client's cap.
            let p1 = handle.submit(&rows, polite).unwrap();
            assert_eq!(service.stats().shed_quota, 1, "workers={workers}");

            // Once the wedge lifts, every admitted request is answered
            // — quota rejects at the door, never corrupts the queue.
            for (name, ticket) in [("probe", probe), ("g1", g1), ("g2", g2), ("p1", p1)] {
                let out = ticket.wait_timeout(Duration::from_secs(30)).unwrap();
                assert_eq!(out.predictions.len(), 3, "workers={workers}, {name}");
            }
            // And the freed slots admit the greedy client again.
            handle.submit(&rows, greedy).unwrap().wait().unwrap();
            service.shutdown();
        }
    });
}

#[test]
fn degradation_sheds_shap_first_and_recovers_when_pressure_drops() {
    with_faults(|| {
        let reference = artifact(8);
        let expected = reference.forest.predict_batch(&query_rows(5));
        for workers in WORKER_COUNTS {
            failpoint::disarm_all();
            // Wedge cycle 0 while two more requests pile up behind the
            // probe; max_batch_rows=1 keeps them out of the probe's
            // batch, so the probe runs with a backlog of 2 — exactly at
            // the watermark.
            failpoint::arm_sleep("serve::batch", 0, Duration::from_millis(400));
            let config = ServeConfig {
                workers,
                max_batch_rows: 1,
                degrade_queue_depth: 2,
                ..ServeConfig::default()
            };
            let service = PredictionService::spawn(artifact(8), config).unwrap();
            let handle = service.handle();
            let explain = RequestOptions { explain: true, ..RequestOptions::default() };
            let probe = handle.submit(&query_rows(5), explain).unwrap();
            let trailing: Vec<_> =
                (0..2).map(|_| handle.submit(&query_rows(5), explain).unwrap()).collect();

            let out = probe.wait_timeout(Duration::from_secs(30)).unwrap();
            assert!(out.degraded, "workers={workers}: probe ran at the watermark");
            assert!(out.explanations.is_none(), "workers={workers}: SHAP was shed");
            assert_bits_equal(
                &out.predictions,
                &expected,
                &format!("workers={workers}: degraded predictions stay exact"),
            );
            // The backlog drains below the watermark, so the service
            // recovers full fidelity: the last request is explained.
            let mut results = Vec::new();
            for ticket in trailing {
                results.push(ticket.wait_timeout(Duration::from_secs(30)).unwrap());
            }
            let last = results.last().unwrap();
            assert!(!last.degraded, "workers={workers}: pressure dropped, no degradation");
            assert!(last.explanations.is_some(), "workers={workers}: SHAP is back");
            assert!(service.stats().degraded >= 1, "workers={workers}");
            service.shutdown();
        }
    });
}

#[test]
fn republished_identical_artifact_swaps_with_bit_identical_outputs_under_load() {
    let registry = temp_registry("bitident");
    let key = model_key();
    let a = artifact(8);
    registry.store(&key, &a).unwrap();
    let expected = Arc::new(a.forest.predict_batch(&query_rows(20)));

    for workers in WORKER_COUNTS {
        let config = ServeConfig { workers, ..ServeConfig::default() };
        let service = PredictionService::spawn(registry.load(&key).unwrap(), config).unwrap();
        let watcher = service
            .watch_registry(registry.clone(), key.group_name(), Duration::from_millis(10))
            .unwrap();

        // Sustained multi-client load across the swap: every single
        // request must be answered, bit-identical to the offline path —
        // a republished identical artifact is invisible to clients.
        let stop = Arc::new(AtomicBool::new(false));
        let mut clients = Vec::new();
        for c in 0..4u64 {
            let handle = service.handle();
            let stop = stop.clone();
            let expected = expected.clone();
            clients.push(std::thread::spawn(move || {
                let rows = query_rows(20);
                let options = RequestOptions { client: ClientId(c), ..RequestOptions::default() };
                let mut answered = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let out = handle
                        .submit(&rows, options)
                        .expect("admission under default limits")
                        .wait_timeout(Duration::from_secs(30))
                        .expect("every in-flight request is answered across the swap");
                    assert_bits_equal(&out.predictions, &expected, "across republish");
                    answered += 1;
                }
                answered
            }));
        }

        std::thread::sleep(Duration::from_millis(30));
        registry.store(&key, &a).unwrap(); // identical bytes, new generation
        eventually(Duration::from_secs(10), "the watcher to install the republish", || {
            service.stats().reloads >= 1
        });
        stop.store(true, Ordering::Relaxed);
        let answered: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(answered > 0, "workers={workers}: load ran across the swap");

        let stats = service.stats();
        assert_eq!(stats.reload_failures, 0, "workers={workers}");
        assert_eq!(
            stats.shed_total(),
            0,
            "workers={workers}: zero dropped requests across republish"
        );
        watcher.stop();
        service.shutdown();
    }
    let _ = std::fs::remove_dir_all(registry.root());
}

#[test]
fn corrupt_republish_keeps_the_old_model_then_a_good_retrain_swaps_in() {
    let registry = temp_registry("corrupt");
    let key = model_key();
    let old = artifact(8);
    let retrained = artifact(4);
    let rows = query_rows(15);
    let expected_old = old.forest.predict_batch(&rows);
    let expected_new = retrained.forest.predict_batch(&rows);
    assert_ne!(
        expected_old.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        expected_new.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "the retrained model must be observably different"
    );

    registry.store(&key, &old).unwrap();
    let config = ServeConfig { workers: 2, ..ServeConfig::default() };
    let service = PredictionService::spawn(registry.load(&key).unwrap(), config).unwrap();
    let watcher = service
        .watch_registry(registry.clone(), key.group_name(), Duration::from_millis(10))
        .unwrap();
    let handle = service.handle();

    // A corrupt republish — the torn-write case the registry's atomic
    // rename cannot rule out when an operator copies files by hand —
    // must never interrupt serving: the failure is counted and the old
    // model keeps answering, bit-identical.
    std::fs::write(registry.path_for(&key), b"not a model artifact").unwrap();
    eventually(Duration::from_secs(10), "the watcher to reject the corrupt artifact", || {
        service.stats().reload_failures >= 1
    });
    let out = handle.submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
    assert_bits_equal(&out.predictions, &expected_old, "old model serves through corruption");

    // A good retrained artifact then swaps in without a restart.
    registry.store(&key, &retrained).unwrap();
    eventually(Duration::from_secs(10), "the watcher to install the retrain", || {
        service.stats().reloads >= 1
    });
    let out = handle.submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
    assert_bits_equal(&out.predictions, &expected_new, "retrained model serves after swap");

    let stats = service.stats();
    assert!(stats.reload_failures >= 1);
    assert!(stats.reloads >= 1);
    assert_eq!(stats.shed_total(), 0, "no request was dropped across failure and swap");
    watcher.stop();
    service.shutdown();
    let _ = std::fs::remove_dir_all(registry.root());
}

#[test]
fn injected_batcher_panic_fails_only_the_in_flight_batch() {
    with_faults(|| {
        let reference = artifact(8);
        let expected = reference.forest.predict_batch(&query_rows(10));
        for workers in WORKER_COUNTS {
            failpoint::disarm_all();
            // Detonate dequeue cycle 0 after its batch is assembled:
            // the worst spot, a whole coalesced batch in flight.
            failpoint::arm("serve::predict", 0);
            let config = ServeConfig {
                workers,
                restart_backoff: Duration::from_millis(1),
                ..ServeConfig::default()
            };
            let service = PredictionService::spawn(artifact(8), config).unwrap();
            let handle = service.handle();
            let doomed = handle.submit(&query_rows(10), RequestOptions::default()).unwrap();
            assert_eq!(
                doomed.wait_timeout(Duration::from_secs(30)).unwrap_err(),
                ServeError::BatcherPanic,
                "workers={workers}: the in-flight batch fails typed"
            );
            // The supervisor restarts the batcher; the very next
            // request succeeds, bit-identical.
            let out = handle
                .submit(&query_rows(10), RequestOptions::default())
                .unwrap()
                .wait_timeout(Duration::from_secs(30))
                .unwrap();
            assert_bits_equal(&out.predictions, &expected, &format!("workers={workers}"));
            let stats = service.stats();
            assert_eq!(stats.batcher_restarts, 1, "workers={workers}");
            assert_eq!(stats.answered, 1, "workers={workers}");
            service.shutdown();
        }
    });
}

#[test]
fn exhausted_restart_budget_drains_the_queue_typed() {
    with_faults(|| {
        failpoint::disarm_all();
        // Every dequeue cycle detonates: the supervisor burns its whole
        // budget, then must fail the backlog loudly instead of leaving
        // tickets hanging.
        for seq in 0..16 {
            failpoint::arm("serve::batch", seq);
        }
        let config = ServeConfig {
            workers: 1,
            max_batcher_restarts: 2,
            restart_backoff: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let service = PredictionService::spawn(artifact(8), config).unwrap();
        let handle = service.handle();
        let rows = query_rows(2);
        let tickets: Vec<_> =
            (0..4).map(|_| handle.submit(&rows, RequestOptions::default())).collect();

        let mut panicked = 0;
        let mut drained = 0;
        for ticket in tickets {
            let err = match ticket {
                Ok(ticket) => ticket.wait_timeout(Duration::from_secs(30)).unwrap_err(),
                Err(err) => err,
            };
            match err {
                ServeError::BatcherPanic => panicked += 1,
                ServeError::ShuttingDown => drained += 1,
                other => panic!("expected a typed failure, got {other:?}"),
            }
        }
        // max_batcher_restarts=2 allows exactly 3 detonating cycles
        // (the initial run plus two restarts), each consuming one
        // queued request; the rest drain as ShuttingDown.
        assert_eq!(panicked, 3, "one request per detonating cycle");
        assert_eq!(drained, 1, "the backlog drains typed");
        assert_eq!(service.stats().batcher_restarts, 2);
        // The service is now over: submits are refused at the door.
        assert_eq!(
            handle.submit(&rows, RequestOptions::default()).unwrap_err(),
            ServeError::ShuttingDown
        );
        service.shutdown();
    });
}

#[test]
fn stats_snapshot_reports_every_shed_reason() {
    // One service, one of each shed, all visible in the snapshot — the
    // observability contract bench_serve builds on.
    let config = ServeConfig { workers: 1, max_in_flight_per_client: 1, ..ServeConfig::default() };
    let service = PredictionService::spawn(artifact(8), config).unwrap();
    let handle = service.handle();
    let rows = query_rows(2);
    let stale = RequestOptions { deadline: Some(Duration::ZERO), ..RequestOptions::default() };
    let shed = handle.submit(&rows, stale).unwrap();
    assert_eq!(shed.wait().unwrap_err(), ServeError::DeadlineExceeded);
    let ok = handle.submit(&rows, RequestOptions::default()).unwrap();
    assert_eq!(ok.wait().unwrap().predictions.len(), 2);
    let stats = service.stats();
    assert_eq!(
        (stats.shed_deadline, stats.answered, stats.queue_depth),
        (1, 1, 0),
        "sheds and answers are attributed: {stats:?}"
    );
    assert_eq!(stats.shed_total(), 1);
    assert_eq!(ServiceStats::default().shed_total(), 0);
    service.shutdown();
}
