/root/repo/target/debug/deps/paper_claims-9facb659f6aec92d.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9facb659f6aec92d: tests/paper_claims.rs

tests/paper_claims.rs:
