/root/repo/target/debug/deps/msaw_core-966050b89ed323ba.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/msaw_core-966050b89ed323ba: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
