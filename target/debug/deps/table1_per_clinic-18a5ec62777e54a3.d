/root/repo/target/debug/deps/table1_per_clinic-18a5ec62777e54a3.d: crates/bench/src/bin/table1_per_clinic.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_per_clinic-18a5ec62777e54a3.rmeta: crates/bench/src/bin/table1_per_clinic.rs Cargo.toml

crates/bench/src/bin/table1_per_clinic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
