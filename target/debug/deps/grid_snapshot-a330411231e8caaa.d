/root/repo/target/debug/deps/grid_snapshot-a330411231e8caaa.d: crates/core/tests/grid_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_snapshot-a330411231e8caaa.rmeta: crates/core/tests/grid_snapshot.rs Cargo.toml

crates/core/tests/grid_snapshot.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
