/root/repo/target/debug/deps/msaw_kd-9b25b72ce653871a.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/libmsaw_kd-9b25b72ce653871a.rlib: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/libmsaw_kd-9b25b72ce653871a.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
