/root/repo/target/debug/deps/fig7_global_dependence-df7745ad812ab7fa.d: crates/bench/src/bin/fig7_global_dependence.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_global_dependence-df7745ad812ab7fa.rmeta: crates/bench/src/bin/fig7_global_dependence.rs Cargo.toml

crates/bench/src/bin/fig7_global_dependence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
