/root/repo/target/debug/deps/qa_gap_sweep-4ec03d29d5985e45.d: crates/bench/src/bin/qa_gap_sweep.rs

/root/repo/target/debug/deps/qa_gap_sweep-4ec03d29d5985e45: crates/bench/src/bin/qa_gap_sweep.rs

crates/bench/src/bin/qa_gap_sweep.rs:
