/root/repo/target/debug/deps/train_gbdt-1879f148f065b1f8.d: crates/bench/benches/train_gbdt.rs Cargo.toml

/root/repo/target/debug/deps/libtrain_gbdt-1879f148f065b1f8.rmeta: crates/bench/benches/train_gbdt.rs Cargo.toml

crates/bench/benches/train_gbdt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
