/root/repo/target/debug/deps/mysawh_repro-c0b96980a6947559.d: src/lib.rs

/root/repo/target/debug/deps/mysawh_repro-c0b96980a6947559: src/lib.rs

src/lib.rs:
