/root/repo/target/debug/deps/msaw_preprocess-ee2e210b8991a907.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/libmsaw_preprocess-ee2e210b8991a907.rlib: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/libmsaw_preprocess-ee2e210b8991a907.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
