/root/repo/target/debug/deps/msaw_gbdt-e6806066c45d9daa.d: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

/root/repo/target/debug/deps/libmsaw_gbdt-e6806066c45d9daa.rlib: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

/root/repo/target/debug/deps/libmsaw_gbdt-e6806066c45d9daa.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/binning.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/context.rs:
crates/gbdt/src/engine.rs:
crates/gbdt/src/error.rs:
crates/gbdt/src/importance.rs:
crates/gbdt/src/objective.rs:
crates/gbdt/src/params.rs:
crates/gbdt/src/serialize.rs:
crates/gbdt/src/split.rs:
crates/gbdt/src/tree.rs:
