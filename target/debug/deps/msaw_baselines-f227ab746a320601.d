/root/repo/target/debug/deps/msaw_baselines-f227ab746a320601.d: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

/root/repo/target/debug/deps/msaw_baselines-f227ab746a320601: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gam.rs:
crates/baselines/src/linear.rs:
