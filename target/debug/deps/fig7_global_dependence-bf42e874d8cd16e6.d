/root/repo/target/debug/deps/fig7_global_dependence-bf42e874d8cd16e6.d: crates/bench/src/bin/fig7_global_dependence.rs

/root/repo/target/debug/deps/fig7_global_dependence-bf42e874d8cd16e6: crates/bench/src/bin/fig7_global_dependence.rs

crates/bench/src/bin/fig7_global_dependence.rs:
