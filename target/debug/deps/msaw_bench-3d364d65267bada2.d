/root/repo/target/debug/deps/msaw_bench-3d364d65267bada2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msaw_bench-3d364d65267bada2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
