/root/repo/target/debug/deps/fig1_outcome_distributions-0f55eca0f2974077.d: crates/bench/src/bin/fig1_outcome_distributions.rs

/root/repo/target/debug/deps/fig1_outcome_distributions-0f55eca0f2974077: crates/bench/src/bin/fig1_outcome_distributions.rs

crates/bench/src/bin/fig1_outcome_distributions.rs:
