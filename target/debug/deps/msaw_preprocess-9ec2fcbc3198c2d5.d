/root/repo/target/debug/deps/msaw_preprocess-9ec2fcbc3198c2d5.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_preprocess-9ec2fcbc3198c2d5.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs Cargo.toml

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
