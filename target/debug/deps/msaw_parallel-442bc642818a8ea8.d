/root/repo/target/debug/deps/msaw_parallel-442bc642818a8ea8.d: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/msaw_parallel-442bc642818a8ea8: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
