/root/repo/target/debug/deps/properties-77e3dc82a5a578e5.d: tests/properties.rs

/root/repo/target/debug/deps/properties-77e3dc82a5a578e5: tests/properties.rs

tests/properties.rs:
