/root/repo/target/debug/deps/falls_calibration-37d3cd7a2026a36c.d: crates/bench/src/bin/falls_calibration.rs

/root/repo/target/debug/deps/falls_calibration-37d3cd7a2026a36c: crates/bench/src/bin/falls_calibration.rs

crates/bench/src/bin/falls_calibration.rs:
