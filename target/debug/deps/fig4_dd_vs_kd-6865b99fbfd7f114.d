/root/repo/target/debug/deps/fig4_dd_vs_kd-6865b99fbfd7f114.d: crates/bench/src/bin/fig4_dd_vs_kd.rs

/root/repo/target/debug/deps/fig4_dd_vs_kd-6865b99fbfd7f114: crates/bench/src/bin/fig4_dd_vs_kd.rs

crates/bench/src/bin/fig4_dd_vs_kd.rs:
