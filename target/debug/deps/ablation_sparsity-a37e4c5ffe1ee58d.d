/root/repo/target/debug/deps/ablation_sparsity-a37e4c5ffe1ee58d.d: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sparsity-a37e4c5ffe1ee58d.rmeta: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

crates/bench/src/bin/ablation_sparsity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
