/root/repo/target/debug/deps/fig5_mae_by_clinic-8e4ecdc199ca4b4d.d: crates/bench/src/bin/fig5_mae_by_clinic.rs

/root/repo/target/debug/deps/fig5_mae_by_clinic-8e4ecdc199ca4b4d: crates/bench/src/bin/fig5_mae_by_clinic.rs

crates/bench/src/bin/fig5_mae_by_clinic.rs:
