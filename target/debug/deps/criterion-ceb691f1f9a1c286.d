/root/repo/target/debug/deps/criterion-ceb691f1f9a1c286.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-ceb691f1f9a1c286: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
