/root/repo/target/debug/deps/ablation_sparsity-9326486e1a752ebc.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/debug/deps/ablation_sparsity-9326486e1a752ebc: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
