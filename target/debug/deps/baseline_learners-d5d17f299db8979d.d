/root/repo/target/debug/deps/baseline_learners-d5d17f299db8979d.d: crates/bench/src/bin/baseline_learners.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_learners-d5d17f299db8979d.rmeta: crates/bench/src/bin/baseline_learners.rs Cargo.toml

crates/bench/src/bin/baseline_learners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
