/root/repo/target/debug/deps/properties-a91cda41f3a9e8a3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a91cda41f3a9e8a3: tests/properties.rs

tests/properties.rs:
