/root/repo/target/debug/deps/fig1_outcome_distributions-b673b9fc330a0758.d: crates/bench/src/bin/fig1_outcome_distributions.rs

/root/repo/target/debug/deps/fig1_outcome_distributions-b673b9fc330a0758: crates/bench/src/bin/fig1_outcome_distributions.rs

crates/bench/src/bin/fig1_outcome_distributions.rs:
