/root/repo/target/debug/deps/msaw_core-802a9050ff570804.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/msaw_core-802a9050ff570804: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
