/root/repo/target/debug/deps/export_cohort-f514b0c835cafb99.d: crates/bench/src/bin/export_cohort.rs Cargo.toml

/root/repo/target/debug/deps/libexport_cohort-f514b0c835cafb99.rmeta: crates/bench/src/bin/export_cohort.rs Cargo.toml

crates/bench/src/bin/export_cohort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
