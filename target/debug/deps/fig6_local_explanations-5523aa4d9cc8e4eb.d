/root/repo/target/debug/deps/fig6_local_explanations-5523aa4d9cc8e4eb.d: crates/bench/src/bin/fig6_local_explanations.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_local_explanations-5523aa4d9cc8e4eb.rmeta: crates/bench/src/bin/fig6_local_explanations.rs Cargo.toml

crates/bench/src/bin/fig6_local_explanations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
