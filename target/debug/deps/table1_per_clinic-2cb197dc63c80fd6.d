/root/repo/target/debug/deps/table1_per_clinic-2cb197dc63c80fd6.d: crates/bench/src/bin/table1_per_clinic.rs

/root/repo/target/debug/deps/table1_per_clinic-2cb197dc63c80fd6: crates/bench/src/bin/table1_per_clinic.rs

crates/bench/src/bin/table1_per_clinic.rs:
