/root/repo/target/debug/deps/ablation_sparsity-d659ab6805bf2616.d: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sparsity-d659ab6805bf2616.rmeta: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

crates/bench/src/bin/ablation_sparsity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
