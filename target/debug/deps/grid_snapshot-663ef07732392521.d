/root/repo/target/debug/deps/grid_snapshot-663ef07732392521.d: crates/core/tests/grid_snapshot.rs

/root/repo/target/debug/deps/grid_snapshot-663ef07732392521: crates/core/tests/grid_snapshot.rs

crates/core/tests/grid_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
