/root/repo/target/debug/deps/msaw_shap-c441afa9e809de4e.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

/root/repo/target/debug/deps/libmsaw_shap-c441afa9e809de4e.rlib: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

/root/repo/target/debug/deps/libmsaw_shap-c441afa9e809de4e.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
