/root/repo/target/debug/deps/cohort_pipeline-2cf83f62d63e2cb1.d: crates/bench/benches/cohort_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcohort_pipeline-2cf83f62d63e2cb1.rmeta: crates/bench/benches/cohort_pipeline.rs Cargo.toml

crates/bench/benches/cohort_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
