/root/repo/target/debug/deps/fig7_global_dependence-eb1da58828363781.d: crates/bench/src/bin/fig7_global_dependence.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_global_dependence-eb1da58828363781.rmeta: crates/bench/src/bin/fig7_global_dependence.rs Cargo.toml

crates/bench/src/bin/fig7_global_dependence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
