/root/repo/target/debug/deps/proptest-3e5a912378317737.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-3e5a912378317737: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
