/root/repo/target/debug/deps/qa_gap_sweep-16810890db80e2f5.d: crates/bench/src/bin/qa_gap_sweep.rs

/root/repo/target/debug/deps/qa_gap_sweep-16810890db80e2f5: crates/bench/src/bin/qa_gap_sweep.rs

crates/bench/src/bin/qa_gap_sweep.rs:
