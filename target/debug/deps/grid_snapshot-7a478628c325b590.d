/root/repo/target/debug/deps/grid_snapshot-7a478628c325b590.d: crates/core/tests/grid_snapshot.rs

/root/repo/target/debug/deps/grid_snapshot-7a478628c325b590: crates/core/tests/grid_snapshot.rs

crates/core/tests/grid_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
