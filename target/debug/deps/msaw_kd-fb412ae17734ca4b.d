/root/repo/target/debug/deps/msaw_kd-fb412ae17734ca4b.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/libmsaw_kd-fb412ae17734ca4b.rlib: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/libmsaw_kd-fb412ae17734ca4b.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
