/root/repo/target/debug/deps/msaw_preprocess-22caeda432aa9c30.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/libmsaw_preprocess-22caeda432aa9c30.rlib: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/libmsaw_preprocess-22caeda432aa9c30.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
