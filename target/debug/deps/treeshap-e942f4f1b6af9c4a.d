/root/repo/target/debug/deps/treeshap-e942f4f1b6af9c4a.d: crates/bench/benches/treeshap.rs Cargo.toml

/root/repo/target/debug/deps/libtreeshap-e942f4f1b6af9c4a.rmeta: crates/bench/benches/treeshap.rs Cargo.toml

crates/bench/benches/treeshap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
