/root/repo/target/debug/deps/export_cohort-231b8c1bdc983e46.d: crates/bench/src/bin/export_cohort.rs

/root/repo/target/debug/deps/export_cohort-231b8c1bdc983e46: crates/bench/src/bin/export_cohort.rs

crates/bench/src/bin/export_cohort.rs:
