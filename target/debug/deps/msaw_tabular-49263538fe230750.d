/root/repo/target/debug/deps/msaw_tabular-49263538fe230750.d: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_tabular-49263538fe230750.rmeta: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs Cargo.toml

crates/tabular/src/lib.rs:
crates/tabular/src/column.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/error.rs:
crates/tabular/src/frame.rs:
crates/tabular/src/matrix.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
