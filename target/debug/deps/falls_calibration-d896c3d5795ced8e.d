/root/repo/target/debug/deps/falls_calibration-d896c3d5795ced8e.d: crates/bench/src/bin/falls_calibration.rs

/root/repo/target/debug/deps/falls_calibration-d896c3d5795ced8e: crates/bench/src/bin/falls_calibration.rs

crates/bench/src/bin/falls_calibration.rs:
