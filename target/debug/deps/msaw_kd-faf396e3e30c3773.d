/root/repo/target/debug/deps/msaw_kd-faf396e3e30c3773.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/msaw_kd-faf396e3e30c3773: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
