/root/repo/target/debug/deps/qa_gap_sweep-eca686a7072848a0.d: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqa_gap_sweep-eca686a7072848a0.rmeta: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

crates/bench/src/bin/qa_gap_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
