/root/repo/target/debug/deps/bytes-ca4f112a2cd6335f.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-ca4f112a2cd6335f.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
