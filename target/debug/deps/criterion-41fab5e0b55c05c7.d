/root/repo/target/debug/deps/criterion-41fab5e0b55c05c7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-41fab5e0b55c05c7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
