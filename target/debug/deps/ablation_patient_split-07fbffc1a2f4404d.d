/root/repo/target/debug/deps/ablation_patient_split-07fbffc1a2f4404d.d: crates/bench/src/bin/ablation_patient_split.rs

/root/repo/target/debug/deps/ablation_patient_split-07fbffc1a2f4404d: crates/bench/src/bin/ablation_patient_split.rs

crates/bench/src/bin/ablation_patient_split.rs:
