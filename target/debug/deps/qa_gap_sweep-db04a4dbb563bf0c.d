/root/repo/target/debug/deps/qa_gap_sweep-db04a4dbb563bf0c.d: crates/bench/src/bin/qa_gap_sweep.rs

/root/repo/target/debug/deps/qa_gap_sweep-db04a4dbb563bf0c: crates/bench/src/bin/qa_gap_sweep.rs

crates/bench/src/bin/qa_gap_sweep.rs:
