/root/repo/target/debug/deps/msaw_preprocess-3074907a84cbeb96.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/msaw_preprocess-3074907a84cbeb96: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
