/root/repo/target/debug/deps/fig6_local_explanations-7b7e3c19e4f95fea.d: crates/bench/src/bin/fig6_local_explanations.rs

/root/repo/target/debug/deps/fig6_local_explanations-7b7e3c19e4f95fea: crates/bench/src/bin/fig6_local_explanations.rs

crates/bench/src/bin/fig6_local_explanations.rs:
