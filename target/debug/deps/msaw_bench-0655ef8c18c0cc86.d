/root/repo/target/debug/deps/msaw_bench-0655ef8c18c0cc86.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_bench-0655ef8c18c0cc86.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
