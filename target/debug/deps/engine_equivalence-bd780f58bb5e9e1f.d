/root/repo/target/debug/deps/engine_equivalence-bd780f58bb5e9e1f.d: crates/gbdt/tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-bd780f58bb5e9e1f: crates/gbdt/tests/engine_equivalence.rs

crates/gbdt/tests/engine_equivalence.rs:
