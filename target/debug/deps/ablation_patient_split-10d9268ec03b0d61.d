/root/repo/target/debug/deps/ablation_patient_split-10d9268ec03b0d61.d: crates/bench/src/bin/ablation_patient_split.rs Cargo.toml

/root/repo/target/debug/deps/libablation_patient_split-10d9268ec03b0d61.rmeta: crates/bench/src/bin/ablation_patient_split.rs Cargo.toml

crates/bench/src/bin/ablation_patient_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
