/root/repo/target/debug/deps/falls_calibration-3f4b8de3ad881c25.d: crates/bench/src/bin/falls_calibration.rs

/root/repo/target/debug/deps/falls_calibration-3f4b8de3ad881c25: crates/bench/src/bin/falls_calibration.rs

crates/bench/src/bin/falls_calibration.rs:
