/root/repo/target/debug/deps/bench_shap-8cf4910686ba5913.d: crates/bench/src/bin/bench_shap.rs

/root/repo/target/debug/deps/bench_shap-8cf4910686ba5913: crates/bench/src/bin/bench_shap.rs

crates/bench/src/bin/bench_shap.rs:
