/root/repo/target/debug/deps/msaw_gbdt-930f878bfbf3d1c1.d: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_gbdt-930f878bfbf3d1c1.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs Cargo.toml

crates/gbdt/src/lib.rs:
crates/gbdt/src/binning.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/context.rs:
crates/gbdt/src/engine.rs:
crates/gbdt/src/error.rs:
crates/gbdt/src/importance.rs:
crates/gbdt/src/objective.rs:
crates/gbdt/src/params.rs:
crates/gbdt/src/serialize.rs:
crates/gbdt/src/split.rs:
crates/gbdt/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
