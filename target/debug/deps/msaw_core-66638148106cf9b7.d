/root/repo/target/debug/deps/msaw_core-66638148106cf9b7.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/libmsaw_core-66638148106cf9b7.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/libmsaw_core-66638148106cf9b7.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
