/root/repo/target/debug/deps/fig7_global_dependence-21fe6ccced9590e5.d: crates/bench/src/bin/fig7_global_dependence.rs

/root/repo/target/debug/deps/fig7_global_dependence-21fe6ccced9590e5: crates/bench/src/bin/fig7_global_dependence.rs

crates/bench/src/bin/fig7_global_dependence.rs:
