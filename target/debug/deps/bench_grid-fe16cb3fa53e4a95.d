/root/repo/target/debug/deps/bench_grid-fe16cb3fa53e4a95.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/debug/deps/bench_grid-fe16cb3fa53e4a95: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
