/root/repo/target/debug/deps/fig7_global_dependence-666b5495a0b180b6.d: crates/bench/src/bin/fig7_global_dependence.rs

/root/repo/target/debug/deps/fig7_global_dependence-666b5495a0b180b6: crates/bench/src/bin/fig7_global_dependence.rs

crates/bench/src/bin/fig7_global_dependence.rs:
