/root/repo/target/debug/deps/mysawh_repro-c6a84541d8681d69.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmysawh_repro-c6a84541d8681d69.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
