/root/repo/target/debug/deps/bytes-dcd868e027d832e6.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-dcd868e027d832e6: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
