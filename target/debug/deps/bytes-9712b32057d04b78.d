/root/repo/target/debug/deps/bytes-9712b32057d04b78.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9712b32057d04b78.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9712b32057d04b78.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
