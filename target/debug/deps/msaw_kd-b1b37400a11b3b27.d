/root/repo/target/debug/deps/msaw_kd-b1b37400a11b3b27.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/debug/deps/msaw_kd-b1b37400a11b3b27: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
