/root/repo/target/debug/deps/properties-b49ba1fdc815f9ea.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b49ba1fdc815f9ea: tests/properties.rs

tests/properties.rs:
