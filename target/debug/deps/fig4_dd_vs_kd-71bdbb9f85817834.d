/root/repo/target/debug/deps/fig4_dd_vs_kd-71bdbb9f85817834.d: crates/bench/src/bin/fig4_dd_vs_kd.rs

/root/repo/target/debug/deps/fig4_dd_vs_kd-71bdbb9f85817834: crates/bench/src/bin/fig4_dd_vs_kd.rs

crates/bench/src/bin/fig4_dd_vs_kd.rs:
