/root/repo/target/debug/deps/bench_grid-b327e3d1bd1f4c65.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/debug/deps/bench_grid-b327e3d1bd1f4c65: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
