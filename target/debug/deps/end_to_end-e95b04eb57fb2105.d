/root/repo/target/debug/deps/end_to_end-e95b04eb57fb2105.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e95b04eb57fb2105: tests/end_to_end.rs

tests/end_to_end.rs:
