/root/repo/target/debug/deps/fig1_outcome_distributions-fa26625d6b1cae2b.d: crates/bench/src/bin/fig1_outcome_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_outcome_distributions-fa26625d6b1cae2b.rmeta: crates/bench/src/bin/fig1_outcome_distributions.rs Cargo.toml

crates/bench/src/bin/fig1_outcome_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
