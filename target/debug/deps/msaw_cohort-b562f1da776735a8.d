/root/repo/target/debug/deps/msaw_cohort-b562f1da776735a8.d: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_cohort-b562f1da776735a8.rmeta: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs Cargo.toml

crates/cohort/src/lib.rs:
crates/cohort/src/activity.rs:
crates/cohort/src/clinical.rs:
crates/cohort/src/config.rs:
crates/cohort/src/domains.rs:
crates/cohort/src/generator.rs:
crates/cohort/src/missing.rs:
crates/cohort/src/outcomes.rs:
crates/cohort/src/patient.rs:
crates/cohort/src/pro.rs:
crates/cohort/src/rng.rs:
crates/cohort/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
