/root/repo/target/debug/deps/fig1_outcome_distributions-a4b25f6665833f55.d: crates/bench/src/bin/fig1_outcome_distributions.rs

/root/repo/target/debug/deps/fig1_outcome_distributions-a4b25f6665833f55: crates/bench/src/bin/fig1_outcome_distributions.rs

crates/bench/src/bin/fig1_outcome_distributions.rs:
