/root/repo/target/debug/deps/ablation_patient_split-b0db1431199c856a.d: crates/bench/src/bin/ablation_patient_split.rs Cargo.toml

/root/repo/target/debug/deps/libablation_patient_split-b0db1431199c856a.rmeta: crates/bench/src/bin/ablation_patient_split.rs Cargo.toml

crates/bench/src/bin/ablation_patient_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
