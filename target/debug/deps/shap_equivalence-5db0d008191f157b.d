/root/repo/target/debug/deps/shap_equivalence-5db0d008191f157b.d: crates/shap/tests/shap_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libshap_equivalence-5db0d008191f157b.rmeta: crates/shap/tests/shap_equivalence.rs Cargo.toml

crates/shap/tests/shap_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
