/root/repo/target/debug/deps/qa_gap_sweep-2ef7302f143a2fe1.d: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqa_gap_sweep-2ef7302f143a2fe1.rmeta: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

crates/bench/src/bin/qa_gap_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
