/root/repo/target/debug/deps/end_to_end-7d4371d673e1236b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7d4371d673e1236b: tests/end_to_end.rs

tests/end_to_end.rs:
