/root/repo/target/debug/deps/msaw_bench-d45020d79169bbb9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-d45020d79169bbb9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-d45020d79169bbb9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
