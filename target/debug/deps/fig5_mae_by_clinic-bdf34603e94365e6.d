/root/repo/target/debug/deps/fig5_mae_by_clinic-bdf34603e94365e6.d: crates/bench/src/bin/fig5_mae_by_clinic.rs

/root/repo/target/debug/deps/fig5_mae_by_clinic-bdf34603e94365e6: crates/bench/src/bin/fig5_mae_by_clinic.rs

crates/bench/src/bin/fig5_mae_by_clinic.rs:
