/root/repo/target/debug/deps/engine_equivalence-9e699bf4f73f17ff.d: crates/gbdt/tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-9e699bf4f73f17ff.rmeta: crates/gbdt/tests/engine_equivalence.rs Cargo.toml

crates/gbdt/tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
