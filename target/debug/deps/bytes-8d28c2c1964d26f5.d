/root/repo/target/debug/deps/bytes-8d28c2c1964d26f5.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-8d28c2c1964d26f5.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
