/root/repo/target/debug/deps/ablation_sparsity-3c602b62f4f2546c.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/debug/deps/ablation_sparsity-3c602b62f4f2546c: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
