/root/repo/target/debug/deps/baseline_learners-f0350729ceac72be.d: crates/bench/src/bin/baseline_learners.rs

/root/repo/target/debug/deps/baseline_learners-f0350729ceac72be: crates/bench/src/bin/baseline_learners.rs

crates/bench/src/bin/baseline_learners.rs:
