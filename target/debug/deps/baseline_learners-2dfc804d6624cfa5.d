/root/repo/target/debug/deps/baseline_learners-2dfc804d6624cfa5.d: crates/bench/src/bin/baseline_learners.rs

/root/repo/target/debug/deps/baseline_learners-2dfc804d6624cfa5: crates/bench/src/bin/baseline_learners.rs

crates/bench/src/bin/baseline_learners.rs:
