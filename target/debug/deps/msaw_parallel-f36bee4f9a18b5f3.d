/root/repo/target/debug/deps/msaw_parallel-f36bee4f9a18b5f3.d: crates/parallel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_parallel-f36bee4f9a18b5f3.rmeta: crates/parallel/src/lib.rs Cargo.toml

crates/parallel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
