/root/repo/target/debug/deps/table1_per_clinic-e9762f2c17c68242.d: crates/bench/src/bin/table1_per_clinic.rs

/root/repo/target/debug/deps/table1_per_clinic-e9762f2c17c68242: crates/bench/src/bin/table1_per_clinic.rs

crates/bench/src/bin/table1_per_clinic.rs:
