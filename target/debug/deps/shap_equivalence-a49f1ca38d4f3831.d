/root/repo/target/debug/deps/shap_equivalence-a49f1ca38d4f3831.d: crates/shap/tests/shap_equivalence.rs

/root/repo/target/debug/deps/shap_equivalence-a49f1ca38d4f3831: crates/shap/tests/shap_equivalence.rs

crates/shap/tests/shap_equivalence.rs:
