/root/repo/target/debug/deps/fig6_local_explanations-f4ab5e3024b1cf3d.d: crates/bench/src/bin/fig6_local_explanations.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_local_explanations-f4ab5e3024b1cf3d.rmeta: crates/bench/src/bin/fig6_local_explanations.rs Cargo.toml

crates/bench/src/bin/fig6_local_explanations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
