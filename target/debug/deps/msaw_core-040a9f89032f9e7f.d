/root/repo/target/debug/deps/msaw_core-040a9f89032f9e7f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/msaw_core-040a9f89032f9e7f: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
