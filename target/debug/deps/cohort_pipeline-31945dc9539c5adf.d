/root/repo/target/debug/deps/cohort_pipeline-31945dc9539c5adf.d: crates/bench/benches/cohort_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcohort_pipeline-31945dc9539c5adf.rmeta: crates/bench/benches/cohort_pipeline.rs Cargo.toml

crates/bench/benches/cohort_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
