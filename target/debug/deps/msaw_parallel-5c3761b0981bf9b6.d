/root/repo/target/debug/deps/msaw_parallel-5c3761b0981bf9b6.d: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/libmsaw_parallel-5c3761b0981bf9b6.rlib: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/libmsaw_parallel-5c3761b0981bf9b6.rmeta: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
