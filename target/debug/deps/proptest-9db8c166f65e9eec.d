/root/repo/target/debug/deps/proptest-9db8c166f65e9eec.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9db8c166f65e9eec.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9db8c166f65e9eec.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
