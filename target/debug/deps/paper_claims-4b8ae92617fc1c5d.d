/root/repo/target/debug/deps/paper_claims-4b8ae92617fc1c5d.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-4b8ae92617fc1c5d: tests/paper_claims.rs

tests/paper_claims.rs:
