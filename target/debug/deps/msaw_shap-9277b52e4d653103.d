/root/repo/target/debug/deps/msaw_shap-9277b52e4d653103.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_shap-9277b52e4d653103.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs Cargo.toml

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
crates/shap/src/brute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
