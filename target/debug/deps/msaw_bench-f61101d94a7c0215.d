/root/repo/target/debug/deps/msaw_bench-f61101d94a7c0215.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_bench-f61101d94a7c0215.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
