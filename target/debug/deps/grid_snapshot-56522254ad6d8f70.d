/root/repo/target/debug/deps/grid_snapshot-56522254ad6d8f70.d: crates/core/tests/grid_snapshot.rs

/root/repo/target/debug/deps/grid_snapshot-56522254ad6d8f70: crates/core/tests/grid_snapshot.rs

crates/core/tests/grid_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
