/root/repo/target/debug/deps/mysawh_repro-0c7406f336d8684d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmysawh_repro-0c7406f336d8684d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
