/root/repo/target/debug/deps/msaw_metrics-ce2c9c9d30b3beaa.d: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_metrics-ce2c9c9d30b3beaa.rmeta: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/boxplot.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/classification.rs:
crates/metrics/src/cv.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
