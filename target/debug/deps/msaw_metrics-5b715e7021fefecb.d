/root/repo/target/debug/deps/msaw_metrics-5b715e7021fefecb.d: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/debug/deps/libmsaw_metrics-5b715e7021fefecb.rlib: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/debug/deps/libmsaw_metrics-5b715e7021fefecb.rmeta: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

crates/metrics/src/lib.rs:
crates/metrics/src/boxplot.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/classification.rs:
crates/metrics/src/cv.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/regression.rs:
