/root/repo/target/debug/deps/msaw_bench-568d0fe15d3e676d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msaw_bench-568d0fe15d3e676d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
