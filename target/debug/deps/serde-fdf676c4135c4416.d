/root/repo/target/debug/deps/serde-fdf676c4135c4416.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-fdf676c4135c4416: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
