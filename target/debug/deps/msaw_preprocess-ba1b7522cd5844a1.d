/root/repo/target/debug/deps/msaw_preprocess-ba1b7522cd5844a1.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_preprocess-ba1b7522cd5844a1.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs Cargo.toml

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
