/root/repo/target/debug/deps/msaw_shap-8ca1844329667364.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs

/root/repo/target/debug/deps/msaw_shap-8ca1844329667364: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
crates/shap/src/brute.rs:
