/root/repo/target/debug/deps/bench_grid-21f86d335cab2f2b.d: crates/bench/src/bin/bench_grid.rs Cargo.toml

/root/repo/target/debug/deps/libbench_grid-21f86d335cab2f2b.rmeta: crates/bench/src/bin/bench_grid.rs Cargo.toml

crates/bench/src/bin/bench_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
