/root/repo/target/debug/deps/msaw_kd-ba70c39c9956009b.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_kd-ba70c39c9956009b.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs Cargo.toml

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
