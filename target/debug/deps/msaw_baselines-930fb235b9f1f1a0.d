/root/repo/target/debug/deps/msaw_baselines-930fb235b9f1f1a0.d: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

/root/repo/target/debug/deps/libmsaw_baselines-930fb235b9f1f1a0.rlib: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

/root/repo/target/debug/deps/libmsaw_baselines-930fb235b9f1f1a0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gam.rs:
crates/baselines/src/linear.rs:
