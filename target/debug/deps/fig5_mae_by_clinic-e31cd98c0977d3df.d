/root/repo/target/debug/deps/fig5_mae_by_clinic-e31cd98c0977d3df.d: crates/bench/src/bin/fig5_mae_by_clinic.rs

/root/repo/target/debug/deps/fig5_mae_by_clinic-e31cd98c0977d3df: crates/bench/src/bin/fig5_mae_by_clinic.rs

crates/bench/src/bin/fig5_mae_by_clinic.rs:
