/root/repo/target/debug/deps/bench_grid-7ac35f4e98595278.d: crates/bench/src/bin/bench_grid.rs Cargo.toml

/root/repo/target/debug/deps/libbench_grid-7ac35f4e98595278.rmeta: crates/bench/src/bin/bench_grid.rs Cargo.toml

crates/bench/src/bin/bench_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
