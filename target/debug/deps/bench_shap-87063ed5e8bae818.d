/root/repo/target/debug/deps/bench_shap-87063ed5e8bae818.d: crates/bench/src/bin/bench_shap.rs Cargo.toml

/root/repo/target/debug/deps/libbench_shap-87063ed5e8bae818.rmeta: crates/bench/src/bin/bench_shap.rs Cargo.toml

crates/bench/src/bin/bench_shap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
