/root/repo/target/debug/deps/end_to_end-430d7ccbabb8bb8f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-430d7ccbabb8bb8f: tests/end_to_end.rs

tests/end_to_end.rs:
