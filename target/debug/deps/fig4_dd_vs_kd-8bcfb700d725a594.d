/root/repo/target/debug/deps/fig4_dd_vs_kd-8bcfb700d725a594.d: crates/bench/src/bin/fig4_dd_vs_kd.rs

/root/repo/target/debug/deps/fig4_dd_vs_kd-8bcfb700d725a594: crates/bench/src/bin/fig4_dd_vs_kd.rs

crates/bench/src/bin/fig4_dd_vs_kd.rs:
