/root/repo/target/debug/deps/properties-db5a963c7f2bd349.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-db5a963c7f2bd349.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
