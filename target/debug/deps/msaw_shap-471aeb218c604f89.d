/root/repo/target/debug/deps/msaw_shap-471aeb218c604f89.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_shap-471aeb218c604f89.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs Cargo.toml

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
