/root/repo/target/debug/deps/ablation_patient_split-6ea1f3c39f091462.d: crates/bench/src/bin/ablation_patient_split.rs

/root/repo/target/debug/deps/ablation_patient_split-6ea1f3c39f091462: crates/bench/src/bin/ablation_patient_split.rs

crates/bench/src/bin/ablation_patient_split.rs:
