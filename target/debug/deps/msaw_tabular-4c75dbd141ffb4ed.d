/root/repo/target/debug/deps/msaw_tabular-4c75dbd141ffb4ed.d: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

/root/repo/target/debug/deps/libmsaw_tabular-4c75dbd141ffb4ed.rlib: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

/root/repo/target/debug/deps/libmsaw_tabular-4c75dbd141ffb4ed.rmeta: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

crates/tabular/src/lib.rs:
crates/tabular/src/column.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/error.rs:
crates/tabular/src/frame.rs:
crates/tabular/src/matrix.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/stats.rs:
