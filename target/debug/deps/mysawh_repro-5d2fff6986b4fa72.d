/root/repo/target/debug/deps/mysawh_repro-5d2fff6986b4fa72.d: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-5d2fff6986b4fa72.rlib: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-5d2fff6986b4fa72.rmeta: src/lib.rs

src/lib.rs:
