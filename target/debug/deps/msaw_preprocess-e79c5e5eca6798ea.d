/root/repo/target/debug/deps/msaw_preprocess-e79c5e5eca6798ea.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/debug/deps/msaw_preprocess-e79c5e5eca6798ea: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
