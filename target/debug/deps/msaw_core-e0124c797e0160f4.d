/root/repo/target/debug/deps/msaw_core-e0124c797e0160f4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/libmsaw_core-e0124c797e0160f4.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/debug/deps/libmsaw_core-e0124c797e0160f4.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
