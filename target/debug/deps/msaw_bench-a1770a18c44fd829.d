/root/repo/target/debug/deps/msaw_bench-a1770a18c44fd829.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msaw_bench-a1770a18c44fd829: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
