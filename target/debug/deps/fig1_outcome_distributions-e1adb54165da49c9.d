/root/repo/target/debug/deps/fig1_outcome_distributions-e1adb54165da49c9.d: crates/bench/src/bin/fig1_outcome_distributions.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_outcome_distributions-e1adb54165da49c9.rmeta: crates/bench/src/bin/fig1_outcome_distributions.rs Cargo.toml

crates/bench/src/bin/fig1_outcome_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
