/root/repo/target/debug/deps/msaw_cohort-e3b8f72c8715ca4a.d: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs

/root/repo/target/debug/deps/msaw_cohort-e3b8f72c8715ca4a: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs

crates/cohort/src/lib.rs:
crates/cohort/src/activity.rs:
crates/cohort/src/clinical.rs:
crates/cohort/src/config.rs:
crates/cohort/src/domains.rs:
crates/cohort/src/generator.rs:
crates/cohort/src/missing.rs:
crates/cohort/src/outcomes.rs:
crates/cohort/src/patient.rs:
crates/cohort/src/pro.rs:
crates/cohort/src/rng.rs:
crates/cohort/src/trajectory.rs:
