/root/repo/target/debug/deps/msaw_bench-7ac771eedb6e8deb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-7ac771eedb6e8deb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-7ac771eedb6e8deb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
