/root/repo/target/debug/deps/mysawh_repro-e873edc40bf557be.d: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-e873edc40bf557be.rlib: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-e873edc40bf557be.rmeta: src/lib.rs

src/lib.rs:
