/root/repo/target/debug/deps/bench_grid-a0564d1074325179.d: crates/bench/src/bin/bench_grid.rs Cargo.toml

/root/repo/target/debug/deps/libbench_grid-a0564d1074325179.rmeta: crates/bench/src/bin/bench_grid.rs Cargo.toml

crates/bench/src/bin/bench_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
