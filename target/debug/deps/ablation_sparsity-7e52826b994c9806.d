/root/repo/target/debug/deps/ablation_sparsity-7e52826b994c9806.d: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sparsity-7e52826b994c9806.rmeta: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

crates/bench/src/bin/ablation_sparsity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
