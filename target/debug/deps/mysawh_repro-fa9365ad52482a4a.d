/root/repo/target/debug/deps/mysawh_repro-fa9365ad52482a4a.d: src/lib.rs

/root/repo/target/debug/deps/mysawh_repro-fa9365ad52482a4a: src/lib.rs

src/lib.rs:
