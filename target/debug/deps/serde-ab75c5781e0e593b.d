/root/repo/target/debug/deps/serde-ab75c5781e0e593b.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ab75c5781e0e593b.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
