/root/repo/target/debug/deps/msaw_core-9409f438c976170a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_core-9409f438c976170a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
