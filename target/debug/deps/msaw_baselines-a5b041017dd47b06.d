/root/repo/target/debug/deps/msaw_baselines-a5b041017dd47b06.d: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_baselines-a5b041017dd47b06.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/gam.rs:
crates/baselines/src/linear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
