/root/repo/target/debug/deps/qa_gap_sweep-42511337a8974f37.d: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqa_gap_sweep-42511337a8974f37.rmeta: crates/bench/src/bin/qa_gap_sweep.rs Cargo.toml

crates/bench/src/bin/qa_gap_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
