/root/repo/target/debug/deps/bench_grid-d8ed7a835635bec0.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/debug/deps/bench_grid-d8ed7a835635bec0: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
