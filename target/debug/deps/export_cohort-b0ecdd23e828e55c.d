/root/repo/target/debug/deps/export_cohort-b0ecdd23e828e55c.d: crates/bench/src/bin/export_cohort.rs Cargo.toml

/root/repo/target/debug/deps/libexport_cohort-b0ecdd23e828e55c.rmeta: crates/bench/src/bin/export_cohort.rs Cargo.toml

crates/bench/src/bin/export_cohort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
