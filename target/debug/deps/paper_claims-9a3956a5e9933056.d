/root/repo/target/debug/deps/paper_claims-9a3956a5e9933056.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9a3956a5e9933056: tests/paper_claims.rs

tests/paper_claims.rs:
