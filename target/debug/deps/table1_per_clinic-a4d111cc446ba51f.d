/root/repo/target/debug/deps/table1_per_clinic-a4d111cc446ba51f.d: crates/bench/src/bin/table1_per_clinic.rs

/root/repo/target/debug/deps/table1_per_clinic-a4d111cc446ba51f: crates/bench/src/bin/table1_per_clinic.rs

crates/bench/src/bin/table1_per_clinic.rs:
