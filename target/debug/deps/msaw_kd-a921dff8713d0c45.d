/root/repo/target/debug/deps/msaw_kd-a921dff8713d0c45.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_kd-a921dff8713d0c45.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs Cargo.toml

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
