/root/repo/target/debug/deps/baseline_learners-d560c02f92829975.d: crates/bench/src/bin/baseline_learners.rs

/root/repo/target/debug/deps/baseline_learners-d560c02f92829975: crates/bench/src/bin/baseline_learners.rs

crates/bench/src/bin/baseline_learners.rs:
