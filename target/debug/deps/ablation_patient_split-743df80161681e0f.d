/root/repo/target/debug/deps/ablation_patient_split-743df80161681e0f.d: crates/bench/src/bin/ablation_patient_split.rs

/root/repo/target/debug/deps/ablation_patient_split-743df80161681e0f: crates/bench/src/bin/ablation_patient_split.rs

crates/bench/src/bin/ablation_patient_split.rs:
