/root/repo/target/debug/deps/mysawh_repro-0cb1554c153941f9.d: src/lib.rs

/root/repo/target/debug/deps/mysawh_repro-0cb1554c153941f9: src/lib.rs

src/lib.rs:
