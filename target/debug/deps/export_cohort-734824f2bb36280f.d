/root/repo/target/debug/deps/export_cohort-734824f2bb36280f.d: crates/bench/src/bin/export_cohort.rs

/root/repo/target/debug/deps/export_cohort-734824f2bb36280f: crates/bench/src/bin/export_cohort.rs

crates/bench/src/bin/export_cohort.rs:
