/root/repo/target/debug/deps/msaw_shap-05d4ef63695b602d.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

/root/repo/target/debug/deps/libmsaw_shap-05d4ef63695b602d.rlib: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

/root/repo/target/debug/deps/libmsaw_shap-05d4ef63695b602d.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
