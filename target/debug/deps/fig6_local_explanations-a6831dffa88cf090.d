/root/repo/target/debug/deps/fig6_local_explanations-a6831dffa88cf090.d: crates/bench/src/bin/fig6_local_explanations.rs

/root/repo/target/debug/deps/fig6_local_explanations-a6831dffa88cf090: crates/bench/src/bin/fig6_local_explanations.rs

crates/bench/src/bin/fig6_local_explanations.rs:
