/root/repo/target/debug/deps/msaw_bench-5843376630096df8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-5843376630096df8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsaw_bench-5843376630096df8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
