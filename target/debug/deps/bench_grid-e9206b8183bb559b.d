/root/repo/target/debug/deps/bench_grid-e9206b8183bb559b.d: crates/bench/src/bin/bench_grid.rs Cargo.toml

/root/repo/target/debug/deps/libbench_grid-e9206b8183bb559b.rmeta: crates/bench/src/bin/bench_grid.rs Cargo.toml

crates/bench/src/bin/bench_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
