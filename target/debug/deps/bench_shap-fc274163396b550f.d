/root/repo/target/debug/deps/bench_shap-fc274163396b550f.d: crates/bench/src/bin/bench_shap.rs Cargo.toml

/root/repo/target/debug/deps/libbench_shap-fc274163396b550f.rmeta: crates/bench/src/bin/bench_shap.rs Cargo.toml

crates/bench/src/bin/bench_shap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
