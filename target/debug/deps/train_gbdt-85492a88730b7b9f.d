/root/repo/target/debug/deps/train_gbdt-85492a88730b7b9f.d: crates/bench/benches/train_gbdt.rs Cargo.toml

/root/repo/target/debug/deps/libtrain_gbdt-85492a88730b7b9f.rmeta: crates/bench/benches/train_gbdt.rs Cargo.toml

crates/bench/benches/train_gbdt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
