/root/repo/target/debug/deps/mysawh_repro-229c2fa709df3ea2.d: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-229c2fa709df3ea2.rlib: src/lib.rs

/root/repo/target/debug/deps/libmysawh_repro-229c2fa709df3ea2.rmeta: src/lib.rs

src/lib.rs:
