/root/repo/target/debug/deps/msaw_shap-50d0ea0b7a87a425.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_shap-50d0ea0b7a87a425.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs Cargo.toml

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
