/root/repo/target/debug/deps/msaw_metrics-cde4d04b76773f35.d: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/debug/deps/msaw_metrics-cde4d04b76773f35: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

crates/metrics/src/lib.rs:
crates/metrics/src/boxplot.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/classification.rs:
crates/metrics/src/cv.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/regression.rs:
