/root/repo/target/debug/deps/fig6_local_explanations-23163cc297d9c522.d: crates/bench/src/bin/fig6_local_explanations.rs

/root/repo/target/debug/deps/fig6_local_explanations-23163cc297d9c522: crates/bench/src/bin/fig6_local_explanations.rs

crates/bench/src/bin/fig6_local_explanations.rs:
