/root/repo/target/debug/deps/export_cohort-749a493cf1d45d9f.d: crates/bench/src/bin/export_cohort.rs

/root/repo/target/debug/deps/export_cohort-749a493cf1d45d9f: crates/bench/src/bin/export_cohort.rs

crates/bench/src/bin/export_cohort.rs:
