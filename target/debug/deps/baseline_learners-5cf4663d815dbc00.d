/root/repo/target/debug/deps/baseline_learners-5cf4663d815dbc00.d: crates/bench/src/bin/baseline_learners.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_learners-5cf4663d815dbc00.rmeta: crates/bench/src/bin/baseline_learners.rs Cargo.toml

crates/bench/src/bin/baseline_learners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
