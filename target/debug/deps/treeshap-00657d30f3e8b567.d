/root/repo/target/debug/deps/treeshap-00657d30f3e8b567.d: crates/bench/benches/treeshap.rs Cargo.toml

/root/repo/target/debug/deps/libtreeshap-00657d30f3e8b567.rmeta: crates/bench/benches/treeshap.rs Cargo.toml

crates/bench/benches/treeshap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
