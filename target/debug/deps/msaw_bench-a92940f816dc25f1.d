/root/repo/target/debug/deps/msaw_bench-a92940f816dc25f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsaw_bench-a92940f816dc25f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
