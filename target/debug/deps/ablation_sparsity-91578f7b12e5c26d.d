/root/repo/target/debug/deps/ablation_sparsity-91578f7b12e5c26d.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/debug/deps/ablation_sparsity-91578f7b12e5c26d: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
