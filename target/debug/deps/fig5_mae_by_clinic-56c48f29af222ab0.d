/root/repo/target/debug/deps/fig5_mae_by_clinic-56c48f29af222ab0.d: crates/bench/src/bin/fig5_mae_by_clinic.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_mae_by_clinic-56c48f29af222ab0.rmeta: crates/bench/src/bin/fig5_mae_by_clinic.rs Cargo.toml

crates/bench/src/bin/fig5_mae_by_clinic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
