/root/repo/target/debug/deps/fig4_dd_vs_kd-3d2b8ee51d62c7af.d: crates/bench/src/bin/fig4_dd_vs_kd.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_dd_vs_kd-3d2b8ee51d62c7af.rmeta: crates/bench/src/bin/fig4_dd_vs_kd.rs Cargo.toml

crates/bench/src/bin/fig4_dd_vs_kd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
