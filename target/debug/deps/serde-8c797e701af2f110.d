/root/repo/target/debug/deps/serde-8c797e701af2f110.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8c797e701af2f110.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-8c797e701af2f110.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
