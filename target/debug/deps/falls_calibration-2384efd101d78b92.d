/root/repo/target/debug/deps/falls_calibration-2384efd101d78b92.d: crates/bench/src/bin/falls_calibration.rs Cargo.toml

/root/repo/target/debug/deps/libfalls_calibration-2384efd101d78b92.rmeta: crates/bench/src/bin/falls_calibration.rs Cargo.toml

crates/bench/src/bin/falls_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
