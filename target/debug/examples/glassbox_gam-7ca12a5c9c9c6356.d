/root/repo/target/debug/examples/glassbox_gam-7ca12a5c9c9c6356.d: examples/glassbox_gam.rs

/root/repo/target/debug/examples/glassbox_gam-7ca12a5c9c9c6356: examples/glassbox_gam.rs

examples/glassbox_gam.rs:
