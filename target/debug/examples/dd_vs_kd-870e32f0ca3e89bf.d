/root/repo/target/debug/examples/dd_vs_kd-870e32f0ca3e89bf.d: examples/dd_vs_kd.rs

/root/repo/target/debug/examples/dd_vs_kd-870e32f0ca3e89bf: examples/dd_vs_kd.rs

examples/dd_vs_kd.rs:
