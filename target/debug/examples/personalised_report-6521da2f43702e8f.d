/root/repo/target/debug/examples/personalised_report-6521da2f43702e8f.d: examples/personalised_report.rs

/root/repo/target/debug/examples/personalised_report-6521da2f43702e8f: examples/personalised_report.rs

examples/personalised_report.rs:
