/root/repo/target/debug/examples/clinic_stratification-79bd0f627df7123c.d: examples/clinic_stratification.rs

/root/repo/target/debug/examples/clinic_stratification-79bd0f627df7123c: examples/clinic_stratification.rs

examples/clinic_stratification.rs:
