/root/repo/target/debug/examples/quickstart-195ef17a489c1d8f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-195ef17a489c1d8f: examples/quickstart.rs

examples/quickstart.rs:
