/root/repo/target/release/deps/msaw_gbdt-2ce9914728944781.d: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

/root/repo/target/release/deps/libmsaw_gbdt-2ce9914728944781.rlib: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

/root/repo/target/release/deps/libmsaw_gbdt-2ce9914728944781.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/binning.rs crates/gbdt/src/booster.rs crates/gbdt/src/context.rs crates/gbdt/src/engine.rs crates/gbdt/src/error.rs crates/gbdt/src/importance.rs crates/gbdt/src/objective.rs crates/gbdt/src/params.rs crates/gbdt/src/serialize.rs crates/gbdt/src/split.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/binning.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/context.rs:
crates/gbdt/src/engine.rs:
crates/gbdt/src/error.rs:
crates/gbdt/src/importance.rs:
crates/gbdt/src/objective.rs:
crates/gbdt/src/params.rs:
crates/gbdt/src/serialize.rs:
crates/gbdt/src/split.rs:
crates/gbdt/src/tree.rs:
