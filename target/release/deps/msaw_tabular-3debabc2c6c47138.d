/root/repo/target/release/deps/msaw_tabular-3debabc2c6c47138.d: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

/root/repo/target/release/deps/libmsaw_tabular-3debabc2c6c47138.rlib: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

/root/repo/target/release/deps/libmsaw_tabular-3debabc2c6c47138.rmeta: crates/tabular/src/lib.rs crates/tabular/src/column.rs crates/tabular/src/csv.rs crates/tabular/src/error.rs crates/tabular/src/frame.rs crates/tabular/src/matrix.rs crates/tabular/src/schema.rs crates/tabular/src/stats.rs

crates/tabular/src/lib.rs:
crates/tabular/src/column.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/error.rs:
crates/tabular/src/frame.rs:
crates/tabular/src/matrix.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/stats.rs:
