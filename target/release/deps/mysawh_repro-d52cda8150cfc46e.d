/root/repo/target/release/deps/mysawh_repro-d52cda8150cfc46e.d: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-d52cda8150cfc46e.rlib: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-d52cda8150cfc46e.rmeta: src/lib.rs

src/lib.rs:
