/root/repo/target/release/deps/mysawh_repro-200d3f5c2d0e5adf.d: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-200d3f5c2d0e5adf.rlib: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-200d3f5c2d0e5adf.rmeta: src/lib.rs

src/lib.rs:
