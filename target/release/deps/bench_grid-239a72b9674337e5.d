/root/repo/target/release/deps/bench_grid-239a72b9674337e5.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/release/deps/bench_grid-239a72b9674337e5: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
