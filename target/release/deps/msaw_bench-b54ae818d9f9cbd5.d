/root/repo/target/release/deps/msaw_bench-b54ae818d9f9cbd5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-b54ae818d9f9cbd5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-b54ae818d9f9cbd5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
