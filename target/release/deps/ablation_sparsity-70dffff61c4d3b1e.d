/root/repo/target/release/deps/ablation_sparsity-70dffff61c4d3b1e.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/release/deps/ablation_sparsity-70dffff61c4d3b1e: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
