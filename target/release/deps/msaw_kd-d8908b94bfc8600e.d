/root/repo/target/release/deps/msaw_kd-d8908b94bfc8600e.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/release/deps/libmsaw_kd-d8908b94bfc8600e.rlib: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/release/deps/libmsaw_kd-d8908b94bfc8600e.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
