/root/repo/target/release/deps/fig6_local_explanations-3e286e6f2a51b0ff.d: crates/bench/src/bin/fig6_local_explanations.rs

/root/repo/target/release/deps/fig6_local_explanations-3e286e6f2a51b0ff: crates/bench/src/bin/fig6_local_explanations.rs

crates/bench/src/bin/fig6_local_explanations.rs:
