/root/repo/target/release/deps/msaw_baselines-7a14f82f2491ac47.d: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

/root/repo/target/release/deps/libmsaw_baselines-7a14f82f2491ac47.rlib: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

/root/repo/target/release/deps/libmsaw_baselines-7a14f82f2491ac47.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gam.rs crates/baselines/src/linear.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gam.rs:
crates/baselines/src/linear.rs:
