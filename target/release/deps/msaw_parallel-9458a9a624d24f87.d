/root/repo/target/release/deps/msaw_parallel-9458a9a624d24f87.d: crates/parallel/src/lib.rs

/root/repo/target/release/deps/libmsaw_parallel-9458a9a624d24f87.rlib: crates/parallel/src/lib.rs

/root/repo/target/release/deps/libmsaw_parallel-9458a9a624d24f87.rmeta: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
