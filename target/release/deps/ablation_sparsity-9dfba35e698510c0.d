/root/repo/target/release/deps/ablation_sparsity-9dfba35e698510c0.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/release/deps/ablation_sparsity-9dfba35e698510c0: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
