/root/repo/target/release/deps/mysawh_repro-9cf4400f369b4087.d: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-9cf4400f369b4087.rlib: src/lib.rs

/root/repo/target/release/deps/libmysawh_repro-9cf4400f369b4087.rmeta: src/lib.rs

src/lib.rs:
