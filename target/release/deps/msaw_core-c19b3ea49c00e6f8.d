/root/repo/target/release/deps/msaw_core-c19b3ea49c00e6f8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/release/deps/libmsaw_core-c19b3ea49c00e6f8.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/release/deps/libmsaw_core-c19b3ea49c00e6f8.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
