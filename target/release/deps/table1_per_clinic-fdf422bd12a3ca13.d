/root/repo/target/release/deps/table1_per_clinic-fdf422bd12a3ca13.d: crates/bench/src/bin/table1_per_clinic.rs

/root/repo/target/release/deps/table1_per_clinic-fdf422bd12a3ca13: crates/bench/src/bin/table1_per_clinic.rs

crates/bench/src/bin/table1_per_clinic.rs:
