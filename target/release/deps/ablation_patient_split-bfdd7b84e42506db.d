/root/repo/target/release/deps/ablation_patient_split-bfdd7b84e42506db.d: crates/bench/src/bin/ablation_patient_split.rs

/root/repo/target/release/deps/ablation_patient_split-bfdd7b84e42506db: crates/bench/src/bin/ablation_patient_split.rs

crates/bench/src/bin/ablation_patient_split.rs:
