/root/repo/target/release/deps/fig5_mae_by_clinic-6210a05237ce7d4e.d: crates/bench/src/bin/fig5_mae_by_clinic.rs

/root/repo/target/release/deps/fig5_mae_by_clinic-6210a05237ce7d4e: crates/bench/src/bin/fig5_mae_by_clinic.rs

crates/bench/src/bin/fig5_mae_by_clinic.rs:
