/root/repo/target/release/deps/fig4_dd_vs_kd-91e3aaef27681d1b.d: crates/bench/src/bin/fig4_dd_vs_kd.rs

/root/repo/target/release/deps/fig4_dd_vs_kd-91e3aaef27681d1b: crates/bench/src/bin/fig4_dd_vs_kd.rs

crates/bench/src/bin/fig4_dd_vs_kd.rs:
