/root/repo/target/release/deps/table1_per_clinic-afc85d9aa5e043b3.d: crates/bench/src/bin/table1_per_clinic.rs

/root/repo/target/release/deps/table1_per_clinic-afc85d9aa5e043b3: crates/bench/src/bin/table1_per_clinic.rs

crates/bench/src/bin/table1_per_clinic.rs:
