/root/repo/target/release/deps/msaw_metrics-72cab3246ac6548e.d: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/release/deps/libmsaw_metrics-72cab3246ac6548e.rlib: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/release/deps/libmsaw_metrics-72cab3246ac6548e.rmeta: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

crates/metrics/src/lib.rs:
crates/metrics/src/boxplot.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/classification.rs:
crates/metrics/src/cv.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/regression.rs:
