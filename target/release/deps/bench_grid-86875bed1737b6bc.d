/root/repo/target/release/deps/bench_grid-86875bed1737b6bc.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/release/deps/bench_grid-86875bed1737b6bc: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
