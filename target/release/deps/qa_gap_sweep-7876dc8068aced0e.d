/root/repo/target/release/deps/qa_gap_sweep-7876dc8068aced0e.d: crates/bench/src/bin/qa_gap_sweep.rs

/root/repo/target/release/deps/qa_gap_sweep-7876dc8068aced0e: crates/bench/src/bin/qa_gap_sweep.rs

crates/bench/src/bin/qa_gap_sweep.rs:
