/root/repo/target/release/deps/shap_equivalence-a0dd8f0c66a6c726.d: crates/shap/tests/shap_equivalence.rs

/root/repo/target/release/deps/shap_equivalence-a0dd8f0c66a6c726: crates/shap/tests/shap_equivalence.rs

crates/shap/tests/shap_equivalence.rs:
