/root/repo/target/release/deps/export_cohort-c133ec1ea613f01d.d: crates/bench/src/bin/export_cohort.rs

/root/repo/target/release/deps/export_cohort-c133ec1ea613f01d: crates/bench/src/bin/export_cohort.rs

crates/bench/src/bin/export_cohort.rs:
