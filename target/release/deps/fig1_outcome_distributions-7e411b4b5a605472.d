/root/repo/target/release/deps/fig1_outcome_distributions-7e411b4b5a605472.d: crates/bench/src/bin/fig1_outcome_distributions.rs

/root/repo/target/release/deps/fig1_outcome_distributions-7e411b4b5a605472: crates/bench/src/bin/fig1_outcome_distributions.rs

crates/bench/src/bin/fig1_outcome_distributions.rs:
