/root/repo/target/release/deps/qa_gap_sweep-ee370b6cf0c7101f.d: crates/bench/src/bin/qa_gap_sweep.rs

/root/repo/target/release/deps/qa_gap_sweep-ee370b6cf0c7101f: crates/bench/src/bin/qa_gap_sweep.rs

crates/bench/src/bin/qa_gap_sweep.rs:
