/root/repo/target/release/deps/falls_calibration-e624a62379b6c348.d: crates/bench/src/bin/falls_calibration.rs

/root/repo/target/release/deps/falls_calibration-e624a62379b6c348: crates/bench/src/bin/falls_calibration.rs

crates/bench/src/bin/falls_calibration.rs:
