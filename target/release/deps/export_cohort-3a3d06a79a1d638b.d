/root/repo/target/release/deps/export_cohort-3a3d06a79a1d638b.d: crates/bench/src/bin/export_cohort.rs

/root/repo/target/release/deps/export_cohort-3a3d06a79a1d638b: crates/bench/src/bin/export_cohort.rs

crates/bench/src/bin/export_cohort.rs:
