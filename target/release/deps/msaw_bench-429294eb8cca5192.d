/root/repo/target/release/deps/msaw_bench-429294eb8cca5192.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-429294eb8cca5192.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-429294eb8cca5192.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
