/root/repo/target/release/deps/msaw_preprocess-0ff2e6e64ca870f7.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/release/deps/libmsaw_preprocess-0ff2e6e64ca870f7.rlib: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/release/deps/libmsaw_preprocess-0ff2e6e64ca870f7.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
