/root/repo/target/release/deps/ablation_patient_split-c26ed59498a0bc47.d: crates/bench/src/bin/ablation_patient_split.rs

/root/repo/target/release/deps/ablation_patient_split-c26ed59498a0bc47: crates/bench/src/bin/ablation_patient_split.rs

crates/bench/src/bin/ablation_patient_split.rs:
