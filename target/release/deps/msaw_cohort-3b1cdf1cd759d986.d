/root/repo/target/release/deps/msaw_cohort-3b1cdf1cd759d986.d: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs

/root/repo/target/release/deps/libmsaw_cohort-3b1cdf1cd759d986.rlib: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs

/root/repo/target/release/deps/libmsaw_cohort-3b1cdf1cd759d986.rmeta: crates/cohort/src/lib.rs crates/cohort/src/activity.rs crates/cohort/src/clinical.rs crates/cohort/src/config.rs crates/cohort/src/domains.rs crates/cohort/src/generator.rs crates/cohort/src/missing.rs crates/cohort/src/outcomes.rs crates/cohort/src/patient.rs crates/cohort/src/pro.rs crates/cohort/src/rng.rs crates/cohort/src/trajectory.rs

crates/cohort/src/lib.rs:
crates/cohort/src/activity.rs:
crates/cohort/src/clinical.rs:
crates/cohort/src/config.rs:
crates/cohort/src/domains.rs:
crates/cohort/src/generator.rs:
crates/cohort/src/missing.rs:
crates/cohort/src/outcomes.rs:
crates/cohort/src/patient.rs:
crates/cohort/src/pro.rs:
crates/cohort/src/rng.rs:
crates/cohort/src/trajectory.rs:
