/root/repo/target/release/deps/msaw_metrics-014c513d06005f22.d: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

/root/repo/target/release/deps/msaw_metrics-014c513d06005f22: crates/metrics/src/lib.rs crates/metrics/src/boxplot.rs crates/metrics/src/calibration.rs crates/metrics/src/classification.rs crates/metrics/src/cv.rs crates/metrics/src/histogram.rs crates/metrics/src/regression.rs

crates/metrics/src/lib.rs:
crates/metrics/src/boxplot.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/classification.rs:
crates/metrics/src/cv.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/regression.rs:
