/root/repo/target/release/deps/grid_snapshot-715f6ddc24960256.d: crates/core/tests/grid_snapshot.rs

/root/repo/target/release/deps/grid_snapshot-715f6ddc24960256: crates/core/tests/grid_snapshot.rs

crates/core/tests/grid_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
