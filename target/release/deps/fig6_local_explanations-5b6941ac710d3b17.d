/root/repo/target/release/deps/fig6_local_explanations-5b6941ac710d3b17.d: crates/bench/src/bin/fig6_local_explanations.rs

/root/repo/target/release/deps/fig6_local_explanations-5b6941ac710d3b17: crates/bench/src/bin/fig6_local_explanations.rs

crates/bench/src/bin/fig6_local_explanations.rs:
