/root/repo/target/release/deps/msaw_bench-4e31fe0f73d26734.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-4e31fe0f73d26734.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsaw_bench-4e31fe0f73d26734.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
