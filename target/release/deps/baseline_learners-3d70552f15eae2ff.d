/root/repo/target/release/deps/baseline_learners-3d70552f15eae2ff.d: crates/bench/src/bin/baseline_learners.rs

/root/repo/target/release/deps/baseline_learners-3d70552f15eae2ff: crates/bench/src/bin/baseline_learners.rs

crates/bench/src/bin/baseline_learners.rs:
