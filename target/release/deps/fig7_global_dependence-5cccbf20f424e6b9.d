/root/repo/target/release/deps/fig7_global_dependence-5cccbf20f424e6b9.d: crates/bench/src/bin/fig7_global_dependence.rs

/root/repo/target/release/deps/fig7_global_dependence-5cccbf20f424e6b9: crates/bench/src/bin/fig7_global_dependence.rs

crates/bench/src/bin/fig7_global_dependence.rs:
