/root/repo/target/release/deps/msaw_parallel-2cbf08f10140329f.d: crates/parallel/src/lib.rs

/root/repo/target/release/deps/msaw_parallel-2cbf08f10140329f: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
