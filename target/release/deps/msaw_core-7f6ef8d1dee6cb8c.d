/root/repo/target/release/deps/msaw_core-7f6ef8d1dee6cb8c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/release/deps/msaw_core-7f6ef8d1dee6cb8c: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
