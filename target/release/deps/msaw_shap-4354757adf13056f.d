/root/repo/target/release/deps/msaw_shap-4354757adf13056f.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs

/root/repo/target/release/deps/msaw_shap-4354757adf13056f: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs crates/shap/src/brute.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
crates/shap/src/brute.rs:
