/root/repo/target/release/deps/msaw_shap-ae10695d0e83fede.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

/root/repo/target/release/deps/libmsaw_shap-ae10695d0e83fede.rlib: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

/root/repo/target/release/deps/libmsaw_shap-ae10695d0e83fede.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
