/root/repo/target/release/deps/msaw_kd-5b6014573c1af289.d: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/release/deps/libmsaw_kd-5b6014573c1af289.rlib: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

/root/repo/target/release/deps/libmsaw_kd-5b6014573c1af289.rmeta: crates/kd/src/lib.rs crates/kd/src/fi.rs crates/kd/src/ici.rs

crates/kd/src/lib.rs:
crates/kd/src/fi.rs:
crates/kd/src/ici.rs:
