/root/repo/target/release/deps/msaw_core-878a382bc2df1f49.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/release/deps/libmsaw_core-878a382bc2df1f49.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

/root/repo/target/release/deps/libmsaw_core-878a382bc2df1f49.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/grid.rs crates/core/src/interpret.rs crates/core/src/oof.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/grid.rs:
crates/core/src/interpret.rs:
crates/core/src/oof.rs:
