/root/repo/target/release/deps/msaw_preprocess-3272b005488728b8.d: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/release/deps/libmsaw_preprocess-3272b005488728b8.rlib: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

/root/repo/target/release/deps/libmsaw_preprocess-3272b005488728b8.rmeta: crates/preprocess/src/lib.rs crates/preprocess/src/aggregate.rs crates/preprocess/src/interpolate.rs crates/preprocess/src/samples.rs

crates/preprocess/src/lib.rs:
crates/preprocess/src/aggregate.rs:
crates/preprocess/src/interpolate.rs:
crates/preprocess/src/samples.rs:
