/root/repo/target/release/deps/bench_shap-d62ef8e24a55df4a.d: crates/bench/src/bin/bench_shap.rs

/root/repo/target/release/deps/bench_shap-d62ef8e24a55df4a: crates/bench/src/bin/bench_shap.rs

crates/bench/src/bin/bench_shap.rs:
