/root/repo/target/release/deps/bench_grid-e45853561193f7e1.d: crates/bench/src/bin/bench_grid.rs

/root/repo/target/release/deps/bench_grid-e45853561193f7e1: crates/bench/src/bin/bench_grid.rs

crates/bench/src/bin/bench_grid.rs:
