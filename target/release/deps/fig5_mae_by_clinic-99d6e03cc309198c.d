/root/repo/target/release/deps/fig5_mae_by_clinic-99d6e03cc309198c.d: crates/bench/src/bin/fig5_mae_by_clinic.rs

/root/repo/target/release/deps/fig5_mae_by_clinic-99d6e03cc309198c: crates/bench/src/bin/fig5_mae_by_clinic.rs

crates/bench/src/bin/fig5_mae_by_clinic.rs:
