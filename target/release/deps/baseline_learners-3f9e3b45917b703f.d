/root/repo/target/release/deps/baseline_learners-3f9e3b45917b703f.d: crates/bench/src/bin/baseline_learners.rs

/root/repo/target/release/deps/baseline_learners-3f9e3b45917b703f: crates/bench/src/bin/baseline_learners.rs

crates/bench/src/bin/baseline_learners.rs:
