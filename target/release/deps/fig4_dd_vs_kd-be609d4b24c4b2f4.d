/root/repo/target/release/deps/fig4_dd_vs_kd-be609d4b24c4b2f4.d: crates/bench/src/bin/fig4_dd_vs_kd.rs

/root/repo/target/release/deps/fig4_dd_vs_kd-be609d4b24c4b2f4: crates/bench/src/bin/fig4_dd_vs_kd.rs

crates/bench/src/bin/fig4_dd_vs_kd.rs:
