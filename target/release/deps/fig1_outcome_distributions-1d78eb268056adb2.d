/root/repo/target/release/deps/fig1_outcome_distributions-1d78eb268056adb2.d: crates/bench/src/bin/fig1_outcome_distributions.rs

/root/repo/target/release/deps/fig1_outcome_distributions-1d78eb268056adb2: crates/bench/src/bin/fig1_outcome_distributions.rs

crates/bench/src/bin/fig1_outcome_distributions.rs:
