/root/repo/target/release/deps/shap_probe_tmp-d77ed0d112223234.d: crates/bench/src/bin/shap_probe_tmp.rs

/root/repo/target/release/deps/shap_probe_tmp-d77ed0d112223234: crates/bench/src/bin/shap_probe_tmp.rs

crates/bench/src/bin/shap_probe_tmp.rs:
