/root/repo/target/release/deps/shap_probe_tmp-aae1b8b9180b77df.d: crates/bench/src/bin/shap_probe_tmp.rs

/root/repo/target/release/deps/shap_probe_tmp-aae1b8b9180b77df: crates/bench/src/bin/shap_probe_tmp.rs

crates/bench/src/bin/shap_probe_tmp.rs:
