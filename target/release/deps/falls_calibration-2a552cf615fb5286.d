/root/repo/target/release/deps/falls_calibration-2a552cf615fb5286.d: crates/bench/src/bin/falls_calibration.rs

/root/repo/target/release/deps/falls_calibration-2a552cf615fb5286: crates/bench/src/bin/falls_calibration.rs

crates/bench/src/bin/falls_calibration.rs:
