/root/repo/target/release/deps/fig7_global_dependence-e0946d048f9b6e49.d: crates/bench/src/bin/fig7_global_dependence.rs

/root/repo/target/release/deps/fig7_global_dependence-e0946d048f9b6e49: crates/bench/src/bin/fig7_global_dependence.rs

crates/bench/src/bin/fig7_global_dependence.rs:
