/root/repo/target/release/deps/msaw_shap-6e368dc95fb5d868.d: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

/root/repo/target/release/deps/libmsaw_shap-6e368dc95fb5d868.rlib: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

/root/repo/target/release/deps/libmsaw_shap-6e368dc95fb5d868.rmeta: crates/shap/src/lib.rs crates/shap/src/dependence.rs crates/shap/src/explainer.rs crates/shap/src/global.rs crates/shap/src/interaction.rs crates/shap/src/reference.rs

crates/shap/src/lib.rs:
crates/shap/src/dependence.rs:
crates/shap/src/explainer.rs:
crates/shap/src/global.rs:
crates/shap/src/interaction.rs:
crates/shap/src/reference.rs:
