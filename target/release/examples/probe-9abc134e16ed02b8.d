/root/repo/target/release/examples/probe-9abc134e16ed02b8.d: examples/probe.rs

/root/repo/target/release/examples/probe-9abc134e16ed02b8: examples/probe.rs

examples/probe.rs:
