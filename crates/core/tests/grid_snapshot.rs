//! Byte-identity pin for the 12-model grid.
//!
//! The training engine underneath `run_full_grid` is allowed to change
//! (shared binning, parallel split search, work-queue scheduling) only
//! if the grid's results stay bit-for-bit identical for a fixed seed.
//! This test pins the full `Debug` rendering of the grid — every float
//! in every variant — against a checked-in snapshot.
//!
//! Regenerate (after an *intentional* protocol change, never an engine
//! change) with:
//!
//! ```text
//! MSAW_REGEN_SNAPSHOT=1 cargo test -p msaw-core --test grid_snapshot
//! ```

use msaw_cohort::{generate, CohortConfig};
use msaw_core::{run_full_grid, ExperimentConfig};

fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/grid_small_fast.txt")
}

#[test]
fn full_grid_matches_snapshot() {
    let data = generate(&CohortConfig::small(42));
    let results = run_full_grid(&data, &ExperimentConfig::fast());
    let rendered = format!("{results:#?}\n");

    let path = snapshot_path();
    if std::env::var_os("MSAW_REGEN_SNAPSHOT").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("snapshot regenerated at {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {} ({e}); regenerate with MSAW_REGEN_SNAPSHOT=1", path.display())
    });
    if rendered != expected {
        // Locate the first diverging line so the failure is readable —
        // the full rendering runs to hundreds of lines.
        let first_diff = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(expected.lines().count()));
        let got = rendered.lines().nth(first_diff).unwrap_or("<eof>");
        let want = expected.lines().nth(first_diff).unwrap_or("<eof>");
        panic!(
            "grid output diverged from snapshot at line {}:\n  got:  {got}\n  want: {want}\n\
             (an engine change must be bit-identical; regenerate only for protocol changes)",
            first_diff + 1
        );
    }
}
