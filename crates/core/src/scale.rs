//! Population-scale streaming pipeline: generate → featurize → bin →
//! train, with memory bounded by chunk sizes rather than cohort size.
//!
//! The paper's cohort is 261 patients; this module answers "what if it
//! were a million". It composes the streaming layers end to end:
//!
//! 1. **Sketch pass** — a [`SampleStream`] regenerates the cohort chunk
//!    by chunk; each block updates a [`CutSketch`] (quantile cut
//!    candidates) and appends its labels. Nothing else is retained.
//! 2. **Encode pass** — the stream is regenerated (generation is
//!    deterministic in `(config, patient id)`, so the rows are
//!    bit-identical) and every row is encoded into a
//!    [`ChunkedMatrixBuilder`]: fixed-size row blocks of binned `u16`
//!    codes, in memory or spilled to a checksummed columnar file.
//! 3. **Fit** — [`train_chunked`] streams the row blocks through
//!    histogram training, bit-identical to the in-memory
//!    [`msaw_gbdt::Booster::train`] hist path (pinned by tests here and
//!    in `msaw-gbdt`).
//!
//! Peak memory is `O(chunk_patients + block_rows + labels)`, so the
//! only term growing with cohort size is the label vector (8 bytes per
//! sample) — the 100× larger code matrix lives on disk when spilled.

use crate::error::PipelineError;
use msaw_cohort::CohortConfig;
use msaw_gbdt::{
    train_chunked, ChunkError, ChunkedMatrixBuilder, CutSketch, Params, TrainReport, TreeMethod,
};
use msaw_preprocess::{FeaturePanel, OutcomeKind, PipelineConfig, SampleStream};
use std::path::PathBuf;
use std::time::Instant;

/// How a [`run_scale`] invocation should stream and train.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Outcome to label and train on.
    pub outcome: OutcomeKind,
    /// Featurization settings (QA gaps, windows, …).
    pub pipeline: PipelineConfig,
    /// Training hyper-parameters; must use [`TreeMethod::Hist`]
    /// (the exact method cannot stream).
    pub params: Params,
    /// Patients generated and featurized per streaming chunk.
    pub chunk_patients: usize,
    /// Rows per binned block in the chunked matrix.
    pub block_rows: usize,
    /// Per-feature distinct-value capacity of the cut sketch.
    pub sketch_capacity: usize,
    /// Spill the binned blocks to this file instead of holding them in
    /// memory. `None` keeps them resident (fine below ~10⁵ patients).
    pub spill_path: Option<PathBuf>,
    /// Worker threads for histogram accumulation during the fit.
    pub workers: usize,
}

impl ScaleConfig {
    /// Defaults tuned for the scaling bench: modest forest, bounded
    /// chunks, in-memory blocks.
    pub fn new(outcome: OutcomeKind) -> ScaleConfig {
        ScaleConfig {
            outcome,
            pipeline: PipelineConfig::default(),
            params: Params {
                n_estimators: 20,
                max_depth: 4,
                tree_method: TreeMethod::Hist { max_bins: 32 },
                ..Params::regression()
            },
            chunk_patients: 2048,
            block_rows: msaw_gbdt::DEFAULT_BLOCK_ROWS,
            sketch_capacity: msaw_gbdt::DEFAULT_SKETCH_DISTINCT,
            spill_path: None,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// What a [`run_scale`] run did, with per-stage wall times for the
/// scaling curves.
#[derive(Debug)]
pub struct ScaleReport {
    /// Patients generated.
    pub n_patients: usize,
    /// QA-passing samples (training rows).
    pub n_rows: usize,
    /// Feature count.
    pub n_features: usize,
    /// Whether the binned blocks were spilled to disk.
    pub spilled: bool,
    /// Whether the cut sketch stayed exact (no thinning).
    pub sketch_exact: bool,
    /// Wall time of the sketch pass (generate + featurize + sketch).
    pub sketch_secs: f64,
    /// Wall time of the encode pass (regenerate + bin + store).
    pub encode_secs: f64,
    /// Wall time of the chunked fit.
    pub fit_secs: f64,
    /// Fit throughput, rows × trees per second of fit wall time.
    pub fit_rows_per_sec: f64,
    /// Peak resident set size of the process so far, if the platform
    /// exposes it (Linux `VmHWM`). Monotonic across a process, so
    /// ascending-scale sweeps attribute it to the largest run.
    pub peak_rss_mb: Option<f64>,
    /// The trained model and its loss history.
    pub train: TrainReport,
}

impl From<ChunkError> for PipelineError {
    fn from(e: ChunkError) -> Self {
        match e {
            // Parameter/label failures keep their typed identity.
            ChunkError::Train(source) => PipelineError::Train { job: None, source },
            other => PipelineError::Chunk { message: other.to_string() },
        }
    }
}

/// Run the streaming generate → sketch → encode → fit pipeline for
/// `cohort` under `cfg`. See the module docs for the pass structure;
/// the trained model is bit-identical to materialising the cohort and
/// calling [`msaw_gbdt::Booster::train`] with the same parameters
/// (while the sketch stays exact, which it does by a wide margin for
/// this feature panel).
pub fn run_scale(cohort: &CohortConfig, cfg: &ScaleConfig) -> Result<ScaleReport, PipelineError> {
    let n_features = FeaturePanel::feature_names().len();

    // Pass 1: sketch cuts and collect labels.
    let sketch_start = Instant::now();
    let mut sketch = CutSketch::with_capacity(n_features, cfg.sketch_capacity);
    let mut labels: Vec<f64> = Vec::new();
    for block in SampleStream::new(cohort, cfg.outcome, cfg.pipeline.clone(), cfg.chunk_patients) {
        sketch.update(&block.rows);
        labels.extend(block.labels);
    }
    let sketch_exact = sketch.is_exact();
    let max_bins = match cfg.params.tree_method {
        TreeMethod::Hist { max_bins } => max_bins,
        TreeMethod::Exact => {
            return Err(PipelineError::Train {
                job: None,
                source: msaw_gbdt::TrainError::InvalidParam {
                    name: "tree_method",
                    message: "the scale pipeline streams histograms; use TreeMethod::Hist".into(),
                },
            })
        }
    };
    let cuts = sketch.cuts(max_bins);
    let sketch_secs = sketch_start.elapsed().as_secs_f64();

    // Pass 2: regenerate and encode into fixed-size binned blocks.
    let encode_start = Instant::now();
    let mut builder = match &cfg.spill_path {
        Some(path) => ChunkedMatrixBuilder::spilled(cuts, cfg.block_rows, path)?,
        None => ChunkedMatrixBuilder::in_memory(cuts, cfg.block_rows),
    };
    for block in SampleStream::new(cohort, cfg.outcome, cfg.pipeline.clone(), cfg.chunk_patients) {
        builder.push_rows(&block.rows)?;
    }
    let mut matrix = builder.finish()?;
    let encode_secs = encode_start.elapsed().as_secs_f64();

    // Pass 3: out-of-core fit over the row blocks.
    let fit_start = Instant::now();
    let train = train_chunked(&cfg.params, &mut matrix, &labels, cfg.workers)?;
    let fit_secs = fit_start.elapsed().as_secs_f64();
    let n_rows = labels.len();
    let fit_rows_per_sec = if fit_secs > 0.0 {
        n_rows as f64 * cfg.params.n_estimators as f64 / fit_secs
    } else {
        0.0
    };

    Ok(ScaleReport {
        n_patients: cohort.total_patients(),
        n_rows,
        n_features,
        spilled: matrix.is_spilled(),
        sketch_exact,
        sketch_secs,
        encode_secs,
        fit_secs,
        fit_rows_per_sec,
        peak_rss_mb: peak_rss_mb(),
        train,
    })
}

/// Peak resident set size of this process in MiB, from Linux's
/// `/proc/self/status` `VmHWM` line; `None` where that is unavailable.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::Booster;
    use msaw_preprocess::build_samples;

    /// The streamed, chunked, out-of-core run must train the same model
    /// — bit for bit — as materialising the cohort and fitting in
    /// memory, for both storage modes.
    #[test]
    fn scale_run_matches_in_memory_training() {
        let cohort = CohortConfig::small(42);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        cfg.params.n_estimators = 8;
        cfg.chunk_patients = 5;
        cfg.block_rows = 64;
        cfg.workers = 4;

        let data = msaw_cohort::generate(&cohort);
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);
        let reference = Booster::train(&cfg.params, &set.features, &set.labels).unwrap();

        let report = run_scale(&cohort, &cfg).unwrap();
        assert_eq!(report.n_rows, set.len());
        assert_eq!(report.n_features, set.features.ncols());
        assert!(report.sketch_exact);
        assert!(!report.spilled);
        assert_eq!(report.train.booster, reference);

        let spill =
            std::env::temp_dir().join(format!("msaw_scale_test_{}.mscb", std::process::id()));
        cfg.spill_path = Some(spill.clone());
        let spilled = run_scale(&cohort, &cfg).unwrap();
        assert!(spilled.spilled);
        assert_eq!(spilled.train.booster, reference);
        let _ = std::fs::remove_file(&spill);
    }

    #[test]
    fn exact_method_is_rejected_with_a_typed_error() {
        let cohort = CohortConfig::small(7);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        cfg.params.tree_method = TreeMethod::Exact;
        match run_scale(&cohort, &cfg) {
            Err(PipelineError::Train {
                source: msaw_gbdt::TrainError::InvalidParam { name: "tree_method", .. },
                ..
            }) => {}
            other => panic!("expected InvalidParam, got {other:?}"),
        }
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mb().expect("VmHWM available");
            assert!(rss > 1.0, "a test process uses more than 1 MiB, got {rss}");
        }
    }
}
