//! Population-scale streaming pipeline: generate → featurize → bin →
//! train, with memory bounded by chunk sizes rather than cohort size.
//!
//! The paper's cohort is 261 patients; this module answers "what if it
//! were a million". It composes the streaming layers end to end, with
//! every stage fanned across the worker pool:
//!
//! 1. **Sketch pass** — patient chunks are regenerated and featurized
//!    in parallel ([`range_samples`] is pure in `(config, id range)`),
//!    each worker building a private [`CutSketch`]; the main thread
//!    merges sketches and appends labels strictly in chunk order, so
//!    the cut table is byte-identical at any worker count.
//! 2. **Encode pass** — workers regenerate their chunks (generation is
//!    deterministic, so the rows are bit-identical) and bin-encode
//!    them against the shared cut table; the main thread appends the
//!    code slabs in chunk order into a [`ChunkedMatrixBuilder`]:
//!    fixed-size row blocks of binned `u16` codes, in memory or
//!    spilled to a checksummed columnar file whose bytes never depend
//!    on the worker count.
//! 3. **Fit** — [`train_chunked`] streams the row blocks through
//!    histogram training — prefetching spilled blocks so decode
//!    overlaps compute — bit-identical to the in-memory
//!    [`msaw_gbdt::Booster::train`] hist path (pinned by tests here and
//!    in `msaw-gbdt`).
//!
//! Peak memory is `O(chunk_patients + block_rows + labels)`, so the
//! only term growing with cohort size is the label vector (8 bytes per
//! sample) — the 100× larger code matrix lives on disk when spilled.

use crate::error::PipelineError;
use msaw_cohort::CohortConfig;
use msaw_gbdt::{
    encode_rows, train_chunked, ChunkError, ChunkedMatrixBuilder, CutSketch, Params, TrainReport,
    TreeMethod,
};
use msaw_parallel::{try_run_waves_on, WaveError};
use msaw_preprocess::{range_samples, FeaturePanel, OutcomeKind, PipelineConfig};
use std::path::PathBuf;
use std::time::Instant;

/// How a [`run_scale`] invocation should stream and train.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Outcome to label and train on.
    pub outcome: OutcomeKind,
    /// Featurization settings (QA gaps, windows, …).
    pub pipeline: PipelineConfig,
    /// Training hyper-parameters; must use [`TreeMethod::Hist`]
    /// (the exact method cannot stream).
    pub params: Params,
    /// Patients generated and featurized per streaming chunk.
    pub chunk_patients: usize,
    /// Rows per binned block in the chunked matrix.
    pub block_rows: usize,
    /// Per-feature distinct-value capacity of the cut sketch.
    pub sketch_capacity: usize,
    /// Spill the binned blocks to this file instead of holding them in
    /// memory. `None` keeps them resident (fine below ~10⁵ patients).
    pub spill_path: Option<PathBuf>,
    /// Worker threads for histogram accumulation during the fit.
    pub workers: usize,
}

impl ScaleConfig {
    /// Defaults tuned for the scaling bench: modest forest, bounded
    /// chunks, in-memory blocks.
    pub fn new(outcome: OutcomeKind) -> ScaleConfig {
        ScaleConfig {
            outcome,
            pipeline: PipelineConfig::default(),
            params: Params {
                n_estimators: 20,
                max_depth: 4,
                tree_method: TreeMethod::Hist { max_bins: 32 },
                ..Params::regression()
            },
            chunk_patients: 2048,
            block_rows: msaw_gbdt::DEFAULT_BLOCK_ROWS,
            sketch_capacity: msaw_gbdt::DEFAULT_SKETCH_DISTINCT,
            spill_path: None,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// What a [`run_scale`] run did, with per-stage wall times for the
/// scaling curves.
#[derive(Debug)]
pub struct ScaleReport {
    /// Patients generated.
    pub n_patients: usize,
    /// QA-passing samples (training rows).
    pub n_rows: usize,
    /// Feature count.
    pub n_features: usize,
    /// Whether the binned blocks were spilled to disk.
    pub spilled: bool,
    /// Whether the cut sketch stayed exact (no thinning).
    pub sketch_exact: bool,
    /// Wall time of the sketch pass (generate + featurize + sketch).
    pub sketch_secs: f64,
    /// Wall time of the encode pass (regenerate + bin + store).
    pub encode_secs: f64,
    /// Wall time of the chunked fit.
    pub fit_secs: f64,
    /// Fit throughput, rows × trees per second of fit wall time.
    pub fit_rows_per_sec: f64,
    /// Peak resident set size of the process so far, if the platform
    /// exposes it (Linux `VmHWM`). Monotonic across a process, so
    /// ascending-scale sweeps attribute it to the largest run.
    pub peak_rss_mb: Option<f64>,
    /// The trained model and its loss history.
    pub train: TrainReport,
}

impl From<ChunkError> for PipelineError {
    fn from(e: ChunkError) -> Self {
        match e {
            // Parameter/label failures keep their typed identity.
            ChunkError::Train(source) => PipelineError::Train { job: None, source },
            other => PipelineError::Chunk { message: other.to_string() },
        }
    }
}

/// Run the streaming generate → sketch → encode → fit pipeline for
/// `cohort` under `cfg`. See the module docs for the pass structure;
/// the trained model is bit-identical to materialising the cohort and
/// calling [`msaw_gbdt::Booster::train`] with the same parameters
/// (while the sketch stays exact, which it does by a wide margin for
/// this feature panel).
pub fn run_scale(cohort: &CohortConfig, cfg: &ScaleConfig) -> Result<ScaleReport, PipelineError> {
    let n_features = FeaturePanel::feature_names().len();
    let workers = cfg.workers.max(1);
    let chunk_patients = cfg.chunk_patients.max(1);
    let n_patients = cohort.total_patients();
    let n_chunks = n_patients.div_ceil(chunk_patients);
    // Bounded fan-out: at most one wave of chunk outputs (two per
    // worker, so the pool stays fed while one drains) is resident;
    // merging strictly in chunk order keeps every artifact
    // byte-identical at any worker count.
    let wave = workers * 2;
    let chunk_range = |c: usize| {
        let start = (c * chunk_patients) as u32;
        (start, ((c + 1) * chunk_patients).min(n_patients) as u32)
    };
    let wave_err = |e: WaveError<ChunkError>| -> PipelineError {
        match e {
            WaveError::Pool(p) => p.into(),
            WaveError::Consume(c) => c.into(),
        }
    };

    // Pass 1: sketch cuts and collect labels. Each worker sketches its
    // chunk into a private sketch; the fold merges them in chunk order
    // (distinct-set unions, order-independent while exact — the merge
    // also tracks thinning so `sketch_exact` stays truthful).
    let sketch_start = Instant::now();
    let mut sketch = CutSketch::with_capacity(n_features, cfg.sketch_capacity);
    let mut labels: Vec<f64> = Vec::new();
    try_run_waves_on(
        workers,
        n_chunks,
        wave,
        |c| {
            let (start, end) = chunk_range(c);
            let block = range_samples(cohort, cfg.outcome, &cfg.pipeline, start, end);
            let mut part = CutSketch::with_capacity(n_features, cfg.sketch_capacity);
            part.update(&block.rows);
            (part, block.labels)
        },
        |_, (part, chunk_labels)| {
            sketch.merge(&part);
            labels.extend(chunk_labels);
            Ok::<(), ChunkError>(())
        },
    )
    .map_err(wave_err)?;
    let sketch_exact = sketch.is_exact();
    let max_bins = match cfg.params.tree_method {
        TreeMethod::Hist { max_bins } => max_bins,
        TreeMethod::Exact => {
            return Err(PipelineError::Train {
                job: None,
                source: msaw_gbdt::TrainError::InvalidParam {
                    name: "tree_method",
                    message: "the scale pipeline streams histograms; use TreeMethod::Hist".into(),
                },
            })
        }
    };
    let cuts = sketch.cuts(max_bins);
    let sketch_secs = sketch_start.elapsed().as_secs_f64();

    // Pass 2: regenerate and encode into fixed-size binned blocks.
    // Workers regenerate + bin-encode their chunks against the shared
    // cut table; the fold appends code slabs in chunk order, so the
    // sealed matrix (and a spilled `.mscb` file) is byte-identical to
    // the serial build.
    let encode_start = Instant::now();
    let mut builder = match &cfg.spill_path {
        Some(path) => ChunkedMatrixBuilder::spilled(cuts.clone(), cfg.block_rows, path)?,
        None => ChunkedMatrixBuilder::in_memory(cuts.clone(), cfg.block_rows),
    };
    try_run_waves_on(
        workers,
        n_chunks,
        wave,
        |c| {
            let (start, end) = chunk_range(c);
            let block = range_samples(cohort, cfg.outcome, &cfg.pipeline, start, end);
            encode_rows(&cuts, &block.rows)
        },
        |_, codes| builder.push_encoded(&codes),
    )
    .map_err(wave_err)?;
    let mut matrix = builder.finish()?;
    let encode_secs = encode_start.elapsed().as_secs_f64();
    // Sample the high-water mark after the seal so the reported RSS
    // covers the encode pass's peak (sampling only at the end raced
    // the kernel's accounting of the builder teardown).
    let rss_after_seal = peak_rss_mb();

    // Pass 3: out-of-core fit over the row blocks.
    let fit_start = Instant::now();
    let train = train_chunked(&cfg.params, &mut matrix, &labels, workers)?;
    let fit_secs = fit_start.elapsed().as_secs_f64();
    let n_rows = labels.len();
    let fit_rows_per_sec = if fit_secs > 0.0 {
        n_rows as f64 * cfg.params.n_estimators as f64 / fit_secs
    } else {
        0.0
    };

    Ok(ScaleReport {
        n_patients,
        n_rows,
        n_features,
        spilled: matrix.is_spilled(),
        sketch_exact,
        sketch_secs,
        encode_secs,
        fit_secs,
        fit_rows_per_sec,
        peak_rss_mb: match (rss_after_seal, peak_rss_mb()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
        train,
    })
}

/// Peak resident set size of this process in MiB, from Linux's
/// `/proc/self/status` `VmHWM` line; `None` where that is unavailable.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::{Booster, DEFAULT_SKETCH_DISTINCT};
    use msaw_preprocess::build_samples;
    use proptest::prelude::*;

    /// The streamed, chunked, out-of-core run must train the same model
    /// — bit for bit — as materialising the cohort and fitting in
    /// memory, for both storage modes.
    #[test]
    fn scale_run_matches_in_memory_training() {
        let cohort = CohortConfig::small(42);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        cfg.params.n_estimators = 8;
        cfg.chunk_patients = 5;
        cfg.block_rows = 64;
        cfg.workers = 4;

        let data = msaw_cohort::generate(&cohort);
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);
        let reference = Booster::train(&cfg.params, &set.features, &set.labels).unwrap();

        let report = run_scale(&cohort, &cfg).unwrap();
        assert_eq!(report.n_rows, set.len());
        assert_eq!(report.n_features, set.features.ncols());
        assert!(report.sketch_exact);
        assert!(!report.spilled);
        assert_eq!(report.train.booster, reference);

        let spill =
            std::env::temp_dir().join(format!("msaw_scale_test_{}.mscb", std::process::id()));
        cfg.spill_path = Some(spill.clone());
        let spilled = run_scale(&cohort, &cfg).unwrap();
        assert!(spilled.spilled);
        assert_eq!(spilled.train.booster, reference);
        let _ = std::fs::remove_file(&spill);
    }

    /// The parallel fan-out merges strictly in chunk order, so sketch,
    /// encode and fit are worker-count invariant — same model bits at
    /// 1, 2 and 8 workers, and a spilled run writes byte-identical
    /// `.mscb` files whatever the worker count.
    #[test]
    fn worker_count_never_changes_the_model_or_the_spill_bytes() {
        let cohort = CohortConfig::small(42);
        let mut cfg = ScaleConfig::new(OutcomeKind::Sppb);
        cfg.params.n_estimators = 6;
        cfg.chunk_patients = 7;
        cfg.block_rows = 128;
        cfg.workers = 1;
        let spill_of = |w: usize| {
            std::env::temp_dir().join(format!("msaw_scale_workers_{}_{w}.mscb", std::process::id()))
        };
        cfg.spill_path = Some(spill_of(1));
        let base = run_scale(&cohort, &cfg).unwrap();
        let base_bytes = std::fs::read(spill_of(1)).unwrap();
        for workers in [2usize, 8] {
            cfg.workers = workers;
            cfg.spill_path = Some(spill_of(workers));
            let got = run_scale(&cohort, &cfg).unwrap();
            assert_eq!(got.train.booster, base.train.booster, "workers={workers}");
            assert_eq!(got.n_rows, base.n_rows);
            let bytes = std::fs::read(spill_of(workers)).unwrap();
            assert_eq!(bytes, base_bytes, "spill bytes differ at workers={workers}");
        }
        for w in [1usize, 2, 8] {
            let _ = std::fs::remove_file(spill_of(w));
        }
    }

    /// Chunk size shapes the fan-out's work units, not its results:
    /// sketch cuts, labels and the trained model are identical for any
    /// `(chunk_patients, workers)` pairing — the two knobs the
    /// parallel passes expose must both be inert.
    #[test]
    fn chunk_size_and_worker_count_are_jointly_inert() {
        let cohort = CohortConfig::small(42);
        let n = cohort.total_patients();
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        cfg.params.n_estimators = 3;
        cfg.block_rows = 64;
        cfg.chunk_patients = 1;
        cfg.workers = 1;
        let base = run_scale(&cohort, &cfg).unwrap();
        for chunk_patients in [3usize, 7, 16, n, n + 9] {
            for workers in [1usize, 2, 8] {
                cfg.chunk_patients = chunk_patients;
                cfg.workers = workers;
                let got = run_scale(&cohort, &cfg).unwrap();
                assert_eq!(
                    got.train.booster, base.train.booster,
                    "chunk_patients={chunk_patients} workers={workers}"
                );
                assert_eq!(got.n_rows, base.n_rows);
            }
        }
    }

    #[test]
    fn exact_method_is_rejected_with_a_typed_error() {
        let cohort = CohortConfig::small(7);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        cfg.params.tree_method = TreeMethod::Exact;
        match run_scale(&cohort, &cfg) {
            Err(PipelineError::Train {
                source: msaw_gbdt::TrainError::InvalidParam { name: "tree_method", .. },
                ..
            }) => {}
            other => panic!("expected InvalidParam, got {other:?}"),
        }
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mb().expect("VmHWM available");
            assert!(rss > 1.0, "a test process uses more than 1 MiB, got {rss}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Pass-1 fan-out property: for *arbitrary* chunk sizes and
        /// worker counts, the chunk-order merge of per-worker sketches
        /// and label buffers is byte-equal to one serial pass over the
        /// whole cohort — cuts (bitwise), labels (bitwise), exactness.
        #[test]
        fn parallel_sketch_equals_serial_sketch(
            chunk_patients in 1usize..70,
            workers in 1usize..9,
        ) {
            let cohort = CohortConfig::small(42);
            let pipeline = PipelineConfig::default();
            let n_features = FeaturePanel::feature_names().len();
            let n_patients = cohort.total_patients();

            let serial_block =
                range_samples(&cohort, OutcomeKind::Qol, &pipeline, 0, n_patients as u32);
            let mut serial = CutSketch::with_capacity(n_features, DEFAULT_SKETCH_DISTINCT);
            serial.update(&serial_block.rows);

            let n_chunks = n_patients.div_ceil(chunk_patients);
            let mut merged = CutSketch::with_capacity(n_features, DEFAULT_SKETCH_DISTINCT);
            let mut labels: Vec<f64> = Vec::new();
            try_run_waves_on(
                workers,
                n_chunks,
                workers * 2,
                |c| {
                    let start = (c * chunk_patients) as u32;
                    let end = ((c + 1) * chunk_patients).min(n_patients) as u32;
                    let block = range_samples(&cohort, OutcomeKind::Qol, &pipeline, start, end);
                    let mut part = CutSketch::with_capacity(n_features, DEFAULT_SKETCH_DISTINCT);
                    part.update(&block.rows);
                    (part, block.labels)
                },
                |_, (part, chunk_labels)| {
                    merged.merge(&part);
                    labels.extend(chunk_labels);
                    Ok::<(), ChunkError>(())
                },
            )
            .unwrap();

            prop_assert_eq!(merged.is_exact(), serial.is_exact());
            let merged_cuts = merged.cuts(32);
            let serial_cuts = serial.cuts(32);
            prop_assert_eq!(&merged_cuts, &serial_cuts);
            for (m, s) in merged_cuts.iter().zip(&serial_cuts) {
                let m_bits: Vec<u64> = m.iter().map(|v| v.to_bits()).collect();
                let s_bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(m_bits, s_bits);
            }
            let label_bits: Vec<u64> = labels.iter().map(|v| v.to_bits()).collect();
            let serial_bits: Vec<u64> =
                serial_block.labels.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(label_bits, serial_bits);
        }
    }
}
