//! Out-of-fold predictions: every sample predicted by a model that never
//! saw it, the basis of the per-patient MAE distributions in Fig. 5.

use crate::config::ExperimentConfig;
use crate::error::PipelineError;
use msaw_cohort::Clinic;
use msaw_gbdt::{Booster, TreeScratch};
use msaw_metrics::{kfold, BoxStats};
use msaw_preprocess::SampleSet;
use std::collections::BTreeMap;

/// Predict every row of `set` using K-fold rotation: for each fold, a
/// model is trained on the other folds and predicts the held-out rows.
///
/// Panicking wrapper over [`try_oof_predictions`].
pub fn oof_predictions(set: &SampleSet, cfg: &ExperimentConfig) -> Vec<f64> {
    try_oof_predictions(set, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`oof_predictions`]: a set too small for the fold
/// rotation is [`PipelineError::TooFewSamples`], a failing fold fit is
/// [`PipelineError::Train`].
pub fn try_oof_predictions(
    set: &SampleSet,
    cfg: &ExperimentConfig,
) -> Result<Vec<f64>, PipelineError> {
    let need = cfg.cv_folds * 2;
    if set.len() < need {
        return Err(PipelineError::TooFewSamples { have: set.len(), need });
    }
    let params = cfg.params_for(set.outcome);
    // One shared context: the matrix is indexed once and every fold's
    // model trains on a row view of it. One shared scratch: the first
    // fold pays the arena allocations, later folds reuse them.
    let ctx = set.training_context();
    let mut scratch = TreeScratch::new();
    let mut preds = vec![f64::NAN; set.len()];
    for fold in kfold(set.len(), cfg.cv_folds, cfg.seed ^ 0x00f) {
        let y_train: Vec<f64> = fold.train.iter().map(|&i| set.labels[i]).collect();
        let model = Booster::train_on_rows_with(params, &ctx, &fold.train, &y_train, &mut scratch)?;
        // Batch-predict the held-out rows through the flat engine.
        let fold_preds = model.flat_forest().predict_rows(&set.features, &fold.validation);
        for (&row, &p) in fold.validation.iter().zip(&fold_preds) {
            preds[row] = p;
        }
    }
    debug_assert!(preds.iter().all(|p| !p.is_nan()));
    Ok(preds)
}

/// Per-patient MAE of out-of-fold predictions.
pub fn per_patient_mae(set: &SampleSet, preds: &[f64]) -> BTreeMap<u32, f64> {
    assert_eq!(preds.len(), set.len());
    let mut acc: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
    for (i, meta) in set.meta.iter().enumerate() {
        let e = acc.entry(meta.patient.0).or_insert((0.0, 0));
        e.0 += (set.labels[i] - preds[i]).abs();
        e.1 += 1;
    }
    acc.into_iter().map(|(p, (sum, n))| (p, sum / n as f64)).collect()
}

/// Fig. 5's statistic: per-clinic box-plot summaries of the per-patient
/// MAE values.
pub fn mae_boxes_by_clinic(set: &SampleSet, preds: &[f64]) -> Vec<(Clinic, BoxStats)> {
    let per_patient = per_patient_mae(set, preds);
    let clinic_of: BTreeMap<u32, Clinic> =
        set.meta.iter().map(|m| (m.patient.0, m.clinic)).collect();
    Clinic::ALL
        .iter()
        .filter_map(|&clinic| {
            let values: Vec<f64> = per_patient
                .iter()
                .filter(|(p, _)| clinic_of.get(p) == Some(&clinic))
                .map(|(_, &mae)| mae)
                .collect();
            BoxStats::of(&values).map(|b| (clinic, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

    fn setup() -> (SampleSet, ExperimentConfig) {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        (build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline), cfg)
    }

    #[test]
    fn every_row_gets_an_oof_prediction() {
        let (set, cfg) = setup();
        let preds = oof_predictions(&set, &cfg);
        assert_eq!(preds.len(), set.len());
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn per_patient_mae_covers_all_patients_in_set() {
        let (set, cfg) = setup();
        let preds = oof_predictions(&set, &cfg);
        let mae = per_patient_mae(&set, &preds);
        let patients: std::collections::HashSet<u32> =
            set.meta.iter().map(|m| m.patient.0).collect();
        assert_eq!(mae.len(), patients.len());
        assert!(mae.values().all(|&v| v >= 0.0));
    }

    #[test]
    fn boxes_cover_all_clinics() {
        let (set, cfg) = setup();
        let preds = oof_predictions(&set, &cfg);
        let boxes = mae_boxes_by_clinic(&set, &preds);
        assert_eq!(boxes.len(), 3);
        for (_, b) in &boxes {
            assert!(b.median >= 0.0);
            assert!(b.q1 <= b.median && b.median <= b.q3);
        }
    }

    #[test]
    fn oof_is_deterministic() {
        let (set, cfg) = setup();
        assert_eq!(oof_predictions(&set, &cfg), oof_predictions(&set, &cfg));
    }

    #[test]
    fn too_few_samples_is_a_typed_error() {
        let (set, cfg) = setup();
        let tiny = set.take(&[0, 1, 2]);
        let err = try_oof_predictions(&tiny, &cfg).unwrap_err();
        assert_eq!(err, PipelineError::TooFewSamples { have: 3, need: cfg.cv_folds * 2 });
    }
}
