//! The full 12-model grid of the paper's Fig. 4 (and, stratified per
//! clinic, its Table 1): 3 outcomes × {DD, KD} × {w/o FI, w/ FI}.

use crate::config::ExperimentConfig;
use crate::experiment::{run_variant, Approach, VariantResult};
use msaw_cohort::{Clinic, CohortData};
use msaw_kd::{attach_fi, default_ici_spec, ici_sample_set};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};

/// The four sample-set variants for one outcome, ready to train on.
pub struct VariantSets {
    /// DD without FI (59 features).
    pub dd: SampleSet,
    /// DD with FI (60 features).
    pub dd_fi: SampleSet,
    /// KD without FI (the ICI scalar).
    pub kd: SampleSet,
    /// KD with FI (ICI + FI).
    pub kd_fi: SampleSet,
}

/// Build all four variants for one outcome.
pub fn build_variant_sets(
    data: &CohortData,
    panel: &FeaturePanel,
    outcome: OutcomeKind,
    cfg: &ExperimentConfig,
) -> VariantSets {
    let dd = build_samples(data, panel, outcome, &cfg.pipeline);
    let dd_fi = attach_fi(&dd, data);
    let spec = default_ici_spec();
    let kd = ici_sample_set(&dd, &spec);
    let kd_fi = attach_fi(&kd, data);
    VariantSets { dd, dd_fi, kd, kd_fi }
}

/// Run the four variants of one outcome.
pub fn run_grid_for_samples(sets: &VariantSets, cfg: &ExperimentConfig) -> Vec<VariantResult> {
    vec![
        run_variant(&sets.kd, Approach::KnowledgeDriven, false, cfg),
        run_variant(&sets.kd_fi, Approach::KnowledgeDriven, true, cfg),
        run_variant(&sets.dd, Approach::DataDriven, false, cfg),
        run_variant(&sets.dd_fi, Approach::DataDriven, true, cfg),
    ]
}

/// Run the full 12-model grid over a cohort (Fig. 4). Outcomes run in
/// parallel — they share nothing but the immutable panel.
pub fn run_full_grid(data: &CohortData, cfg: &ExperimentConfig) -> Vec<VariantResult> {
    let panel = FeaturePanel::build(data, &cfg.pipeline);
    let results: Vec<Vec<VariantResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = OutcomeKind::ALL
            .iter()
            .map(|&outcome| {
                let panel = &panel;
                s.spawn(move || {
                    let sets = build_variant_sets(data, panel, outcome, cfg);
                    run_grid_for_samples(&sets, cfg)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("grid worker panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// Run the grid restricted to one clinic's patients (Table 1 rows).
pub fn run_clinic_grid(
    data: &CohortData,
    clinic: Clinic,
    cfg: &ExperimentConfig,
) -> Vec<VariantResult> {
    let panel = FeaturePanel::build(data, &cfg.pipeline);
    let mut out = Vec::new();
    for outcome in OutcomeKind::ALL {
        let sets = build_variant_sets(data, &panel, outcome, cfg);
        let restricted = VariantSets {
            dd: sets.dd.filter_clinic(clinic),
            dd_fi: sets.dd_fi.filter_clinic(clinic),
            kd: sets.kd.filter_clinic(clinic),
            kd_fi: sets.kd_fi.filter_clinic(clinic),
        };
        out.extend(run_grid_for_samples(&restricted, cfg));
    }
    out
}

/// Look up one variant in a result list.
pub fn find(
    results: &[VariantResult],
    outcome: OutcomeKind,
    approach: Approach,
    with_fi: bool,
) -> &VariantResult {
    results
        .iter()
        .find(|r| r.outcome == outcome && r.approach == approach && r.with_fi == with_fi)
        .expect("variant present in grid results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};

    fn small_grid() -> Vec<VariantResult> {
        let data = generate(&CohortConfig::small(42));
        run_full_grid(&data, &ExperimentConfig::fast())
    }

    #[test]
    fn grid_has_all_twelve_variants() {
        let results = small_grid();
        assert_eq!(results.len(), 12);
        for outcome in OutcomeKind::ALL {
            for approach in [Approach::DataDriven, Approach::KnowledgeDriven] {
                for with_fi in [false, true] {
                    let r = find(&results, outcome, approach, with_fi);
                    assert!(r.primary_metric().is_finite());
                }
            }
        }
    }

    #[test]
    fn variant_sets_have_expected_widths() {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let sets = build_variant_sets(&data, &panel, OutcomeKind::Sppb, &cfg);
        assert_eq!(sets.dd.features.ncols(), 59);
        assert_eq!(sets.dd_fi.features.ncols(), 60);
        assert_eq!(sets.kd.features.ncols(), 1);
        assert_eq!(sets.kd_fi.features.ncols(), 2);
        // All four share rows and labels.
        assert_eq!(sets.dd.len(), sets.kd.len());
        assert_eq!(sets.dd.labels, sets.kd_fi.labels);
    }

    #[test]
    fn dd_outperforms_kd_on_regression() {
        // The paper's headline: the data-driven approach performs
        // generally better than the knowledge-driven one.
        let results = small_grid();
        for outcome in [OutcomeKind::Qol, OutcomeKind::Sppb] {
            let dd = find(&results, outcome, Approach::DataDriven, true).primary_metric();
            let kd = find(&results, outcome, Approach::KnowledgeDriven, true).primary_metric();
            assert!(
                dd + 1e-9 >= kd,
                "{}: DD {dd:.3} should not lose to KD {kd:.3}",
                outcome.name()
            );
        }
    }

    #[test]
    fn clinic_grid_uses_fewer_samples() {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let full = run_full_grid(&data, &cfg);
        let hk = run_clinic_grid(&data, Clinic::HongKong, &cfg);
        assert_eq!(hk.len(), 12);
        let full_n = find(&full, OutcomeKind::Qol, Approach::DataDriven, false).n_train;
        let hk_n = find(&hk, OutcomeKind::Qol, Approach::DataDriven, false).n_train;
        assert!(hk_n < full_n);
    }
}
