//! The full 12-model grid of the paper's Fig. 4 (and, stratified per
//! clinic, its Table 1): 3 outcomes × {DD, KD} × {w/o FI, w/ FI}.

use crate::config::ExperimentConfig;
use crate::error::PipelineError;
use crate::experiment::{
    finish_variant, run_variant, try_plan_variant_cached, try_run_fit_job_with, Approach, FitJob,
    FitOutput, VariantPlan, VariantResult,
};
use msaw_cohort::{Clinic, CohortData};
use msaw_gbdt::{ContextCache, TreeScratch};
use msaw_kd::{attach_fi, default_ici_spec, ici_sample_set};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};

/// The four sample-set variants for one outcome, ready to train on.
pub struct VariantSets {
    /// DD without FI (59 features).
    pub dd: SampleSet,
    /// DD with FI (60 features).
    pub dd_fi: SampleSet,
    /// KD without FI (the ICI scalar).
    pub kd: SampleSet,
    /// KD with FI (ICI + FI).
    pub kd_fi: SampleSet,
}

/// Build all four variants for one outcome.
pub fn build_variant_sets(
    data: &CohortData,
    panel: &FeaturePanel,
    outcome: OutcomeKind,
    cfg: &ExperimentConfig,
) -> VariantSets {
    let dd = build_samples(data, panel, outcome, &cfg.pipeline);
    let dd_fi = attach_fi(&dd, data);
    let spec = default_ici_spec();
    let kd = ici_sample_set(&dd, &spec);
    let kd_fi = attach_fi(&kd, data);
    VariantSets { dd, dd_fi, kd, kd_fi }
}

/// Run the four variants of one outcome.
pub fn run_grid_for_samples(sets: &VariantSets, cfg: &ExperimentConfig) -> Vec<VariantResult> {
    vec![
        run_variant(&sets.kd, Approach::KnowledgeDriven, false, cfg),
        run_variant(&sets.kd_fi, Approach::KnowledgeDriven, true, cfg),
        run_variant(&sets.dd, Approach::DataDriven, false, cfg),
        run_variant(&sets.dd_fi, Approach::DataDriven, true, cfg),
    ]
}

fn job_count(plans: &[VariantPlan<'_>]) -> usize {
    plans.iter().map(|plan| plan.jobs().count()).sum()
}

/// Fallible core of the grid engine: run every fit job of every plan on
/// `workers` pool workers, containing both panics and typed fit errors.
///
/// Each worker owns one [`TreeScratch`] for its whole drain — the first
/// job it claims pays the arena allocations, every later fit reuses
/// them (the pool rebuilds a worker's scratch only after a panicked
/// job). Results stay independent of which jobs share a scratch.
///
/// A panicking job surfaces as [`PipelineError::Pool`]; a job that
/// returns a `TrainError` surfaces as [`PipelineError::Train`] carrying
/// its flat job index. Either way the pool drains every job first (see
/// `msaw_parallel`'s drain-the-cursor policy), so the reported index is
/// the *lowest* failing job at any worker count.
fn try_run_plans_on(
    workers: usize,
    plans: &[VariantPlan<'_>],
    cfg: &ExperimentConfig,
) -> Result<Vec<VariantResult>, PipelineError> {
    let jobs: Vec<(usize, FitJob)> = plans
        .iter()
        .enumerate()
        .flat_map(|(p, plan)| plan.jobs().map(move |job| (p, job)))
        .collect();
    let results =
        msaw_parallel::try_run_scratch_on(workers, jobs.len(), TreeScratch::new, |scratch, i| {
            #[cfg(feature = "failpoint")]
            msaw_parallel::failpoint::hit("grid_fit", i);
            let (p, job) = jobs[i];
            try_run_fit_job_with(&plans[p], job, cfg, scratch)
        })?;
    let mut outputs: Vec<Vec<FitOutput>> = plans.iter().map(|_| Vec::new()).collect();
    for (i, (&(p, _), result)) in jobs.iter().zip(results).enumerate() {
        match result {
            Ok(out) => outputs[p].push(out),
            // Job order is canonical, so the first error seen here is
            // the lowest failing index — deterministic like the pool's.
            Err(source) => return Err(PipelineError::Train { job: Some(i), source }),
        }
    }
    Ok(plans.iter().zip(outputs).map(|(plan, out)| finish_variant(plan, out)).collect())
}

/// The canonical four (set, approach, FI) variants of one outcome's
/// sample sets, in the grid's fixed KD, KD+FI, DD, DD+FI order.
fn variant_specs(sets: &VariantSets) -> [(&SampleSet, Approach, bool); 4] {
    [
        (&sets.kd, Approach::KnowledgeDriven, false),
        (&sets.kd_fi, Approach::KnowledgeDriven, true),
        (&sets.dd, Approach::DataDriven, false),
        (&sets.dd_fi, Approach::DataDriven, true),
    ]
}

/// Run the full 12-model grid over a cohort (Fig. 4).
///
/// Every variant's sample set is indexed and binned exactly once, on
/// this thread, by [`crate::experiment::plan_variant`]; the ~72
/// resulting fold/final fits are then fanned across one bounded worker
/// pool, so parallelism scales with fits rather than with the 3
/// outcomes.
///
/// Panicking wrapper over [`try_run_full_grid`].
pub fn run_full_grid(data: &CohortData, cfg: &ExperimentConfig) -> Vec<VariantResult> {
    try_run_full_grid(data, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_full_grid`] on the default worker count.
pub fn try_run_full_grid(
    data: &CohortData,
    cfg: &ExperimentConfig,
) -> Result<Vec<VariantResult>, PipelineError> {
    try_run_full_grid_on(0, data, cfg)
}

/// [`try_run_full_grid`] with an explicit pool width: `workers == 0`
/// means the default; any other count produces byte-identical results
/// and, on failure, the identical error (same lowest failing job).
pub fn try_run_full_grid_on(
    workers: usize,
    data: &CohortData,
    cfg: &ExperimentConfig,
) -> Result<Vec<VariantResult>, PipelineError> {
    let panel = FeaturePanel::build(data, &cfg.pipeline);
    let all_sets: Vec<VariantSets> = OutcomeKind::ALL
        .iter()
        .map(|&outcome| build_variant_sets(data, &panel, outcome, cfg))
        .collect();
    // One context cache across all 12 plans: DD and DD+FI share 59 of
    // 60 columns, the KD pair shares the ICI scalar, and both FI
    // variants of one outcome share the FI column — each distinct
    // column is quantised once instead of once per variant.
    let mut cache = ContextCache::new();
    let plans: Vec<VariantPlan<'_>> = all_sets
        .iter()
        .flat_map(variant_specs)
        .map(|(set, approach, with_fi)| {
            try_plan_variant_cached(set, approach, with_fi, cfg, &mut cache)
        })
        .collect::<Result<_, _>>()?;
    let workers =
        if workers == 0 { msaw_parallel::default_workers(job_count(&plans)) } else { workers };
    try_run_plans_on(workers, &plans, cfg)
}

/// Run the grid restricted to one clinic's patients (Table 1 rows),
/// through the same shared-binning engine and worker pool as
/// [`run_full_grid`]. For several clinics prefer [`run_clinic_grids`],
/// which builds the full-cohort variant sets only once.
pub fn run_clinic_grid(
    data: &CohortData,
    clinic: Clinic,
    cfg: &ExperimentConfig,
) -> Vec<VariantResult> {
    let (_, results) =
        run_clinic_grids(data, &[clinic], cfg).pop().expect("one clinic in, one result set out");
    results
}

/// Run the per-clinic grids of Table 1: each outcome's four variant
/// sets are built from the full cohort exactly once, then filtered to
/// each clinic, planned (one quantisation per filtered set) and fanned
/// across the bounded worker pool. Results are per clinic, in input
/// order, each in the grid's canonical variant order.
pub fn run_clinic_grids(
    data: &CohortData,
    clinics: &[Clinic],
    cfg: &ExperimentConfig,
) -> Vec<(Clinic, Vec<VariantResult>)> {
    try_run_clinic_grids(data, clinics, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_clinic_grids`]: an empty filtered set (a
/// clinic with no usable samples) or a failing fit comes back as a
/// [`PipelineError`] instead of a panic.
pub fn try_run_clinic_grids(
    data: &CohortData,
    clinics: &[Clinic],
    cfg: &ExperimentConfig,
) -> Result<Vec<(Clinic, Vec<VariantResult>)>, PipelineError> {
    let panel = FeaturePanel::build(data, &cfg.pipeline);
    let all_sets: Vec<VariantSets> = OutcomeKind::ALL
        .iter()
        .map(|&outcome| build_variant_sets(data, &panel, outcome, cfg))
        .collect();
    // One cache for every clinic: within a clinic the variants share
    // columns exactly as in the full grid (DD/DD+FI, the KD pair), so
    // each clinic costs one quantisation per distinct column.
    let mut cache = ContextCache::new();
    clinics
        .iter()
        .map(|&clinic| {
            let restricted: Vec<VariantSets> = all_sets
                .iter()
                .map(|sets| VariantSets {
                    dd: sets.dd.filter_clinic(clinic),
                    dd_fi: sets.dd_fi.filter_clinic(clinic),
                    kd: sets.kd.filter_clinic(clinic),
                    kd_fi: sets.kd_fi.filter_clinic(clinic),
                })
                .collect();
            let plans: Vec<VariantPlan<'_>> = restricted
                .iter()
                .flat_map(variant_specs)
                .map(|(set, approach, with_fi)| {
                    try_plan_variant_cached(set, approach, with_fi, cfg, &mut cache)
                })
                .collect::<Result<_, _>>()?;
            let workers = msaw_parallel::default_workers(job_count(&plans));
            Ok((clinic, try_run_plans_on(workers, &plans, cfg)?))
        })
        .collect()
}

/// Look up one variant in a result list.
pub fn find(
    results: &[VariantResult],
    outcome: OutcomeKind,
    approach: Approach,
    with_fi: bool,
) -> &VariantResult {
    results
        .iter()
        .find(|r| r.outcome == outcome && r.approach == approach && r.with_fi == with_fi)
        .expect("variant present in grid results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};

    fn small_grid() -> Vec<VariantResult> {
        let data = generate(&CohortConfig::small(42));
        run_full_grid(&data, &ExperimentConfig::fast())
    }

    #[test]
    fn grid_has_all_twelve_variants() {
        let results = small_grid();
        assert_eq!(results.len(), 12);
        for outcome in OutcomeKind::ALL {
            for approach in [Approach::DataDriven, Approach::KnowledgeDriven] {
                for with_fi in [false, true] {
                    let r = find(&results, outcome, approach, with_fi);
                    assert!(r.primary_metric().is_finite());
                }
            }
        }
    }

    #[test]
    fn variant_sets_have_expected_widths() {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let sets = build_variant_sets(&data, &panel, OutcomeKind::Sppb, &cfg);
        assert_eq!(sets.dd.features.ncols(), 59);
        assert_eq!(sets.dd_fi.features.ncols(), 60);
        assert_eq!(sets.kd.features.ncols(), 1);
        assert_eq!(sets.kd_fi.features.ncols(), 2);
        // All four share rows and labels.
        assert_eq!(sets.dd.len(), sets.kd.len());
        assert_eq!(sets.dd.labels, sets.kd_fi.labels);
    }

    #[test]
    fn dd_outperforms_kd_on_regression() {
        // The paper's headline: the data-driven approach performs
        // generally better than the knowledge-driven one.
        let results = small_grid();
        for outcome in [OutcomeKind::Qol, OutcomeKind::Sppb] {
            let dd = find(&results, outcome, Approach::DataDriven, true).primary_metric();
            let kd = find(&results, outcome, Approach::KnowledgeDriven, true).primary_metric();
            assert!(
                dd + 1e-9 >= kd,
                "{}: DD {dd:.3} should not lose to KD {kd:.3}",
                outcome.name()
            );
        }
    }

    #[test]
    fn grid_quantises_each_distinct_column_once() {
        // The engine's headline economy, sharpened by the context
        // cache: DD and DD+FI share 59 columns, the KD pair shares
        // the ICI scalar, both FI variants share the FI column — and
        // because every outcome keeps the same sample rows here, the
        // three outcomes' feature bytes are identical too. The 12
        // variant sets (3 x (59+60+1+2) = 366 naive column passes)
        // collapse to 59 + FI + ICI = 61 distinct quantisations.
        // (Counters are thread-local; contexts are built on the
        // calling thread, so the deltas are exact.)
        let data = generate(&CohortConfig::small(42));
        let before_fits = msaw_gbdt::binning::fit_count();
        let before_cols = msaw_gbdt::binning::column_fit_count();
        let results = run_full_grid(&data, &ExperimentConfig::fast());
        assert_eq!(results.len(), 12);
        assert_eq!(
            msaw_gbdt::binning::fit_count() - before_fits,
            0,
            "every grid context must come out of the cache, not a whole-matrix fit"
        );
        assert_eq!(
            msaw_gbdt::binning::column_fit_count() - before_cols,
            61,
            "run_full_grid must quantise each distinct column exactly once"
        );
    }

    #[test]
    fn clinic_grid_matches_per_variant_serial_path() {
        // The rerouted clinic grid (shared sets, plan + pooled jobs)
        // must reproduce the retired per-clinic path — rebuild the
        // variant sets, filter, run each variant serially — exactly.
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let new = run_clinic_grid(&data, Clinic::Modena, &cfg);

        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let mut old = Vec::new();
        for outcome in OutcomeKind::ALL {
            let sets = build_variant_sets(&data, &panel, outcome, &cfg);
            let restricted = VariantSets {
                dd: sets.dd.filter_clinic(Clinic::Modena),
                dd_fi: sets.dd_fi.filter_clinic(Clinic::Modena),
                kd: sets.kd.filter_clinic(Clinic::Modena),
                kd_fi: sets.kd_fi.filter_clinic(Clinic::Modena),
            };
            old.extend(run_grid_for_samples(&restricted, &cfg));
        }

        assert_eq!(new.len(), old.len());
        for (a, b) in new.iter().zip(&old) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.approach, b.approach);
            assert_eq!(a.with_fi, b.with_fi);
            assert_eq!(a.regression, b.regression, "{} {}", a.outcome.name(), a.approach.label());
            assert_eq!(a.classification, b.classification);
            assert_eq!(a.cv_scores, b.cv_scores);
            assert_eq!(a.n_train, b.n_train);
            assert_eq!(a.n_test, b.n_test);
        }
    }

    #[test]
    fn clinic_grids_quantise_once_per_distinct_clinic_column() {
        // Shared full-cohort sets, one shared cache: each clinic's
        // filtered variants share columns exactly like the full grid
        // (61 distinct across its outcomes and variants), and two
        // clinics never share bytes — their row subsets differ — so
        // the pair costs exactly 2 x 61 column quantisations and
        // zero whole-matrix fits.
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let clinics = [Clinic::HongKong, Clinic::Sydney];
        let before_fits = msaw_gbdt::binning::fit_count();
        let before_cols = msaw_gbdt::binning::column_fit_count();
        let per_clinic = run_clinic_grids(&data, &clinics, &cfg);
        assert_eq!(per_clinic.len(), 2);
        assert_eq!(per_clinic[0].0, Clinic::HongKong);
        assert_eq!(per_clinic[1].0, Clinic::Sydney);
        assert!(per_clinic.iter().all(|(_, r)| r.len() == 12));
        assert_eq!(msaw_gbdt::binning::fit_count() - before_fits, 0);
        assert_eq!(
            msaw_gbdt::binning::column_fit_count() - before_cols,
            2 * 61,
            "two clinics must cost exactly 2 x 61 distinct column quantisations"
        );
    }

    #[test]
    fn clinic_grid_uses_fewer_samples() {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let full = run_full_grid(&data, &cfg);
        let hk = run_clinic_grid(&data, Clinic::HongKong, &cfg);
        assert_eq!(hk.len(), 12);
        let full_n = find(&full, OutcomeKind::Qol, Approach::DataDriven, false).n_train;
        let hk_n = find(&hk, OutcomeKind::Qol, Approach::DataDriven, false).n_train;
        assert!(hk_n < full_n);
    }
}
