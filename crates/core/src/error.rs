//! The workspace's umbrella error: everything a full pipeline run —
//! ingest → sample construction → grid training → interpretation — can
//! surface, source-chained to the layer that failed.
//!
//! Layering: `tabular::TabularError` (storage) and
//! `gbdt::{TrainError, PredictError}` (learning) stay independent;
//! `preprocess::SampleError` wraps tabular + validation failures; this
//! type wraps all of them plus the pool's panic report, so binaries and
//! experiments handle exactly one error type.

use msaw_gbdt::{PredictError, TrainError};
use msaw_parallel::PoolError;
use msaw_preprocess::SampleError;
use msaw_tabular::TabularError;
use std::fmt;

/// Any failure of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A variant was asked to evaluate an empty sample set.
    EmptySampleSet,
    /// Too few samples for the requested fold rotation.
    TooFewSamples { have: usize, need: usize },
    /// A model fit failed; `job` is the grid's flat job index when the
    /// fit ran inside the pooled grid (lowest failing index — see
    /// `msaw_parallel`'s drain policy), `None` for standalone fits.
    Train { job: Option<usize>, source: TrainError },
    /// A prediction-stage failure.
    Predict(PredictError),
    /// Sample construction or ingest failed.
    Sample(SampleError),
    /// The tabular layer failed outside ingest.
    Tabular(TabularError),
    /// A pool job panicked (the panic was contained; this reports the
    /// lowest failing job index and its payload).
    Pool(PoolError),
    /// An interpretation report was asked about a feature the sample
    /// set does not have.
    UnknownFeature(String),
    /// The model registry failed to store or load an artifact.
    Registry(crate::registry::RegistryError),
    /// The out-of-core (chunked) training path failed below the
    /// parameter layer — spill-file I/O or corruption. Carried rendered
    /// so this type stays `Clone + PartialEq`; typed parameter/label
    /// failures arrive as [`PipelineError::Train`] instead.
    Chunk { message: String },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptySampleSet => {
                write!(f, "cannot evaluate an empty sample set")
            }
            PipelineError::TooFewSamples { have, need } => {
                write!(f, "too few samples for OOF: have {have}, need at least {need}")
            }
            PipelineError::Train { job: Some(job), source } => {
                write!(f, "grid fit job {job} failed: {source}")
            }
            PipelineError::Train { job: None, source } => {
                write!(f, "model fit failed: {source}")
            }
            PipelineError::Predict(e) => write!(f, "prediction failed: {e}"),
            PipelineError::Sample(e) => write!(f, "sample pipeline failed: {e}"),
            PipelineError::Tabular(e) => write!(f, "tabular layer failed: {e}"),
            PipelineError::Pool(e) => write!(f, "worker pool failed: {e}"),
            PipelineError::UnknownFeature(name) => write!(f, "unknown feature `{name}`"),
            PipelineError::Registry(e) => write!(f, "model registry failed: {e}"),
            PipelineError::Chunk { message } => {
                write!(f, "out-of-core training failed: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Train { source, .. } => Some(source),
            PipelineError::Predict(e) => Some(e),
            PipelineError::Sample(e) => Some(e),
            PipelineError::Tabular(e) => Some(e),
            PipelineError::Pool(e) => Some(e),
            PipelineError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for PipelineError {
    fn from(source: TrainError) -> Self {
        PipelineError::Train { job: None, source }
    }
}

impl From<PredictError> for PipelineError {
    fn from(e: PredictError) -> Self {
        PipelineError::Predict(e)
    }
}

impl From<SampleError> for PipelineError {
    fn from(e: SampleError) -> Self {
        PipelineError::Sample(e)
    }
}

impl From<TabularError> for PipelineError {
    fn from(e: TabularError) -> Self {
        PipelineError::Tabular(e)
    }
}

impl From<PoolError> for PipelineError {
    fn from(e: PoolError) -> Self {
        PipelineError::Pool(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_chain_through_every_layer() {
        let train = TrainError::EmptyDataset;
        let e = PipelineError::Train { job: Some(7), source: train.clone() };
        assert_eq!(e.source().unwrap().to_string(), train.to_string());
        assert!(e.to_string().contains("job 7"));

        let pool = PoolError { job: 3, message: "boom".into() };
        let e = PipelineError::from(pool.clone());
        assert_eq!(e.source().unwrap().to_string(), pool.to_string());
    }

    #[test]
    fn standalone_train_failures_have_no_job() {
        let e = PipelineError::from(TrainError::EmptyDataset);
        assert!(matches!(e, PipelineError::Train { job: None, .. }));
        assert!(!e.to_string().contains("job"));
    }
}
