//! Experiment configuration.

use msaw_gbdt::Params;
use msaw_preprocess::{OutcomeKind, PipelineConfig};
use serde::{Deserialize, Serialize};

/// Everything a reproduction run needs besides the cohort itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Seed for splits and subsampling (independent of the cohort seed).
    pub seed: u64,
    /// Held-out test fraction (paper: 20%).
    pub test_fraction: f64,
    /// K for the cross-validation on the training side (paper: "standard
    /// KFold", we use 5).
    pub cv_folds: usize,
    /// Booster parameters for the regression outcomes (QoL, SPPB).
    pub regression_params: Params,
    /// Booster parameters for Falls. `scale_pos_weight` is recomputed
    /// from each training split's class balance, so the value here is a
    /// placeholder.
    pub classification_params: Params,
    /// Data pipeline knobs (interpolation limit, QA budget).
    pub pipeline: PipelineConfig,
    /// Classification decision threshold on the predicted probability.
    pub decision_threshold: f64,
    /// Reweight Falls classes by `sum(neg)/sum(pos)` per training split.
    /// Off by default: the paper trained unweighted models (its KD Falls
    /// model without FI collapses to the majority class as a result).
    pub auto_balance_falls: bool,
    /// Keep each patient entirely on one side of the 80/20 split.
    /// Off by default: the paper splits at the *sample* level, so a
    /// patient's monthly samples can straddle train and test. Turning
    /// this on quantifies the within-patient leakage that protocol
    /// admits (see the `ablation_patient_split` binary).
    pub split_by_patient: bool,
    /// Sort every train/test/fold row list ascending after the
    /// shuffle-split. The *membership* of each split is unchanged —
    /// only the order rows are visited in, which fixes the histogram
    /// accumulation order to ascending row index. That is the order
    /// the out-of-core trainer streams in, so the sharded chunked grid
    /// requires this flag and is bit-identical to the in-memory grid
    /// under it. Off by default: the historical protocol visits rows
    /// in shuffle order, and flipping the order perturbs IEEE sums.
    #[serde(default)]
    pub canonical_row_order: bool,
}

impl ExperimentConfig {
    /// Booster parameters for one outcome.
    pub fn params_for(&self, outcome: OutcomeKind) -> &Params {
        if outcome.is_classification() {
            &self.classification_params
        } else {
            &self.regression_params
        }
    }

    /// A lighter configuration for tests: fewer, shallower trees.
    pub fn fast() -> Self {
        let mut cfg = Self::default();
        cfg.regression_params.n_estimators = 60;
        cfg.regression_params.max_depth = 3;
        cfg.classification_params.n_estimators = 60;
        cfg.classification_params.max_depth = 3;
        cfg
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        let regression_params = Params {
            n_estimators: 250,
            learning_rate: 0.08,
            max_depth: 4,
            min_child_weight: 2.0,
            subsample: 0.9,
            colsample_bytree: 0.8,
            ..Params::regression()
        };
        let classification_params = Params {
            n_estimators: 250,
            learning_rate: 0.08,
            max_depth: 4,
            min_child_weight: 2.0,
            subsample: 0.9,
            colsample_bytree: 0.8,
            ..Params::binary(1.0)
        };
        ExperimentConfig {
            seed: 42,
            test_fraction: 0.2,
            cv_folds: 5,
            regression_params,
            classification_params,
            pipeline: PipelineConfig::default(),
            decision_threshold: 0.5,
            auto_balance_falls: false,
            split_by_patient: false,
            canonical_row_order: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::Objective;

    #[test]
    fn default_matches_paper_protocol() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.test_fraction, 0.2);
        assert!(cfg.cv_folds >= 2);
        // The paper's split is sample-level, leakage and all.
        assert!(!cfg.split_by_patient);
        assert!(matches!(cfg.classification_params.objective, Objective::Logistic { .. }));
        assert!(matches!(cfg.regression_params.objective, Objective::SquaredError));
    }

    #[test]
    fn params_for_dispatches_on_outcome() {
        let cfg = ExperimentConfig::default();
        assert!(matches!(cfg.params_for(OutcomeKind::Falls).objective, Objective::Logistic { .. }));
        assert!(matches!(cfg.params_for(OutcomeKind::Qol).objective, Objective::SquaredError));
    }

    #[test]
    fn fast_config_is_smaller() {
        let fast = ExperimentConfig::fast();
        let full = ExperimentConfig::default();
        assert!(fast.regression_params.n_estimators < full.regression_params.n_estimators);
    }

    #[test]
    fn params_validate() {
        let cfg = ExperimentConfig::default();
        assert!(cfg.regression_params.validate().is_ok());
        assert!(cfg.classification_params.validate().is_ok());
    }
}
