//! Persisted-model registry: the bridge between training runs and the
//! serving layer.
//!
//! A registry is a directory of v2 model artifacts
//! ([`msaw_gbdt::ModelArtifact`]), each keyed by *what it predicts and
//! what it was trained on*: outcome, approach variant, and a
//! fingerprint of the exact training cohort. The fingerprint means a
//! retrain on different data gets a different key — the registry can
//! hold both without either clobbering the other, and a serving
//! process can assert it loaded the model trained on the cohort it
//! expects.
//!
//! Durability contract:
//!
//! * **Atomic publish.** [`ModelRegistry::store`] writes to a `.tmp`
//!   sibling and `rename`s it into place, so a crash mid-write never
//!   leaves a half-written artifact under a valid name — readers see
//!   the old model or the new one, nothing in between.
//! * **Verified load.** [`ModelRegistry::load`] re-validates the full
//!   artifact (checksum, structure, flat-forest cross-check) through
//!   the gbdt decoder; a corrupt file is a typed
//!   [`RegistryError::Artifact`], never a panic or a silently wrong
//!   model.
//!
//! File naming is deterministic — `{outcome}_{variant}_{hash:016x}.msgb`
//! — so keys and paths are interconvertible and a directory listing is
//! a catalogue.

use crate::error::PipelineError;
use crate::experiment::Approach;
use msaw_gbdt::{fnv1a_64, ModelArtifact, PredictError};
use msaw_preprocess::{OutcomeKind, SampleSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identity of a persisted model: what it predicts, which feature
/// representation it uses, and the fingerprint of its training cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The outcome the model predicts.
    pub outcome: OutcomeKind,
    /// Feature representation (data-driven vs knowledge-driven).
    pub variant: Approach,
    /// [`cohort_fingerprint`] of the training sample set.
    pub cohort_hash: u64,
}

impl ModelKey {
    /// Key for a model trained on `set` with the `variant` features.
    pub fn for_samples(set: &SampleSet, variant: Approach) -> Self {
        ModelKey { outcome: set.outcome, variant, cohort_hash: cohort_fingerprint(set) }
    }

    /// Deterministic artifact file name for this key.
    pub fn file_name(&self) -> String {
        format!("{}_{:016x}.msgb", self.group_name(), self.cohort_hash)
    }

    /// The `{outcome}_{variant}` prefix shared by every cohort
    /// generation of this model — the unit a reload watcher tracks:
    /// retraining on a refreshed cohort publishes a new file in the
    /// same group, and [`ModelRegistry::latest_generation`] resolves
    /// the group to its newest member.
    pub fn group_name(&self) -> String {
        format!(
            "{}_{}",
            self.outcome.name().to_ascii_lowercase(),
            self.variant.label().to_ascii_lowercase()
        )
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} @ {:016x}", self.outcome.name(), self.variant.label(), self.cohort_hash)
    }
}

/// FNV-1a fingerprint of a sample set's contents: outcome, feature
/// names, labels, and every feature value (bit pattern, so `NaN`
/// placement counts). Two sets hash equal iff a model trained on one
/// is interchangeable with a model trained on the other.
pub fn cohort_fingerprint(set: &SampleSet) -> u64 {
    let mut bytes = Vec::with_capacity(
        16 + set.feature_names.iter().map(|n| n.len() + 1).sum::<usize>()
            + (set.labels.len() + set.features.as_slice().len()) * 8,
    );
    bytes.extend_from_slice(set.outcome.name().as_bytes());
    bytes.push(0);
    for name in &set.feature_names {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
    }
    for &label in &set.labels {
        bytes.extend_from_slice(&label.to_bits().to_le_bytes());
    }
    for &value in set.features.as_slice() {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a_64(&bytes)
}

/// Failures while storing or loading registry artifacts.
///
/// I/O failures are carried as rendered strings so the error stays
/// `Clone + PartialEq` like the rest of the pipeline taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Filesystem failure while writing, renaming, or reading.
    Io { path: PathBuf, message: String },
    /// No artifact stored under the key.
    NotFound { key_file: String },
    /// The stored artifact failed checksum or structural validation.
    Artifact { key_file: String, source: PredictError },
    /// `prune` was asked to keep zero artifacts per group, which would
    /// empty the registry — almost certainly a caller bug, so it is
    /// rejected rather than obeyed.
    InvalidKeep,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => {
                write!(f, "registry I/O failure at {}: {message}", path.display())
            }
            RegistryError::NotFound { key_file } => {
                write!(f, "no model stored under {key_file}")
            }
            RegistryError::Artifact { key_file, source } => {
                write!(f, "stored model {key_file} is invalid: {source}")
            }
            RegistryError::InvalidKeep => {
                write!(f, "prune requires keep >= 1 (keep = 0 would empty the registry)")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Artifact { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<RegistryError> for PipelineError {
    fn from(e: RegistryError) -> Self {
        PipelineError::Registry(e)
    }
}

/// A directory of keyed, checksummed model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| RegistryError::Io { path: root.clone(), message: e.to_string() })?;
        Ok(ModelRegistry { root })
    }

    /// Directory this registry stores artifacts in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Full path an artifact for `key` lives at.
    pub fn path_for(&self, key: &ModelKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Persist `artifact` under `key`, atomically: the encoded bytes go
    /// to a `.tmp` sibling first and are renamed into place, so readers
    /// never observe a partial artifact.
    pub fn store(
        &self,
        key: &ModelKey,
        artifact: &ModelArtifact,
    ) -> Result<PathBuf, RegistryError> {
        let path = self.path_for(key);
        let tmp = path.with_extension("msgb.tmp");
        let bytes = artifact.encode();
        std::fs::write(&tmp, &bytes)
            .map_err(|e| RegistryError::Io { path: tmp.clone(), message: e.to_string() })?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            // Leave no stale tmp file behind a failed publish.
            let _ = std::fs::remove_file(&tmp);
            RegistryError::Io { path: path.clone(), message: e.to_string() }
        })?;
        Ok(path)
    }

    /// Load and fully re-validate the artifact stored under `key`.
    pub fn load(&self, key: &ModelKey) -> Result<ModelArtifact, RegistryError> {
        self.load_named(&key.file_name())
    }

    /// Load and fully re-validate the artifact stored under an exact
    /// file name (as returned by [`ModelKey::file_name`] or
    /// [`Self::latest_generation`]).
    pub fn load_named(&self, file_name: &str) -> Result<ModelArtifact, RegistryError> {
        let path = self.root.join(file_name);
        let key_file = file_name.to_string();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound { key_file })
            }
            Err(e) => {
                return Err(RegistryError::Io { path, message: e.to_string() });
            }
        };
        msaw_gbdt::artifact::decode(&bytes)
            .map_err(|source| RegistryError::Artifact { key_file, source })
    }

    /// The newest published artifact in a `{outcome}_{variant}` group
    /// (see [`ModelKey::group_name`]), identified by its publish stamp.
    ///
    /// Ranking matches [`Self::prune`]: newest modification time first,
    /// file-name order breaking ties, so the two ends of the retention
    /// policy agree on which generation is "current". `Ok(None)` means
    /// the group has no published artifact at all.
    pub fn latest_generation(
        &self,
        group: &str,
    ) -> Result<Option<ArtifactGeneration>, RegistryError> {
        let mut newest: Option<ArtifactGeneration> = None;
        for name in self.list()? {
            let Some((file_group, _)) = split_key_name(&name) else { continue };
            if file_group != group {
                continue;
            }
            let path = self.root.join(&name);
            let err = |e: std::io::Error| RegistryError::Io {
                path: path.clone(),
                message: e.to_string(),
            };
            let meta = match std::fs::metadata(&path) {
                // Pruned between listing and stat: not a generation.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                other => other.map_err(err)?,
            };
            let gen = ArtifactGeneration {
                file_name: name,
                mtime: meta.modified().map_err(err)?,
                len: meta.len(),
            };
            if newest
                .as_ref()
                .is_none_or(|best| (gen.mtime, &gen.file_name) > (best.mtime, &best.file_name))
            {
                newest = Some(gen);
            }
        }
        Ok(newest)
    }

    /// Resolve a group to its newest generation and load it, retrying
    /// when [`Self::prune`] deletes the chosen file between the listing
    /// and the read.
    ///
    /// This is the race a live reload watcher runs into: it lists the
    /// registry, picks the newest artifact, and a concurrent retention
    /// pass removes that very file before the read lands. A plain load
    /// would surface [`RegistryError::NotFound`] even though the group
    /// still holds a perfectly servable (possibly older, possibly even
    /// newer) generation — so on `NotFound` the resolution restarts
    /// from a fresh listing and settles on whatever survives.
    pub fn load_latest(
        &self,
        group: &str,
    ) -> Result<Option<(ArtifactGeneration, ModelArtifact)>, RegistryError> {
        self.load_latest_hooked(group, |_| {})
    }

    /// [`Self::load_latest`] with a test seam between choosing a
    /// generation and reading it — the only way to pin the
    /// prune-during-reload interleaving deterministically.
    fn load_latest_hooked(
        &self,
        group: &str,
        mut between: impl FnMut(&ArtifactGeneration),
    ) -> Result<Option<(ArtifactGeneration, ModelArtifact)>, RegistryError> {
        const ATTEMPTS: usize = 8;
        for _ in 0..ATTEMPTS {
            let Some(gen) = self.latest_generation(group)? else { return Ok(None) };
            between(&gen);
            match self.load_named(&gen.file_name) {
                Ok(artifact) => return Ok(Some((gen, artifact))),
                // The chosen generation vanished under us (a concurrent
                // prune won the race): re-list and fall back to the
                // surviving generations.
                Err(RegistryError::NotFound { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        // Every attempt lost the race — the registry is being churned
        // faster than it can be read. Surface it as the missing group.
        Err(RegistryError::NotFound { key_file: format!("{group}_*.msgb") })
    }

    /// Whether an artifact is stored under `key`.
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.path_for(key).is_file()
    }

    /// File names of every artifact currently published (sorted, so
    /// listings are deterministic).
    pub fn list(&self) -> Result<Vec<String>, RegistryError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| RegistryError::Io { path: self.root.clone(), message: e.to_string() })?;
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: self.root.clone(),
                message: e.to_string(),
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".msgb") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Remove superseded artifacts, keeping the newest `keep` per
    /// `(outcome, variant)` group.
    ///
    /// Retraining on a refreshed cohort publishes under a new
    /// fingerprint and leaves the old artifact in place (that is the
    /// point of content-addressed keys), so a long-lived registry
    /// accretes one file per historical cohort. `prune` is the
    /// retention policy: within each group, artifacts are ranked newest
    /// first by modification time (file-name order breaks ties, so the
    /// ranking is total even on coarse-mtime filesystems) and everything
    /// past the first `keep` is deleted.
    ///
    /// `keep == 0` is a typed [`RegistryError::InvalidKeep`]. Files
    /// that do not follow the `{outcome}_{variant}_{hash:016x}.msgb`
    /// naming are not registry artifacts and are never touched.
    pub fn prune(&self, keep: usize) -> Result<PruneReport, RegistryError> {
        if keep == 0 {
            return Err(RegistryError::InvalidKeep);
        }
        let mut groups: std::collections::BTreeMap<String, Vec<(std::time::SystemTime, String)>> =
            std::collections::BTreeMap::new();
        for name in self.list()? {
            let Some((group, _)) = split_key_name(&name) else { continue };
            let path = self.root.join(&name);
            let err = |e: std::io::Error| RegistryError::Io {
                path: path.clone(),
                message: e.to_string(),
            };
            let mtime = std::fs::metadata(&path).map_err(err)?.modified().map_err(err)?;
            groups.entry(group.to_string()).or_default().push((mtime, name));
        }
        let mut report = PruneReport::default();
        for members in groups.into_values() {
            let mut members = members;
            members.sort_by(|a, b| b.cmp(a));
            for (rank, (_, name)) in members.into_iter().enumerate() {
                if rank < keep {
                    report.kept.push(name);
                } else {
                    let path = self.root.join(&name);
                    std::fs::remove_file(&path)
                        .map_err(|e| RegistryError::Io { path, message: e.to_string() })?;
                    report.removed.push(name);
                }
            }
        }
        report.kept.sort();
        report.removed.sort();
        Ok(report)
    }
}

/// What [`ModelRegistry::prune`] did: artifact file names deleted and
/// surviving, each sorted for deterministic reporting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Artifacts deleted as superseded.
    pub removed: Vec<String>,
    /// Artifacts retained (the newest `keep` of each group).
    pub kept: Vec<String>,
}

/// The publish stamp of one artifact file: which file is current in
/// its group and whether it has changed since a watcher last looked.
///
/// Two stamps compare equal iff nothing about the published file
/// changed — republishing even byte-identical content bumps the
/// modification time (the atomic rename installs a fresh inode), so a
/// watcher polling [`ModelRegistry::latest_generation`] sees every
/// publish, including a no-op one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactGeneration {
    /// Artifact file name within the registry root.
    pub file_name: String,
    /// Modification time at the moment of observation.
    pub mtime: std::time::SystemTime,
    /// File size in bytes at the moment of observation.
    pub len: u64,
}

/// Split an artifact file name into its `{outcome}_{variant}` group and
/// cohort hash; `None` when the name does not follow
/// [`ModelKey::file_name`]'s `{outcome}_{variant}_{hash:016x}.msgb`
/// shape (such files are not prune candidates).
fn split_key_name(name: &str) -> Option<(&str, u64)> {
    let stem = name.strip_suffix(".msgb")?;
    let (group, hash) = stem.rsplit_once('_')?;
    if hash.len() != 16 || !group.contains('_') {
        return None;
    }
    let hash = u64::from_str_radix(hash, 16).ok()?;
    Some((group, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{Clinic, PatientId};
    use msaw_gbdt::{Booster, Params};
    use msaw_preprocess::SampleMeta;
    use msaw_tabular::Matrix;

    fn tiny_set(seed: f64) -> SampleSet {
        let rows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![(i as f64) + seed, (i % 3) as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0] * 0.5).collect();
        let meta = (0..rows.len())
            .map(|i| SampleMeta {
                patient: PatientId(i as u32),
                clinic: Clinic::Modena,
                month: 1,
                window: 1,
            })
            .collect();
        SampleSet {
            features: Matrix::from_rows(&rows),
            feature_names: vec!["a".into(), "b".into()],
            labels,
            meta,
            outcome: OutcomeKind::Qol,
        }
    }

    fn tiny_artifact(set: &SampleSet) -> ModelArtifact {
        let params = Params { n_estimators: 4, ..Params::regression() };
        let model = Booster::train(&params, &set.features, &set.labels).unwrap();
        ModelArtifact::from_booster(model, None)
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("msaw_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::open(dir).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = tiny_set(0.0);
        assert_eq!(cohort_fingerprint(&a), cohort_fingerprint(&tiny_set(0.0)));
        assert_ne!(cohort_fingerprint(&a), cohort_fingerprint(&tiny_set(1.0)));
        let mut renamed = tiny_set(0.0);
        renamed.feature_names[0] = "z".into();
        assert_ne!(cohort_fingerprint(&a), cohort_fingerprint(&renamed));
    }

    #[test]
    fn store_then_load_round_trips() {
        let set = tiny_set(0.0);
        let registry = temp_registry("round_trip");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        let artifact = tiny_artifact(&set);
        let path = registry.store(&key, &artifact).unwrap();
        assert!(path.ends_with(key.file_name()));
        assert!(registry.contains(&key));
        let loaded = registry.load(&key).unwrap();
        assert_eq!(loaded.booster, artifact.booster);
        assert_eq!(registry.list().unwrap(), vec![key.file_name()]);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn missing_key_is_not_found() {
        let set = tiny_set(0.0);
        let registry = temp_registry("missing");
        let key = ModelKey::for_samples(&set, Approach::KnowledgeDriven);
        assert!(matches!(registry.load(&key), Err(RegistryError::NotFound { .. })));
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn corrupt_artifact_is_a_typed_error() {
        let set = tiny_set(0.0);
        let registry = temp_registry("corrupt");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &tiny_artifact(&set)).unwrap();
        // Flip one byte in the middle of the stored file.
        let path = registry.path_for(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match registry.load(&key) {
            Err(RegistryError::Artifact { source: PredictError::Decode(_), .. }) => {}
            other => panic!("expected typed artifact error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(registry.root());
    }

    /// Pin a file's mtime so the recency ranking is under test control
    /// (stores within one test can land in the same clock tick).
    fn set_mtime(path: &Path, secs_after_epoch: u64) {
        let f = std::fs::File::options().write(true).open(path).unwrap();
        f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs_after_epoch))
            .unwrap();
    }

    #[test]
    fn prune_keeps_latest_n_per_group() {
        let registry = temp_registry("prune_policy");
        // Three generations of QoL/DD (distinct cohorts), two of
        // QoL/KD, one Falls/DD — plus a stray non-artifact file.
        let mut qol_dd: Vec<String> = Vec::new();
        for (gen, seed) in [0.0, 1.0, 2.0].into_iter().enumerate() {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::DataDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 1_000 + gen as u64);
            qol_dd.push(key.file_name());
        }
        let mut qol_kd: Vec<String> = Vec::new();
        for (gen, seed) in [0.0, 1.0].into_iter().enumerate() {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::KnowledgeDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 2_000 + gen as u64);
            qol_kd.push(key.file_name());
        }
        let mut falls_set = tiny_set(0.0);
        falls_set.outcome = OutcomeKind::Falls;
        let falls_key = ModelKey::for_samples(&falls_set, Approach::DataDriven);
        registry.store(&falls_key, &tiny_artifact(&falls_set)).unwrap();
        let stray = registry.root().join("notes.txt");
        std::fs::write(&stray, b"not an artifact").unwrap();

        let report = registry.prune(2).unwrap();
        // QoL/DD: oldest of three goes; QoL/KD and Falls/DD fit.
        assert_eq!(report.removed, vec![qol_dd[0].clone()]);
        let mut expect_kept = vec![
            qol_dd[1].clone(),
            qol_dd[2].clone(),
            qol_kd[0].clone(),
            qol_kd[1].clone(),
            falls_key.file_name(),
        ];
        expect_kept.sort();
        assert_eq!(report.kept, expect_kept);
        assert!(!registry.root().join(&qol_dd[0]).exists());
        assert!(stray.exists(), "non-artifact files are never pruned");

        // keep = 1 now trims each group to its newest member; a second
        // identical call is a no-op.
        let report = registry.prune(1).unwrap();
        assert_eq!(report.removed, {
            let mut v = vec![qol_dd[1].clone(), qol_kd[0].clone()];
            v.sort();
            v
        });
        assert_eq!(registry.prune(1).unwrap().removed, Vec::<String>::new());
        let left = registry.list().unwrap();
        let mut expect = vec![qol_dd[2].clone(), qol_kd[1].clone(), falls_key.file_name()];
        expect.sort();
        assert_eq!(left, expect);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn prune_ties_break_by_name_and_keep_zero_is_rejected() {
        let registry = temp_registry("prune_ties");
        let mut names: Vec<String> = Vec::new();
        for seed in [0.0, 1.0, 2.0] {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::DataDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 5_000); // identical mtimes: pure name tiebreak
            names.push(key.file_name());
        }
        names.sort();
        let report = registry.prune(1).unwrap();
        // Greatest name wins on an mtime tie; the other two go.
        assert_eq!(report.kept, vec![names[2].clone()]);
        assert_eq!(report.removed, vec![names[0].clone(), names[1].clone()]);

        assert!(matches!(registry.prune(0), Err(RegistryError::InvalidKeep)));
        assert_eq!(registry.list().unwrap().len(), 1, "rejected prune must not delete");
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn latest_generation_tracks_the_newest_group_member() {
        let registry = temp_registry("latest_gen");
        let group = {
            let set = tiny_set(0.0);
            ModelKey::for_samples(&set, Approach::DataDriven).group_name()
        };
        assert_eq!(registry.latest_generation(&group).unwrap(), None);

        let mut names = Vec::new();
        for (gen, seed) in [0.0, 1.0].into_iter().enumerate() {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::DataDriven);
            assert_eq!(key.group_name(), group);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 1_000 + gen as u64);
            names.push(key.file_name());
        }
        let latest = registry.latest_generation(&group).unwrap().unwrap();
        assert_eq!(latest.file_name, names[1]);

        // A republish of the *older* cohort with a newer mtime becomes
        // current: recency is publish order, not key order.
        let set = tiny_set(0.0);
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
        set_mtime(&path, 9_000);
        let latest = registry.latest_generation(&group).unwrap().unwrap();
        assert_eq!(latest.file_name, names[0]);

        // Another group's artifacts are invisible to this group.
        assert_eq!(registry.latest_generation("qol_kd").unwrap(), None);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn republishing_identical_bytes_is_a_new_generation() {
        let registry = temp_registry("regen_stamp");
        let set = tiny_set(0.0);
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        let artifact = tiny_artifact(&set);
        let path = registry.store(&key, &artifact).unwrap();
        set_mtime(&path, 1_000);
        let first = registry.latest_generation(&key.group_name()).unwrap().unwrap();
        let path = registry.store(&key, &artifact).unwrap();
        set_mtime(&path, 2_000);
        let second = registry.latest_generation(&key.group_name()).unwrap().unwrap();
        assert_eq!(first.file_name, second.file_name);
        assert_eq!(first.len, second.len);
        assert_ne!(first, second, "a republish must read as a fresh generation");
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn load_latest_survives_a_prune_deleting_the_chosen_generation() {
        // The watcher race: generation B is newest when the listing
        // happens, and a concurrent prune deletes it before the read.
        // load_latest must fall back to the surviving generation A
        // instead of surfacing NotFound.
        let registry = temp_registry("prune_race");
        let set_a = tiny_set(0.0);
        let key_a = ModelKey::for_samples(&set_a, Approach::DataDriven);
        let artifact_a = tiny_artifact(&set_a);
        let path = registry.store(&key_a, &artifact_a).unwrap();
        set_mtime(&path, 1_000);
        let set_b = tiny_set(1.0);
        let key_b = ModelKey::for_samples(&set_b, Approach::DataDriven);
        let path_b = registry.store(&key_b, &tiny_artifact(&set_b)).unwrap();
        set_mtime(&path_b, 2_000);

        let mut deleted = false;
        let (gen, loaded) = registry
            .load_latest_hooked(&key_a.group_name(), |gen| {
                // Fires between "pick newest" and "read it": the first
                // pick is B — delete it, exactly what a prune racing the
                // watcher does.
                if !deleted {
                    assert_eq!(gen.file_name, key_b.file_name());
                    std::fs::remove_file(registry.root().join(&gen.file_name)).unwrap();
                    deleted = true;
                }
            })
            .unwrap()
            .expect("generation A survives");
        assert!(deleted);
        assert_eq!(gen.file_name, key_a.file_name());
        assert_eq!(loaded.booster, artifact_a.booster);

        // Emptying the group entirely resolves to Ok(None), not an error.
        registry.prune(1).unwrap();
        std::fs::remove_file(registry.root().join(key_a.file_name())).unwrap();
        assert_eq!(registry.load_latest(&key_a.group_name()).unwrap().map(|(g, _)| g), None);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn load_named_reports_missing_and_corrupt_files_typed() {
        let registry = temp_registry("load_named");
        assert!(matches!(
            registry.load_named("qol_dd_0000000000000000.msgb"),
            Err(RegistryError::NotFound { .. })
        ));
        let set = tiny_set(0.0);
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &tiny_artifact(&set)).unwrap();
        let path = registry.path_for(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            registry.load_named(&key.file_name()),
            Err(RegistryError::Artifact { .. })
        ));
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn store_leaves_no_tmp_files() {
        let set = tiny_set(0.0);
        let registry = temp_registry("tmp_files");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &tiny_artifact(&set)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(registry.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(registry.root());
    }
}
