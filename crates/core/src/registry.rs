//! Persisted-model registry: the bridge between training runs and the
//! serving layer.
//!
//! A registry is a directory of v2 model artifacts
//! ([`msaw_gbdt::ModelArtifact`]), each keyed by *what it predicts and
//! what it was trained on*: outcome, approach variant, and a
//! fingerprint of the exact training cohort. The fingerprint means a
//! retrain on different data gets a different key — the registry can
//! hold both without either clobbering the other, and a serving
//! process can assert it loaded the model trained on the cohort it
//! expects.
//!
//! Durability contract:
//!
//! * **Atomic publish.** [`ModelRegistry::store`] writes to a `.tmp`
//!   sibling and `rename`s it into place, so a crash mid-write never
//!   leaves a half-written artifact under a valid name — readers see
//!   the old model or the new one, nothing in between.
//! * **Verified load.** [`ModelRegistry::load`] re-validates the full
//!   artifact (checksum, structure, flat-forest cross-check) through
//!   the gbdt decoder; a corrupt file is a typed
//!   [`RegistryError::Artifact`], never a panic or a silently wrong
//!   model.
//!
//! File naming is deterministic — `{outcome}_{variant}_{hash:016x}.msgb`
//! — so keys and paths are interconvertible and a directory listing is
//! a catalogue.

use crate::error::PipelineError;
use crate::experiment::Approach;
use msaw_gbdt::{fnv1a_64, ModelArtifact, PredictError};
use msaw_preprocess::{OutcomeKind, SampleSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identity of a persisted model: what it predicts, which feature
/// representation it uses, and the fingerprint of its training cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The outcome the model predicts.
    pub outcome: OutcomeKind,
    /// Feature representation (data-driven vs knowledge-driven).
    pub variant: Approach,
    /// [`cohort_fingerprint`] of the training sample set.
    pub cohort_hash: u64,
}

impl ModelKey {
    /// Key for a model trained on `set` with the `variant` features.
    pub fn for_samples(set: &SampleSet, variant: Approach) -> Self {
        ModelKey { outcome: set.outcome, variant, cohort_hash: cohort_fingerprint(set) }
    }

    /// Deterministic artifact file name for this key.
    pub fn file_name(&self) -> String {
        format!(
            "{}_{}_{:016x}.msgb",
            self.outcome.name().to_ascii_lowercase(),
            self.variant.label().to_ascii_lowercase(),
            self.cohort_hash
        )
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} @ {:016x}", self.outcome.name(), self.variant.label(), self.cohort_hash)
    }
}

/// FNV-1a fingerprint of a sample set's contents: outcome, feature
/// names, labels, and every feature value (bit pattern, so `NaN`
/// placement counts). Two sets hash equal iff a model trained on one
/// is interchangeable with a model trained on the other.
pub fn cohort_fingerprint(set: &SampleSet) -> u64 {
    let mut bytes = Vec::with_capacity(
        16 + set.feature_names.iter().map(|n| n.len() + 1).sum::<usize>()
            + (set.labels.len() + set.features.as_slice().len()) * 8,
    );
    bytes.extend_from_slice(set.outcome.name().as_bytes());
    bytes.push(0);
    for name in &set.feature_names {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
    }
    for &label in &set.labels {
        bytes.extend_from_slice(&label.to_bits().to_le_bytes());
    }
    for &value in set.features.as_slice() {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a_64(&bytes)
}

/// Failures while storing or loading registry artifacts.
///
/// I/O failures are carried as rendered strings so the error stays
/// `Clone + PartialEq` like the rest of the pipeline taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Filesystem failure while writing, renaming, or reading.
    Io { path: PathBuf, message: String },
    /// No artifact stored under the key.
    NotFound { key_file: String },
    /// The stored artifact failed checksum or structural validation.
    Artifact { key_file: String, source: PredictError },
    /// `prune` was asked to keep zero artifacts per group, which would
    /// empty the registry — almost certainly a caller bug, so it is
    /// rejected rather than obeyed.
    InvalidKeep,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => {
                write!(f, "registry I/O failure at {}: {message}", path.display())
            }
            RegistryError::NotFound { key_file } => {
                write!(f, "no model stored under {key_file}")
            }
            RegistryError::Artifact { key_file, source } => {
                write!(f, "stored model {key_file} is invalid: {source}")
            }
            RegistryError::InvalidKeep => {
                write!(f, "prune requires keep >= 1 (keep = 0 would empty the registry)")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Artifact { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<RegistryError> for PipelineError {
    fn from(e: RegistryError) -> Self {
        PipelineError::Registry(e)
    }
}

/// A directory of keyed, checksummed model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| RegistryError::Io { path: root.clone(), message: e.to_string() })?;
        Ok(ModelRegistry { root })
    }

    /// Directory this registry stores artifacts in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Full path an artifact for `key` lives at.
    pub fn path_for(&self, key: &ModelKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Persist `artifact` under `key`, atomically: the encoded bytes go
    /// to a `.tmp` sibling first and are renamed into place, so readers
    /// never observe a partial artifact.
    pub fn store(
        &self,
        key: &ModelKey,
        artifact: &ModelArtifact,
    ) -> Result<PathBuf, RegistryError> {
        let path = self.path_for(key);
        let tmp = path.with_extension("msgb.tmp");
        let bytes = artifact.encode();
        std::fs::write(&tmp, &bytes)
            .map_err(|e| RegistryError::Io { path: tmp.clone(), message: e.to_string() })?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            // Leave no stale tmp file behind a failed publish.
            let _ = std::fs::remove_file(&tmp);
            RegistryError::Io { path: path.clone(), message: e.to_string() }
        })?;
        Ok(path)
    }

    /// Load and fully re-validate the artifact stored under `key`.
    pub fn load(&self, key: &ModelKey) -> Result<ModelArtifact, RegistryError> {
        let path = self.path_for(key);
        let key_file = key.file_name();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound { key_file })
            }
            Err(e) => {
                return Err(RegistryError::Io { path, message: e.to_string() });
            }
        };
        msaw_gbdt::artifact::decode(&bytes)
            .map_err(|source| RegistryError::Artifact { key_file, source })
    }

    /// Whether an artifact is stored under `key`.
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.path_for(key).is_file()
    }

    /// File names of every artifact currently published (sorted, so
    /// listings are deterministic).
    pub fn list(&self) -> Result<Vec<String>, RegistryError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| RegistryError::Io { path: self.root.clone(), message: e.to_string() })?;
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: self.root.clone(),
                message: e.to_string(),
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".msgb") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Remove superseded artifacts, keeping the newest `keep` per
    /// `(outcome, variant)` group.
    ///
    /// Retraining on a refreshed cohort publishes under a new
    /// fingerprint and leaves the old artifact in place (that is the
    /// point of content-addressed keys), so a long-lived registry
    /// accretes one file per historical cohort. `prune` is the
    /// retention policy: within each group, artifacts are ranked newest
    /// first by modification time (file-name order breaks ties, so the
    /// ranking is total even on coarse-mtime filesystems) and everything
    /// past the first `keep` is deleted.
    ///
    /// `keep == 0` is a typed [`RegistryError::InvalidKeep`]. Files
    /// that do not follow the `{outcome}_{variant}_{hash:016x}.msgb`
    /// naming are not registry artifacts and are never touched.
    pub fn prune(&self, keep: usize) -> Result<PruneReport, RegistryError> {
        if keep == 0 {
            return Err(RegistryError::InvalidKeep);
        }
        let mut groups: std::collections::BTreeMap<String, Vec<(std::time::SystemTime, String)>> =
            std::collections::BTreeMap::new();
        for name in self.list()? {
            let Some((group, _)) = split_key_name(&name) else { continue };
            let path = self.root.join(&name);
            let err = |e: std::io::Error| RegistryError::Io {
                path: path.clone(),
                message: e.to_string(),
            };
            let mtime = std::fs::metadata(&path).map_err(err)?.modified().map_err(err)?;
            groups.entry(group.to_string()).or_default().push((mtime, name));
        }
        let mut report = PruneReport::default();
        for members in groups.into_values() {
            let mut members = members;
            members.sort_by(|a, b| b.cmp(a));
            for (rank, (_, name)) in members.into_iter().enumerate() {
                if rank < keep {
                    report.kept.push(name);
                } else {
                    let path = self.root.join(&name);
                    std::fs::remove_file(&path)
                        .map_err(|e| RegistryError::Io { path, message: e.to_string() })?;
                    report.removed.push(name);
                }
            }
        }
        report.kept.sort();
        report.removed.sort();
        Ok(report)
    }
}

/// What [`ModelRegistry::prune`] did: artifact file names deleted and
/// surviving, each sorted for deterministic reporting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Artifacts deleted as superseded.
    pub removed: Vec<String>,
    /// Artifacts retained (the newest `keep` of each group).
    pub kept: Vec<String>,
}

/// Split an artifact file name into its `{outcome}_{variant}` group and
/// cohort hash; `None` when the name does not follow
/// [`ModelKey::file_name`]'s `{outcome}_{variant}_{hash:016x}.msgb`
/// shape (such files are not prune candidates).
fn split_key_name(name: &str) -> Option<(&str, u64)> {
    let stem = name.strip_suffix(".msgb")?;
    let (group, hash) = stem.rsplit_once('_')?;
    if hash.len() != 16 || !group.contains('_') {
        return None;
    }
    let hash = u64::from_str_radix(hash, 16).ok()?;
    Some((group, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{Clinic, PatientId};
    use msaw_gbdt::{Booster, Params};
    use msaw_preprocess::SampleMeta;
    use msaw_tabular::Matrix;

    fn tiny_set(seed: f64) -> SampleSet {
        let rows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![(i as f64) + seed, (i % 3) as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0] * 0.5).collect();
        let meta = (0..rows.len())
            .map(|i| SampleMeta {
                patient: PatientId(i as u32),
                clinic: Clinic::Modena,
                month: 1,
                window: 1,
            })
            .collect();
        SampleSet {
            features: Matrix::from_rows(&rows),
            feature_names: vec!["a".into(), "b".into()],
            labels,
            meta,
            outcome: OutcomeKind::Qol,
        }
    }

    fn tiny_artifact(set: &SampleSet) -> ModelArtifact {
        let params = Params { n_estimators: 4, ..Params::regression() };
        let model = Booster::train(&params, &set.features, &set.labels).unwrap();
        ModelArtifact::from_booster(model, None)
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("msaw_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::open(dir).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = tiny_set(0.0);
        assert_eq!(cohort_fingerprint(&a), cohort_fingerprint(&tiny_set(0.0)));
        assert_ne!(cohort_fingerprint(&a), cohort_fingerprint(&tiny_set(1.0)));
        let mut renamed = tiny_set(0.0);
        renamed.feature_names[0] = "z".into();
        assert_ne!(cohort_fingerprint(&a), cohort_fingerprint(&renamed));
    }

    #[test]
    fn store_then_load_round_trips() {
        let set = tiny_set(0.0);
        let registry = temp_registry("round_trip");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        let artifact = tiny_artifact(&set);
        let path = registry.store(&key, &artifact).unwrap();
        assert!(path.ends_with(key.file_name()));
        assert!(registry.contains(&key));
        let loaded = registry.load(&key).unwrap();
        assert_eq!(loaded.booster, artifact.booster);
        assert_eq!(registry.list().unwrap(), vec![key.file_name()]);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn missing_key_is_not_found() {
        let set = tiny_set(0.0);
        let registry = temp_registry("missing");
        let key = ModelKey::for_samples(&set, Approach::KnowledgeDriven);
        assert!(matches!(registry.load(&key), Err(RegistryError::NotFound { .. })));
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn corrupt_artifact_is_a_typed_error() {
        let set = tiny_set(0.0);
        let registry = temp_registry("corrupt");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &tiny_artifact(&set)).unwrap();
        // Flip one byte in the middle of the stored file.
        let path = registry.path_for(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match registry.load(&key) {
            Err(RegistryError::Artifact { source: PredictError::Decode(_), .. }) => {}
            other => panic!("expected typed artifact error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(registry.root());
    }

    /// Pin a file's mtime so the recency ranking is under test control
    /// (stores within one test can land in the same clock tick).
    fn set_mtime(path: &Path, secs_after_epoch: u64) {
        let f = std::fs::File::options().write(true).open(path).unwrap();
        f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs_after_epoch))
            .unwrap();
    }

    #[test]
    fn prune_keeps_latest_n_per_group() {
        let registry = temp_registry("prune_policy");
        // Three generations of QoL/DD (distinct cohorts), two of
        // QoL/KD, one Falls/DD — plus a stray non-artifact file.
        let mut qol_dd: Vec<String> = Vec::new();
        for (gen, seed) in [0.0, 1.0, 2.0].into_iter().enumerate() {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::DataDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 1_000 + gen as u64);
            qol_dd.push(key.file_name());
        }
        let mut qol_kd: Vec<String> = Vec::new();
        for (gen, seed) in [0.0, 1.0].into_iter().enumerate() {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::KnowledgeDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 2_000 + gen as u64);
            qol_kd.push(key.file_name());
        }
        let mut falls_set = tiny_set(0.0);
        falls_set.outcome = OutcomeKind::Falls;
        let falls_key = ModelKey::for_samples(&falls_set, Approach::DataDriven);
        registry.store(&falls_key, &tiny_artifact(&falls_set)).unwrap();
        let stray = registry.root().join("notes.txt");
        std::fs::write(&stray, b"not an artifact").unwrap();

        let report = registry.prune(2).unwrap();
        // QoL/DD: oldest of three goes; QoL/KD and Falls/DD fit.
        assert_eq!(report.removed, vec![qol_dd[0].clone()]);
        let mut expect_kept = vec![
            qol_dd[1].clone(),
            qol_dd[2].clone(),
            qol_kd[0].clone(),
            qol_kd[1].clone(),
            falls_key.file_name(),
        ];
        expect_kept.sort();
        assert_eq!(report.kept, expect_kept);
        assert!(!registry.root().join(&qol_dd[0]).exists());
        assert!(stray.exists(), "non-artifact files are never pruned");

        // keep = 1 now trims each group to its newest member; a second
        // identical call is a no-op.
        let report = registry.prune(1).unwrap();
        assert_eq!(report.removed, {
            let mut v = vec![qol_dd[1].clone(), qol_kd[0].clone()];
            v.sort();
            v
        });
        assert_eq!(registry.prune(1).unwrap().removed, Vec::<String>::new());
        let left = registry.list().unwrap();
        let mut expect = vec![qol_dd[2].clone(), qol_kd[1].clone(), falls_key.file_name()];
        expect.sort();
        assert_eq!(left, expect);
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn prune_ties_break_by_name_and_keep_zero_is_rejected() {
        let registry = temp_registry("prune_ties");
        let mut names: Vec<String> = Vec::new();
        for seed in [0.0, 1.0, 2.0] {
            let set = tiny_set(seed);
            let key = ModelKey::for_samples(&set, Approach::DataDriven);
            let path = registry.store(&key, &tiny_artifact(&set)).unwrap();
            set_mtime(&path, 5_000); // identical mtimes: pure name tiebreak
            names.push(key.file_name());
        }
        names.sort();
        let report = registry.prune(1).unwrap();
        // Greatest name wins on an mtime tie; the other two go.
        assert_eq!(report.kept, vec![names[2].clone()]);
        assert_eq!(report.removed, vec![names[0].clone(), names[1].clone()]);

        assert!(matches!(registry.prune(0), Err(RegistryError::InvalidKeep)));
        assert_eq!(registry.list().unwrap().len(), 1, "rejected prune must not delete");
        let _ = std::fs::remove_dir_all(registry.root());
    }

    #[test]
    fn store_leaves_no_tmp_files() {
        let set = tiny_set(0.0);
        let registry = temp_registry("tmp_files");
        let key = ModelKey::for_samples(&set, Approach::DataDriven);
        registry.store(&key, &tiny_artifact(&set)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(registry.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(registry.root());
    }
}
