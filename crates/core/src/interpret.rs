//! Model interpretation reports — the paper's §5.2.
//!
//! Local: per-patient top-k SHAP attributions, and "contrast pairs" —
//! two patients with (nearly) the same prediction but different
//! explanations, the paper's Fig. 6 argument for personalised medicine.
//! Global: dependence curves with data-driven thresholds (Fig. 7).
//!
//! All reports over the same `(model, sample set)` pair share one
//! explainer and one SHAP matrix through [`ShapReport`]; the free
//! functions remain as one-shot conveniences and produce bit-identical
//! results.

use crate::error::PipelineError;
use msaw_gbdt::{Booster, PredictError};
use msaw_preprocess::SampleSet;
use msaw_shap::{
    dependence_curve, sign_change_threshold, Explanation, GlobalSummary, TreeExplainer,
};
use msaw_tabular::Matrix;
use serde::{Deserialize, Serialize};

/// A named SHAP attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Feature name.
    pub feature: String,
    /// The feature's value in the explained sample (`NaN` = missing).
    pub value: f64,
    /// Its SHAP value (raw-score space).
    pub shap: f64,
}

/// A local explanation report for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalReport {
    /// Row index within the sample set.
    pub row: usize,
    /// Patient the row belongs to.
    pub patient: u32,
    /// The model's (transformed) prediction.
    pub prediction: f64,
    /// The top-k attributions by |SHAP|, descending.
    pub top: Vec<Attribution>,
}

/// Build a [`LocalReport`] from one row's already-computed explanation.
fn local_report(
    model: &Booster,
    set: &SampleSet,
    row: usize,
    exp: &Explanation,
    top_k: usize,
) -> LocalReport {
    let features = set.features.row(row);
    let top = exp
        .top_k(top_k)
        .into_iter()
        .map(|(f, shap)| Attribution {
            feature: set.feature_names[f].clone(),
            value: features[f],
            shap,
        })
        .collect();
    LocalReport {
        row,
        patient: set.meta[row].patient.0,
        prediction: model.predict_row(features),
        top,
    }
}

/// Explain one row of a sample set.
///
/// One-shot convenience: builds one explainer and explains one row. To
/// explain many rows of the same set — or mix local and global reports —
/// build a [`ShapReport`] once instead.
pub fn explain_row(model: &Booster, set: &SampleSet, row: usize, top_k: usize) -> LocalReport {
    let explainer = TreeExplainer::new(model);
    let exp = explainer.shap_values_row(set.features.row(row));
    local_report(model, set, row, &exp, top_k)
}

/// Find two samples from *different patients* whose predictions agree
/// within `tolerance` but whose top-1 explanation differs — the paper's
/// Fig. 6 scenario ("same SPPB, different drivers → different
/// interventions"). Returns `None` when no such pair exists.
///
/// One-shot convenience over [`ShapReport::find_contrast_pair`]; the
/// SHAP matrix it needs is computed once, on the shared worker pool.
pub fn find_contrast_pair(
    model: &Booster,
    set: &SampleSet,
    tolerance: f64,
    top_k: usize,
) -> Option<(LocalReport, LocalReport)> {
    ShapReport::new(model, set).find_contrast_pair(tolerance, top_k)
}

/// Global dependence report for one feature (Fig. 7): the SHAP-vs-value
/// curve and the data-driven threshold where its influence flips sign.
#[derive(Debug, Clone, PartialEq)]
pub struct DependenceReport {
    /// The analysed feature.
    pub feature: String,
    /// `(feature value, SHAP value)` points, sorted by value.
    pub points: Vec<(f64, f64)>,
    /// Value at which the mean SHAP flips sign, when it does.
    pub threshold: Option<f64>,
}

/// Build the dependence report for `feature_name` over a sample set.
///
/// One-shot convenience over [`ShapReport::dependence_report`]. For
/// several features — or a dependence report alongside a ranking, as in
/// Fig. 7 — build a [`ShapReport`] once; each one-shot call here pays
/// for a full SHAP matrix.
pub fn dependence_report(model: &Booster, set: &SampleSet, feature_name: &str) -> DependenceReport {
    ShapReport::new(model, set).dependence_report(feature_name)
}

/// Extract data-driven thresholds for *every* PRO feature of a model —
/// the paper's closing suggestion that "this explanation capability may
/// underpin epidemiological studies": a population-level catalogue of
/// where each questionnaire item's influence flips sign, the DD
/// counterpart of the KD cutoff table. Features without a sign change
/// (monotone or inert) are omitted.
pub fn population_thresholds(model: &Booster, set: &SampleSet) -> Vec<(String, f64)> {
    ShapReport::new(model, set).population_thresholds()
}

/// Global importance ranking (mean |SHAP|) with feature names attached.
///
/// One-shot convenience over [`ShapReport::global_ranking`].
pub fn global_ranking(model: &Booster, set: &SampleSet, top_k: usize) -> Vec<(String, f64)> {
    ShapReport::new(model, set).global_ranking(top_k)
}

/// Shared interpretation state for one `(model, sample set)` pair: one
/// [`TreeExplainer`] and one SHAP matrix over every row of the set,
/// computed once on the shared worker pool and reused by every report.
///
/// The free functions in this module each rebuilt this state per call —
/// Fig. 7 alone paid for two full SHAP matrices (ranking + dependence)
/// and `find_contrast_pair` for three explainers plus a re-explained
/// pair. A `ShapReport` makes the sharing explicit; every method is
/// bit-identical to its free-function counterpart.
pub struct ShapReport<'a> {
    model: &'a Booster,
    set: &'a SampleSet,
    explainer: TreeExplainer<'a>,
    shap: Matrix,
    /// Raw score of every row, batch-computed by the flat engine
    /// (bit-identical to `predict_raw_row`).
    raw: Vec<f64>,
}

impl<'a> ShapReport<'a> {
    /// Build the shared state: one explainer, one SHAP matrix and one
    /// raw-prediction vector over all rows of `set` (fanned across the
    /// worker pool).
    ///
    /// Panicking wrapper over [`ShapReport::try_new`] for the usual case
    /// where the model was trained on this very set.
    pub fn new(model: &'a Booster, set: &'a SampleSet) -> Self {
        Self::try_new(model, set).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`ShapReport::new`]: a model/set width mismatch
    /// (explaining a set the model was not trained on) is a
    /// [`PipelineError::Predict`] instead of a downstream panic.
    pub fn try_new(model: &'a Booster, set: &'a SampleSet) -> Result<Self, PipelineError> {
        if model.n_features() != set.features.ncols() {
            return Err(PipelineError::Predict(PredictError::FeatureCount {
                expected: model.n_features(),
                actual: set.features.ncols(),
            }));
        }
        let explainer = TreeExplainer::new(model);
        let shap = explainer.shap_values(&set.features);
        let raw = model.flat_forest().predict_raw_batch(&set.features);
        Ok(ShapReport { model, set, explainer, shap, raw })
    }

    /// The shared explainer.
    pub fn explainer(&self) -> &TreeExplainer<'a> {
        &self.explainer
    }

    /// The cached SHAP matrix (rows × features, raw-score space).
    pub fn shap_matrix(&self) -> &Matrix {
        &self.shap
    }

    /// One row's cached attributions as an [`Explanation`].
    fn explanation(&self, row: usize) -> Explanation {
        Explanation {
            values: self.shap.row(row).to_vec(),
            base_value: self.explainer.expected_value(),
            prediction: self.raw[row],
        }
    }

    /// Explain one row from the cached matrix (cf. [`explain_row`]).
    pub fn explain_row(&self, row: usize, top_k: usize) -> LocalReport {
        local_report(self.model, self.set, row, &self.explanation(row), top_k)
    }

    /// Find a Fig. 6 contrast pair from the cached matrix (cf. the free
    /// [`find_contrast_pair`]): same prediction within `tolerance`,
    /// different patients, different top-1 driver.
    pub fn find_contrast_pair(
        &self,
        tolerance: f64,
        top_k: usize,
    ) -> Option<(LocalReport, LocalReport)> {
        // Predictions and top drivers for every row, off the caches.
        let rows: Vec<(usize, f64, usize)> = (0..self.set.len())
            .map(|i| {
                let pred = self.model.objective().transform(self.raw[i]);
                (i, pred, self.explanation(i).ranking()[0])
            })
            .collect();
        for (a_pos, &(a, pred_a, top_a)) in rows.iter().enumerate() {
            for &(b, pred_b, top_b) in &rows[a_pos + 1..] {
                if self.set.meta[a].patient == self.set.meta[b].patient {
                    continue;
                }
                if (pred_a - pred_b).abs() <= tolerance && top_a != top_b {
                    return Some((self.explain_row(a, top_k), self.explain_row(b, top_k)));
                }
            }
        }
        None
    }

    /// Dependence report for one feature from the cached matrix (cf. the
    /// free [`dependence_report`]).
    ///
    /// Panicking wrapper over [`ShapReport::try_dependence_report`].
    pub fn dependence_report(&self, feature_name: &str) -> DependenceReport {
        self.try_dependence_report(feature_name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`ShapReport::dependence_report`]: a feature the
    /// set does not have is [`PipelineError::UnknownFeature`].
    pub fn try_dependence_report(
        &self,
        feature_name: &str,
    ) -> Result<DependenceReport, PipelineError> {
        let feature = self
            .set
            .feature_names
            .iter()
            .position(|n| n == feature_name)
            .ok_or_else(|| PipelineError::UnknownFeature(feature_name.to_string()))?;
        let curve = dependence_curve(&self.set.features, &self.shap, feature);
        let threshold = sign_change_threshold(&curve);
        Ok(DependenceReport {
            feature: feature_name.to_string(),
            points: curve.iter().map(|p| (p.feature_value, p.shap_value)).collect(),
            threshold,
        })
    }

    /// Sign-flip thresholds of every PRO feature from the cached matrix
    /// (cf. the free [`population_thresholds`]).
    pub fn population_thresholds(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (f, name) in self.set.feature_names.iter().enumerate() {
            if !name.starts_with("pro_") {
                continue;
            }
            let curve = dependence_curve(&self.set.features, &self.shap, f);
            if let Some(t) = sign_change_threshold(&curve) {
                out.push((name.clone(), t));
            }
        }
        out
    }

    /// Global mean-|SHAP| ranking from the cached matrix (cf. the free
    /// [`global_ranking`]).
    pub fn global_ranking(&self, top_k: usize) -> Vec<(String, f64)> {
        let summary = GlobalSummary::from_shap_matrix(&self.shap);
        summary
            .top_k(top_k)
            .into_iter()
            .map(|(f, v)| (self.set.feature_names[f].clone(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::experiment::fit_final_model;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

    fn setup() -> (SampleSet, Booster) {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
        let model = fit_final_model(&set, &cfg);
        (set, model)
    }

    #[test]
    fn local_report_has_k_named_attributions() {
        let (set, model) = setup();
        let report = explain_row(&model, &set, 0, 5);
        assert_eq!(report.top.len(), 5);
        assert_eq!(report.patient, set.meta[0].patient.0);
        // Sorted by |SHAP| descending.
        for w in report.top.windows(2) {
            assert!(w[0].shap.abs() >= w[1].shap.abs());
        }
        // Names resolve to real features.
        for a in &report.top {
            assert!(set.feature_names.contains(&a.feature));
        }
    }

    #[test]
    fn contrast_pair_has_same_prediction_different_driver() {
        let (set, model) = setup();
        let pair = find_contrast_pair(&model, &set, 0.5, 5);
        let (a, b) = pair.expect("a contrast pair should exist in a real cohort");
        assert_ne!(a.patient, b.patient);
        assert!((a.prediction - b.prediction).abs() <= 0.5);
        assert_ne!(a.top[0].feature, b.top[0].feature);
    }

    #[test]
    fn dependence_report_produces_points() {
        let (set, model) = setup();
        let report = dependence_report(&model, &set, "pro_locomotion_walk_distance");
        assert!(!report.points.is_empty());
        // Points sorted by feature value.
        for w in report.points.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn global_ranking_names_features() {
        let (set, model) = setup();
        let ranking = global_ranking(&model, &set, 10);
        assert_eq!(ranking.len(), 10);
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn population_thresholds_are_within_likert_range() {
        let (set, model) = setup();
        let thresholds = population_thresholds(&model, &set);
        assert!(!thresholds.is_empty(), "some PRO item should show a threshold");
        for (name, t) in &thresholds {
            assert!(name.starts_with("pro_"));
            assert!((1.0..=5.0).contains(t), "{name}: threshold {t} outside Likert range");
        }
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn unknown_feature_panics() {
        let (set, model) = setup();
        dependence_report(&model, &set, "not_a_feature");
    }

    #[test]
    fn unknown_feature_is_a_typed_error() {
        let (set, model) = setup();
        let report = ShapReport::new(&model, &set);
        let err = report.try_dependence_report("not_a_feature").unwrap_err();
        assert_eq!(err, PipelineError::UnknownFeature("not_a_feature".into()));
    }

    #[test]
    fn mismatched_set_width_is_a_predict_error() {
        let (set, model) = setup();
        let wider = set.with_extra_feature("fi_baseline", &vec![0.0; set.len()]);
        match ShapReport::try_new(&model, &wider) {
            Err(PipelineError::Predict(PredictError::FeatureCount { expected, actual })) => {
                assert_eq!(expected, set.features.ncols());
                assert_eq!(actual, set.features.ncols() + 1);
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("width mismatch must not build a report"),
        }
    }

    /// Bitwise LocalReport equality — `PartialEq` would reject reports
    /// whose attributions carry `NaN` (missing) feature values.
    fn assert_reports_bits_eq(a: &LocalReport, b: &LocalReport) {
        assert_eq!(a.row, b.row);
        assert_eq!(a.patient, b.patient);
        assert_eq!(a.prediction.to_bits(), b.prediction.to_bits());
        assert_eq!(a.top.len(), b.top.len());
        for (x, y) in a.top.iter().zip(&b.top) {
            assert_eq!(x.feature, y.feature);
            assert_eq!(x.value.to_bits(), y.value.to_bits());
            assert_eq!(x.shap.to_bits(), y.shap.to_bits());
        }
    }

    #[test]
    fn shap_report_matches_free_functions_exactly() {
        // The cached-matrix API must be a pure refactor: every report it
        // produces equals its one-shot counterpart, bit for bit.
        let (set, model) = setup();
        let report = ShapReport::new(&model, &set);

        for row in [0usize, 3, set.len() - 1] {
            assert_reports_bits_eq(&report.explain_row(row, 5), &explain_row(&model, &set, row, 5));
        }
        let (a, b) = report.find_contrast_pair(0.5, 5).expect("pair exists");
        let (fa, fb) = find_contrast_pair(&model, &set, 0.5, 5).expect("pair exists");
        assert_reports_bits_eq(&a, &fa);
        assert_reports_bits_eq(&b, &fb);
        let feature = "pro_locomotion_walk_distance";
        assert_eq!(report.dependence_report(feature), dependence_report(&model, &set, feature));
        assert_eq!(report.population_thresholds(), population_thresholds(&model, &set));
        assert_eq!(report.global_ranking(10), global_ranking(&model, &set, 10));
    }

    #[test]
    fn shap_report_caches_one_matrix_of_set_shape() {
        let (set, model) = setup();
        let report = ShapReport::new(&model, &set);
        assert_eq!(report.shap_matrix().nrows(), set.len());
        assert_eq!(report.shap_matrix().ncols(), set.features.ncols());
        // The cached matrix is the explainer's own output.
        let direct = report.explainer().shap_values(&set.features);
        assert_eq!(report.shap_matrix().as_slice(), direct.as_slice());
    }
}
