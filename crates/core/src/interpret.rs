//! Model interpretation reports — the paper's §5.2.
//!
//! Local: per-patient top-k SHAP attributions, and "contrast pairs" —
//! two patients with (nearly) the same prediction but different
//! explanations, the paper's Fig. 6 argument for personalised medicine.
//! Global: dependence curves with data-driven thresholds (Fig. 7).

use msaw_gbdt::Booster;
use msaw_preprocess::SampleSet;
use msaw_shap::{dependence_curve, sign_change_threshold, GlobalSummary, TreeExplainer};
use serde::{Deserialize, Serialize};

/// A named SHAP attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Feature name.
    pub feature: String,
    /// The feature's value in the explained sample (`NaN` = missing).
    pub value: f64,
    /// Its SHAP value (raw-score space).
    pub shap: f64,
}

/// A local explanation report for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalReport {
    /// Row index within the sample set.
    pub row: usize,
    /// Patient the row belongs to.
    pub patient: u32,
    /// The model's (transformed) prediction.
    pub prediction: f64,
    /// The top-k attributions by |SHAP|, descending.
    pub top: Vec<Attribution>,
}

/// Explain one row of a sample set.
pub fn explain_row(model: &Booster, set: &SampleSet, row: usize, top_k: usize) -> LocalReport {
    let explainer = TreeExplainer::new(model);
    let features = set.features.row(row);
    let exp = explainer.shap_values_row(features);
    let top = exp
        .top_k(top_k)
        .into_iter()
        .map(|(f, shap)| Attribution {
            feature: set.feature_names[f].clone(),
            value: features[f],
            shap,
        })
        .collect();
    LocalReport {
        row,
        patient: set.meta[row].patient.0,
        prediction: model.predict_row(features),
        top,
    }
}

/// Find two samples from *different patients* whose predictions agree
/// within `tolerance` but whose top-1 explanation differs — the paper's
/// Fig. 6 scenario ("same SPPB, different drivers → different
/// interventions"). Returns `None` when no such pair exists.
pub fn find_contrast_pair(
    model: &Booster,
    set: &SampleSet,
    tolerance: f64,
    top_k: usize,
) -> Option<(LocalReport, LocalReport)> {
    let explainer = TreeExplainer::new(model);
    // Precompute predictions and top features for every row.
    let rows: Vec<(usize, f64, usize)> = (0..set.len())
        .map(|i| {
            let features = set.features.row(i);
            let exp = explainer.shap_values_row(features);
            (i, model.predict_row(features), exp.ranking()[0])
        })
        .collect();
    for (a_pos, &(a, pred_a, top_a)) in rows.iter().enumerate() {
        for &(b, pred_b, top_b) in &rows[a_pos + 1..] {
            if set.meta[a].patient == set.meta[b].patient {
                continue;
            }
            if (pred_a - pred_b).abs() <= tolerance && top_a != top_b {
                return Some((
                    explain_row(model, set, a, top_k),
                    explain_row(model, set, b, top_k),
                ));
            }
        }
    }
    None
}

/// Global dependence report for one feature (Fig. 7): the SHAP-vs-value
/// curve and the data-driven threshold where its influence flips sign.
#[derive(Debug, Clone, PartialEq)]
pub struct DependenceReport {
    /// The analysed feature.
    pub feature: String,
    /// `(feature value, SHAP value)` points, sorted by value.
    pub points: Vec<(f64, f64)>,
    /// Value at which the mean SHAP flips sign, when it does.
    pub threshold: Option<f64>,
}

/// Build the dependence report for `feature_name` over a sample set.
pub fn dependence_report(model: &Booster, set: &SampleSet, feature_name: &str) -> DependenceReport {
    let feature = set
        .feature_names
        .iter()
        .position(|n| n == feature_name)
        .unwrap_or_else(|| panic!("unknown feature `{feature_name}`"));
    let explainer = TreeExplainer::new(model);
    let shap = explainer.shap_values(&set.features);
    let curve = dependence_curve(&set.features, &shap, feature);
    let threshold = sign_change_threshold(&curve);
    DependenceReport {
        feature: feature_name.to_string(),
        points: curve.iter().map(|p| (p.feature_value, p.shap_value)).collect(),
        threshold,
    }
}

/// Extract data-driven thresholds for *every* PRO feature of a model —
/// the paper's closing suggestion that "this explanation capability may
/// underpin epidemiological studies": a population-level catalogue of
/// where each questionnaire item's influence flips sign, the DD
/// counterpart of the KD cutoff table. Features without a sign change
/// (monotone or inert) are omitted.
pub fn population_thresholds(model: &Booster, set: &SampleSet) -> Vec<(String, f64)> {
    let explainer = TreeExplainer::new(model);
    let shap = explainer.shap_values(&set.features);
    let mut out = Vec::new();
    for (f, name) in set.feature_names.iter().enumerate() {
        if !name.starts_with("pro_") {
            continue;
        }
        let curve = dependence_curve(&set.features, &shap, f);
        if let Some(t) = sign_change_threshold(&curve) {
            out.push((name.clone(), t));
        }
    }
    out
}

/// Global importance ranking (mean |SHAP|) with feature names attached.
pub fn global_ranking(model: &Booster, set: &SampleSet, top_k: usize) -> Vec<(String, f64)> {
    let explainer = TreeExplainer::new(model);
    let summary = GlobalSummary::compute(&explainer, &set.features);
    summary.top_k(top_k).into_iter().map(|(f, v)| (set.feature_names[f].clone(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::experiment::fit_final_model;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

    fn setup() -> (SampleSet, Booster) {
        let data = generate(&CohortConfig::small(42));
        let cfg = ExperimentConfig::fast();
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
        let model = fit_final_model(&set, &cfg);
        (set, model)
    }

    #[test]
    fn local_report_has_k_named_attributions() {
        let (set, model) = setup();
        let report = explain_row(&model, &set, 0, 5);
        assert_eq!(report.top.len(), 5);
        assert_eq!(report.patient, set.meta[0].patient.0);
        // Sorted by |SHAP| descending.
        for w in report.top.windows(2) {
            assert!(w[0].shap.abs() >= w[1].shap.abs());
        }
        // Names resolve to real features.
        for a in &report.top {
            assert!(set.feature_names.contains(&a.feature));
        }
    }

    #[test]
    fn contrast_pair_has_same_prediction_different_driver() {
        let (set, model) = setup();
        let pair = find_contrast_pair(&model, &set, 0.5, 5);
        let (a, b) = pair.expect("a contrast pair should exist in a real cohort");
        assert_ne!(a.patient, b.patient);
        assert!((a.prediction - b.prediction).abs() <= 0.5);
        assert_ne!(a.top[0].feature, b.top[0].feature);
    }

    #[test]
    fn dependence_report_produces_points() {
        let (set, model) = setup();
        let report = dependence_report(&model, &set, "pro_locomotion_walk_distance");
        assert!(!report.points.is_empty());
        // Points sorted by feature value.
        for w in report.points.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn global_ranking_names_features() {
        let (set, model) = setup();
        let ranking = global_ranking(&model, &set, 10);
        assert_eq!(ranking.len(), 10);
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn population_thresholds_are_within_likert_range() {
        let (set, model) = setup();
        let thresholds = population_thresholds(&model, &set);
        assert!(!thresholds.is_empty(), "some PRO item should show a threshold");
        for (name, t) in &thresholds {
            assert!(name.starts_with("pro_"));
            assert!((1.0..=5.0).contains(t), "{name}: threshold {t} outside Likert range");
        }
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn unknown_feature_panics() {
        let (set, model) = setup();
        dependence_report(&model, &set, "not_a_feature");
    }
}
