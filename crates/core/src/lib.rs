//! # msaw-core
//!
//! The paper's learning framework (its Fig. 3), assembled from the
//! substrate crates:
//!
//! * [`config`] — experiment configuration: the gradient-boosting
//!   hyper-parameters per outcome, split sizes, CV folds, seeds;
//! * [`experiment`] — train-and-evaluate for a single `(outcome,
//!   approach, ±FI)` variant: 80/20 split, K-fold CV on the training
//!   side, held-out test metrics (1-MAPE for QoL/SPPB, the full
//!   per-class classification report for Falls);
//! * [`grid`] — the full 12-model grid (3 outcomes × DD/KD × ±FI) that
//!   regenerates Fig. 4, with per-clinic stratification for Table 1;
//! * [`grid_chunked`] — the same grid sharded out of core: every fit
//!   streamed through spillable bin-coded matrices, bit-identical to
//!   the in-memory grid under `canonical_row_order`;
//! * [`oof`] — out-of-fold predictions over an entire sample set, used
//!   for the per-patient MAE distributions of Fig. 5;
//! * [`interpret`] — SHAP-based reports: per-patient top-k local
//!   explanations and contrast pairs (Fig. 6), global dependence curves
//!   with data-driven thresholds (Fig. 7);
//! * [`registry`] — persisted-model registry keyed by (outcome,
//!   variant, cohort fingerprint), with atomic publish and verified
//!   load of the v2 prediction-bundle artifacts;
//! * [`scale`] — the population-scale streaming pipeline: cohorts
//!   generated and featurized chunk by chunk, binned into fixed-size
//!   row blocks (optionally spilled to disk), and trained out of core —
//!   bit-identical to the in-memory histogram fit.
//!
//! ```no_run
//! use msaw_cohort::{generate, CohortConfig};
//! use msaw_core::{config::ExperimentConfig, grid};
//!
//! let data = generate(&CohortConfig::paper(42));
//! let results = grid::run_full_grid(&data, &ExperimentConfig::default());
//! for r in &results {
//!     println!("{}", r.summary_line());
//! }
//! ```

pub mod config;
pub mod error;
pub mod experiment;
pub mod grid;
pub mod grid_chunked;
pub mod interpret;
pub mod oof;
pub mod registry;
pub mod scale;

pub use config::ExperimentConfig;
pub use error::PipelineError;
pub use experiment::{run_variant, try_run_variant, Approach, RegressionScores, VariantResult};
pub use grid::{
    run_full_grid, run_grid_for_samples, try_run_clinic_grids, try_run_full_grid,
    try_run_full_grid_on,
};
pub use grid_chunked::{try_run_full_grid_chunked, ChunkedGridConfig, ChunkedGridReport};
pub use oof::{oof_predictions, try_oof_predictions};
pub use registry::{cohort_fingerprint, ModelKey, ModelRegistry, PruneReport, RegistryError};
pub use scale::{peak_rss_mb, run_scale, ScaleConfig, ScaleReport};
