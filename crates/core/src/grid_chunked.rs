//! The 12-model grid, sharded out of core: every `(outcome, variant)`
//! fit of [`crate::grid::try_run_full_grid`] driven through the
//! chunked trainer over spillable bin-coded matrices, so the grid runs
//! on cohorts whose feature matrices never fit in RAM.
//!
//! The pipeline mirrors [`crate::scale::run_scale`]'s pass structure,
//! widened to the grid's four feature representations:
//!
//! 1. **Sketch** — patient chunks are generated and featurized across
//!    workers; each worker sketches the *extended* 60-column row
//!    (the 59 DD features plus the window-baseline FI) and the
//!    2-column KD row (`[ici, fi]`), and collects the three outcomes'
//!    labels plus per-row patient ids. Merging in chunk order keeps
//!    every artifact worker-count invariant.
//! 2. **Encode** — chunks are regenerated and bin-encoded against the
//!    shared cut tables into two [`ChunkedMatrix`]es (optionally
//!    spilled): the 60-column DD⁺FI matrix and the 2-column KD⁺FI
//!    matrix. The four variants are *column views* of these two —
//!    DD is columns `0..59`, KD is column `0` — so each distinct
//!    column is sketched and encoded exactly once, the out-of-core
//!    mirror of the in-memory grid's [`msaw_gbdt::ContextCache`].
//! 3. **Fit** — the ~72 fold/final fits are fanned across one bounded
//!    worker pool, each training via [`train_chunked_on`] on its
//!    ascending row subset and scoring via [`predict_rows_chunked`],
//!    through the same split/fold/scoring code paths as the in-memory
//!    experiment layer.
//!
//! Under `canonical_row_order` (which this path requires) and an exact
//! cut sketch, the twelve [`VariantResult`]s are bit-identical to
//! [`crate::grid::try_run_full_grid_on`] on the materialised cohort —
//! pinned by the tests below.

use crate::config::ExperimentConfig;
use crate::error::PipelineError;
use crate::experiment::{
    balanced_params, final_output_from_preds, primary_metric_from_preds, split_plan, Approach,
    FitJob, FitOutput, SplitPlan, VariantResult,
};
use msaw_cohort::stream::CohortStream;
use msaw_cohort::CohortConfig;
use msaw_gbdt::{
    encode_rows, predict_rows_chunked, train_chunked_on, ChunkError, ChunkedMatrix,
    ChunkedMatrixBuilder, ChunkedView, CutSketch, TreeMethod, TreeScratch, DEFAULT_BLOCK_ROWS,
    DEFAULT_SKETCH_DISTINCT,
};
use msaw_kd::{compute_ici_row, default_ici_spec, frailty_index, IciVariable};
use msaw_parallel::{try_run_waves_on, WaveError};
use msaw_preprocess::{label_of, patient_samples, FeaturePanel, OutcomeKind, PipelineConfig};
use std::path::PathBuf;

/// Configuration of a sharded chunked grid run.
#[derive(Debug, Clone)]
pub struct ChunkedGridConfig {
    /// The experiment protocol. Must be stream-compatible: histogram
    /// tree method (same `max_bins` for both parameter sets), no
    /// row/column subsampling, and `canonical_row_order` set.
    pub experiment: ExperimentConfig,
    /// Patients generated/featurized per work unit.
    pub chunk_patients: usize,
    /// Rows per binned block of the chunked matrices.
    pub block_rows: usize,
    /// Per-feature distinct-value capacity of the cut sketches.
    pub sketch_capacity: usize,
    /// Spill directory for the two bin-coded matrices (`grid_dd_fi.mscb`
    /// and `grid_kd_fi.mscb`); `None` keeps both in memory. Spilled
    /// files are left on disk for the caller to inspect or remove.
    pub spill_dir: Option<PathBuf>,
    /// Worker count for every stage; `0` means the default.
    pub workers: usize,
}

impl ChunkedGridConfig {
    /// A config with the default chunking knobs around `experiment`.
    pub fn new(experiment: ExperimentConfig) -> ChunkedGridConfig {
        ChunkedGridConfig {
            experiment,
            chunk_patients: 512,
            block_rows: DEFAULT_BLOCK_ROWS,
            sketch_capacity: DEFAULT_SKETCH_DISTINCT,
            spill_dir: None,
            workers: 0,
        }
    }
}

/// What a sharded grid run produced, beyond the twelve results.
#[derive(Debug, Clone)]
pub struct ChunkedGridReport {
    /// The grid results in canonical order: for each outcome of
    /// [`OutcomeKind::ALL`], the KD, KD+FI, DD, DD+FI variants.
    pub results: Vec<VariantResult>,
    /// Samples in the cohort (shared by every outcome).
    pub n_rows: usize,
    /// Whether the bin-coded matrices were spilled to disk.
    pub spilled: bool,
    /// Whether every cut sketch stayed exact — the regime where the
    /// chunked grid is bit-identical to the in-memory one.
    pub sketch_exact: bool,
}

/// One patient chunk's extended rows: the 60-column DD⁺FI row-major
/// slab, the 2-column KD⁺FI slab, per-outcome labels and patient ids.
struct ExtBlock {
    rows_dd: Vec<f64>,
    rows_kd: Vec<f64>,
    labels: [Vec<f64>; 3],
    patients: Vec<u64>,
}

/// Generate and featurize patients `start..end` into extended rows.
/// Mirrors [`crate::grid::build_variant_sets`] row for row: the DD
/// features from [`patient_samples`], the window-baseline FI from the
/// record's own month-0/month-9 assessment ([`frailty_index`]), the
/// ICI from [`compute_ici_row`] over the DD row (missing → NaN, as
/// [`msaw_kd::ici_sample_set`] encodes it), and one label per outcome
/// read off the window's outcome visit.
fn extended_block(
    cohort: &CohortConfig,
    pipeline: &PipelineConfig,
    spec: &[IciVariable],
    positions: &[Option<usize>],
    start: u32,
    end: u32,
) -> ExtBlock {
    let mut out = ExtBlock {
        rows_dd: Vec::new(),
        rows_kd: Vec::new(),
        labels: [Vec::new(), Vec::new(), Vec::new()],
        patients: Vec::new(),
    };
    for record in CohortStream::range(cohort, start, end) {
        let part = patient_samples(&record, OutcomeKind::ALL[0], pipeline);
        for i in 0..part.n_rows() {
            let row = part.row(i);
            let meta = &part.meta[i];
            // The FI of the visit that opens the sample's window —
            // month 0 for window 1, month 9 for window 2 — exactly
            // `fi_at_window_start` read off the streamed record.
            let fi_month = if meta.window == 1 { 0 } else { 9 };
            let assessment = record
                .clinical
                .iter()
                .find(|a| a.month == fi_month)
                .expect("every generated patient is assessed at months 0 and 9");
            let fi = frailty_index(&assessment.deficits);
            let ici = compute_ici_row(row, positions, spec).unwrap_or(f64::NAN);
            out.rows_dd.extend_from_slice(row);
            out.rows_dd.push(fi);
            out.rows_kd.push(ici);
            out.rows_kd.push(fi);
            let visit_month = 9 * meta.window as usize;
            let visit = record
                .outcomes
                .iter()
                .find(|o| o.month == visit_month)
                .expect("a window only emits samples when its outcome visit exists");
            for (k, &outcome) in OutcomeKind::ALL.iter().enumerate() {
                out.labels[k].push(label_of(visit, outcome));
            }
            debug_assert_eq!(
                out.labels[0].last().copied().map(f64::to_bits),
                part.labels.get(i).copied().map(f64::to_bits),
                "recomputed label must match the emitted one"
            );
            out.patients.push(meta.patient.0 as u64);
        }
    }
    out
}

/// Check the protocol is stream-compatible and return the shared
/// histogram resolution.
fn validate_config(cfg: &ChunkedGridConfig) -> Result<u16, PipelineError> {
    let invalid = |message: String| PipelineError::Chunk { message };
    if !cfg.experiment.canonical_row_order {
        return Err(invalid(
            "the chunked grid streams rows in ascending order; set canonical_row_order".into(),
        ));
    }
    let mut bins = None;
    for params in [&cfg.experiment.regression_params, &cfg.experiment.classification_params] {
        let TreeMethod::Hist { max_bins } = params.tree_method else {
            return Err(invalid("the chunked grid requires TreeMethod::Hist".into()));
        };
        if let Some(prev) = bins {
            if prev != max_bins {
                return Err(invalid(format!(
                    "the chunked grid shares one cut table; max_bins differ ({prev} vs {max_bins})"
                )));
            }
        }
        bins = Some(max_bins);
        if params.subsample < 1.0 || params.colsample_bytree < 1.0 {
            return Err(invalid("the chunked grid requires subsample and colsample == 1.0".into()));
        }
    }
    Ok(bins.expect("two parameter sets were checked"))
}

/// Run the full 12-model grid out of core over a streamed cohort. See
/// the module docs for the pass structure; results are bit-identical
/// to [`crate::grid::try_run_full_grid_on`] on the materialised cohort
/// while the cut sketches stay exact.
pub fn try_run_full_grid_chunked(
    cohort: &CohortConfig,
    cfg: &ChunkedGridConfig,
) -> Result<ChunkedGridReport, PipelineError> {
    let max_bins = validate_config(cfg)?;
    let exp = &cfg.experiment;
    let n_features = FeaturePanel::feature_names().len();
    let dd_cols = n_features + 1;
    let spec = default_ici_spec();
    let names = FeaturePanel::feature_names();
    let positions: Vec<Option<usize>> =
        spec.iter().map(|v| names.iter().position(|n| n == &v.feature)).collect();

    let n_patients = cohort.total_patients();
    let chunk_patients = cfg.chunk_patients.max(1);
    let n_chunks = n_patients.div_ceil(chunk_patients);
    let stream_workers =
        if cfg.workers == 0 { msaw_parallel::default_workers(n_chunks) } else { cfg.workers };
    let wave = stream_workers * 2;
    let chunk_range = |c: usize| {
        let start = (c * chunk_patients) as u32;
        (start, ((c + 1) * chunk_patients).min(n_patients) as u32)
    };
    let wave_err = |e: WaveError<ChunkError>| -> PipelineError {
        match e {
            WaveError::Pool(p) => p.into(),
            WaveError::Consume(c) => c.into(),
        }
    };

    // Pass 1: sketch both representations, collect labels and patient
    // ids. Per-worker sketches merge in chunk order (order-independent
    // while exact; the merge tracks thinning past capacity).
    let mut sketch_dd = CutSketch::with_capacity(dd_cols, cfg.sketch_capacity);
    let mut sketch_kd = CutSketch::with_capacity(2, cfg.sketch_capacity);
    let mut labels: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut patients: Vec<u64> = Vec::new();
    try_run_waves_on(
        stream_workers,
        n_chunks,
        wave,
        |c| {
            let (start, end) = chunk_range(c);
            let block = extended_block(cohort, &exp.pipeline, &spec, &positions, start, end);
            let mut s_dd = CutSketch::with_capacity(dd_cols, cfg.sketch_capacity);
            s_dd.update(&block.rows_dd);
            let mut s_kd = CutSketch::with_capacity(2, cfg.sketch_capacity);
            s_kd.update(&block.rows_kd);
            (s_dd, s_kd, block.labels, block.patients)
        },
        |_, (s_dd, s_kd, chunk_labels, chunk_patients)| {
            sketch_dd.merge(&s_dd);
            sketch_kd.merge(&s_kd);
            for (all, part) in labels.iter_mut().zip(chunk_labels) {
                all.extend(part);
            }
            patients.extend(chunk_patients);
            Ok::<(), ChunkError>(())
        },
    )
    .map_err(wave_err)?;
    let n_rows = labels[0].len();
    if n_rows == 0 {
        return Err(PipelineError::EmptySampleSet);
    }
    let sketch_exact = sketch_dd.is_exact() && sketch_kd.is_exact();
    let cuts_dd = sketch_dd.cuts(max_bins);
    let cuts_kd = sketch_kd.cuts(max_bins);

    // Pass 2: regenerate and bin-encode both matrices, appending code
    // slabs in chunk order so the sealed matrices (and any spilled
    // `.mscb` files) are byte-identical at every worker count.
    let mut builder_dd = match &cfg.spill_dir {
        Some(dir) => ChunkedMatrixBuilder::spilled(
            cuts_dd.clone(),
            cfg.block_rows,
            &dir.join("grid_dd_fi.mscb"),
        )?,
        None => ChunkedMatrixBuilder::in_memory(cuts_dd.clone(), cfg.block_rows),
    };
    let mut builder_kd = match &cfg.spill_dir {
        Some(dir) => ChunkedMatrixBuilder::spilled(
            cuts_kd.clone(),
            cfg.block_rows,
            &dir.join("grid_kd_fi.mscb"),
        )?,
        None => ChunkedMatrixBuilder::in_memory(cuts_kd.clone(), cfg.block_rows),
    };
    try_run_waves_on(
        stream_workers,
        n_chunks,
        wave,
        |c| {
            let (start, end) = chunk_range(c);
            let block = extended_block(cohort, &exp.pipeline, &spec, &positions, start, end);
            (encode_rows(&cuts_dd, &block.rows_dd), encode_rows(&cuts_kd, &block.rows_kd))
        },
        |_, (codes_dd, codes_kd)| {
            builder_dd.push_encoded(&codes_dd)?;
            builder_kd.push_encoded(&codes_kd)
        },
    )
    .map_err(wave_err)?;
    let matrix_dd: ChunkedMatrix = builder_dd.finish()?;
    let matrix_kd: ChunkedMatrix = builder_kd.finish()?;
    let spilled = matrix_dd.is_spilled();

    // Freeze one split plan per outcome — identical across that
    // outcome's four variants, exactly as the in-memory grid's four
    // plans agree when rows and labels agree.
    let groups = exp.split_by_patient.then_some(patients.as_slice());
    let plans: Vec<SplitPlan> = OutcomeKind::ALL
        .iter()
        .enumerate()
        .map(|(k, &outcome)| {
            split_plan(n_rows, &labels[k], outcome.is_classification(), groups, exp)
        })
        .collect();

    // The twelve variants in canonical order, each a column view of
    // one of the two sealed matrices.
    struct Variant<'m> {
        outcome: OutcomeKind,
        outcome_idx: usize,
        approach: Approach,
        with_fi: bool,
        view: ChunkedView<'m>,
    }
    let mut variants: Vec<Variant<'_>> = Vec::with_capacity(12);
    for (k, &outcome) in OutcomeKind::ALL.iter().enumerate() {
        let spec: [(Approach, bool, ChunkedView<'_>); 4] = [
            (Approach::KnowledgeDriven, false, matrix_kd.col_view(0..1)),
            (Approach::KnowledgeDriven, true, matrix_kd.view()),
            (Approach::DataDriven, false, matrix_dd.col_view(0..n_features)),
            (Approach::DataDriven, true, matrix_dd.view()),
        ];
        for (approach, with_fi, view) in spec {
            variants.push(Variant { outcome, outcome_idx: k, approach, with_fi, view });
        }
    }

    // Fan the fold/final fits across the pool: per-worker scratch, one
    // chunked fit per job on its ascending row subset, scored through
    // the shared experiment-layer helpers.
    let jobs: Vec<(usize, FitJob)> = variants
        .iter()
        .enumerate()
        .flat_map(|(v, var)| {
            let folds = plans[var.outcome_idx].folds.len();
            (0..folds).map(FitJob::Fold).chain(std::iter::once(FitJob::Final)).map(move |j| (v, j))
        })
        .collect();
    let fit_workers =
        if cfg.workers == 0 { msaw_parallel::default_workers(jobs.len()) } else { cfg.workers };
    let results = msaw_parallel::try_run_scratch_on(
        fit_workers,
        jobs.len(),
        TreeScratch::new,
        |scratch, i| {
            let (v, job) = jobs[i];
            let var = &variants[v];
            let plan = &plans[var.outcome_idx];
            let outcome_labels = &labels[var.outcome_idx];
            let (fit_list, eval_list): (&[usize], &[usize]) = match job {
                FitJob::Fold(f) => (&plan.folds[f].0, &plan.folds[f].1),
                FitJob::Final => (&plan.train_rows, &plan.test_rows),
            };
            let y: Vec<f64> = fit_list.iter().map(|&r| outcome_labels[r]).collect();
            let base = exp.params_for(var.outcome);
            let params = if var.outcome.is_classification() && exp.auto_balance_falls {
                balanced_params(base, &y)
            } else {
                base.clone()
            };
            let fit_rows: Vec<u32> = fit_list.iter().map(|&r| r as u32).collect();
            // One worker per fit: parallelism lives in the job pool,
            // mirroring the in-memory grid's single-worker predict.
            let report = train_chunked_on(&params, var.view, Some(&fit_rows), &y, 1, scratch)?;
            let eval_rows: Vec<u32> = eval_list.iter().map(|&r| r as u32).collect();
            let mut bufs = Vec::new();
            let preds = predict_rows_chunked(&report.booster, var.view, &eval_rows, &mut bufs)?;
            let y_eval: Vec<f64> = eval_list.iter().map(|&r| outcome_labels[r]).collect();
            let is_cls = var.outcome.is_classification();
            Ok::<FitOutput, ChunkError>(match job {
                FitJob::Fold(_) => FitOutput::CvScore(primary_metric_from_preds(
                    is_cls,
                    &y_eval,
                    &preds,
                    exp.decision_threshold,
                )),
                FitJob::Final => {
                    final_output_from_preds(is_cls, &y_eval, &preds, exp.decision_threshold)
                }
            })
        },
    )?;

    // Reassemble in canonical order; the lowest failing job index wins
    // deterministically, matching the in-memory grid's error contract.
    let mut outputs: Vec<Vec<FitOutput>> = variants.iter().map(|_| Vec::new()).collect();
    for (i, (&(v, _), result)) in jobs.iter().zip(results).enumerate() {
        match result {
            Ok(out) => outputs[v].push(out),
            Err(ChunkError::Train(source)) => {
                return Err(PipelineError::Train { job: Some(i), source })
            }
            Err(other) => return Err(other.into()),
        }
    }
    let results: Vec<VariantResult> = variants
        .iter()
        .zip(outputs)
        .map(|(var, outs)| {
            let plan = &plans[var.outcome_idx];
            let mut cv_scores = Vec::with_capacity(plan.folds.len());
            let mut regression = None;
            let mut classification = None;
            for out in outs {
                match out {
                    FitOutput::CvScore(s) => cv_scores.push(s),
                    FitOutput::Final { regression: r, classification: c } => {
                        regression = r;
                        classification = c;
                    }
                }
            }
            assert_eq!(cv_scores.len(), plan.folds.len(), "one CV score per fold");
            VariantResult {
                outcome: var.outcome,
                approach: var.approach,
                with_fi: var.with_fi,
                regression,
                classification,
                cv_scores,
                n_train: plan.train_rows.len(),
                n_test: plan.test_rows.len(),
            }
        })
        .collect();

    Ok(ChunkedGridReport { results, n_rows, spilled, sketch_exact })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::try_run_full_grid_on;
    use msaw_cohort::generate;

    /// A stream-compatible protocol both grid paths accept: histogram
    /// method, no subsampling, canonical row order.
    fn stream_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::fast();
        for params in [&mut cfg.regression_params, &mut cfg.classification_params] {
            params.n_estimators = 24;
            params.tree_method = TreeMethod::Hist { max_bins: 16 };
            params.subsample = 1.0;
            params.colsample_bytree = 1.0;
        }
        cfg.canonical_row_order = true;
        cfg.auto_balance_falls = true;
        cfg
    }

    fn assert_results_identical(a: &[VariantResult], b: &[VariantResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            let tag = format!("{} {} fi={}", x.outcome.name(), x.approach.label(), x.with_fi);
            assert_eq!(x.outcome, y.outcome, "{tag}");
            assert_eq!(x.approach, y.approach, "{tag}");
            assert_eq!(x.with_fi, y.with_fi, "{tag}");
            assert_eq!(x.regression, y.regression, "{tag}");
            assert_eq!(x.classification, y.classification, "{tag}");
            assert_eq!(x.cv_scores, y.cv_scores, "{tag}");
            assert_eq!(x.n_train, y.n_train, "{tag}");
            assert_eq!(x.n_test, y.n_test, "{tag}");
        }
    }

    #[test]
    fn chunked_grid_matches_in_memory_grid_bit_for_bit() {
        let cohort = CohortConfig::small(42);
        let exp = stream_cfg();
        let data = generate(&cohort);
        let reference = try_run_full_grid_on(1, &data, &exp).unwrap();

        let mut cfg = ChunkedGridConfig::new(exp);
        cfg.chunk_patients = 7;
        cfg.block_rows = 128;
        let report = try_run_full_grid_chunked(&cohort, &cfg).unwrap();
        assert!(report.sketch_exact, "the seed cohort must stay in the exact-sketch regime");
        assert!(!report.spilled);
        assert_eq!(report.n_rows, data_rows(&cohort, &cfg.experiment));
        assert_results_identical(&report.results, &reference);
    }

    /// Row count of the materialised sample set, for cross-checking.
    fn data_rows(cohort: &CohortConfig, exp: &ExperimentConfig) -> usize {
        let data = generate(cohort);
        let panel = FeaturePanel::build(&data, &exp.pipeline);
        msaw_preprocess::build_samples(&data, &panel, OutcomeKind::ALL[0], &exp.pipeline).len()
    }

    #[test]
    fn spilled_grid_equals_the_in_memory_store_at_any_worker_count() {
        let cohort = CohortConfig::small(7);
        let mut exp = stream_cfg();
        for params in [&mut exp.regression_params, &mut exp.classification_params] {
            params.n_estimators = 8;
        }
        let mut cfg = ChunkedGridConfig::new(exp);
        cfg.chunk_patients = 5;
        cfg.block_rows = 64;
        cfg.workers = 1;
        let reference = try_run_full_grid_chunked(&cohort, &cfg).unwrap();
        assert!(!reference.spilled);

        let dir = std::env::temp_dir().join(format!("msaw_grid_spill_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for workers in [1usize, 2, 8] {
            let mut spill_cfg = cfg.clone();
            spill_cfg.spill_dir = Some(dir.clone());
            spill_cfg.workers = workers;
            let spilled = try_run_full_grid_chunked(&cohort, &spill_cfg).unwrap();
            assert!(spilled.spilled, "workers={workers}");
            assert_results_identical(&spilled.results, &reference.results);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_incompatible_protocols_are_rejected() {
        let cohort = CohortConfig::small(42);
        // Missing canonical order.
        let mut exp = stream_cfg();
        exp.canonical_row_order = false;
        let err = try_run_full_grid_chunked(&cohort, &ChunkedGridConfig::new(exp)).unwrap_err();
        assert!(err.to_string().contains("canonical_row_order"), "{err}");
        // Exact tree method.
        let mut exp = stream_cfg();
        exp.regression_params.tree_method = TreeMethod::Exact;
        let err = try_run_full_grid_chunked(&cohort, &ChunkedGridConfig::new(exp)).unwrap_err();
        assert!(err.to_string().contains("Hist"), "{err}");
        // Mismatched histogram resolutions.
        let mut exp = stream_cfg();
        exp.classification_params.tree_method = TreeMethod::Hist { max_bins: 32 };
        let err = try_run_full_grid_chunked(&cohort, &ChunkedGridConfig::new(exp)).unwrap_err();
        assert!(err.to_string().contains("max_bins"), "{err}");
        // Row subsampling.
        let mut exp = stream_cfg();
        exp.regression_params.subsample = 0.9;
        let err = try_run_full_grid_chunked(&cohort, &ChunkedGridConfig::new(exp)).unwrap_err();
        assert!(err.to_string().contains("subsample"), "{err}");
    }

    #[test]
    fn default_config_knobs_are_sane() {
        let cfg = ChunkedGridConfig::new(ExperimentConfig::fast());
        assert!(cfg.chunk_patients > 0);
        assert_eq!(cfg.block_rows, DEFAULT_BLOCK_ROWS);
        assert_eq!(cfg.sketch_capacity, DEFAULT_SKETCH_DISTINCT);
        assert!(cfg.spill_dir.is_none());
    }
}
