//! One variant = one trained and evaluated model: an outcome, an
//! approach (DD or KD), and whether the baseline FI is included.

use crate::config::ExperimentConfig;
use crate::error::PipelineError;
use msaw_gbdt::{
    Booster, ContextCache, Objective, Params, TrainError, TrainingContext, TreeMethod, TreeScratch,
};
use msaw_metrics::{
    group_train_test_split, kfold, stratified_kfold, train_test_split, ConfusionMatrix,
};
use msaw_metrics::{mae, one_minus_mape};
use msaw_preprocess::{OutcomeKind, SampleSet};
use serde::{Deserialize, Serialize};

/// DD vs KD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Data-driven: the full 59-feature (60 with FI) representation.
    DataDriven,
    /// Knowledge-driven: the expert's ICI scalar (plus FI when enabled).
    KnowledgeDriven,
}

impl Approach {
    /// Short label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Approach::DataDriven => "DD",
            Approach::KnowledgeDriven => "KD",
        }
    }
}

/// Regression metrics on the held-out test set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionScores {
    /// The paper's headline score, `1 - MAPE`.
    pub one_minus_mape: f64,
    /// Mean absolute error.
    pub mae: f64,
}

/// The evaluated result of one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantResult {
    /// Which outcome was predicted.
    pub outcome: OutcomeKind,
    /// DD or KD.
    pub approach: Approach,
    /// Whether the window-baseline FI was a feature.
    pub with_fi: bool,
    /// Test-set regression scores (QoL, SPPB).
    pub regression: Option<RegressionScores>,
    /// Test-set classification report (Falls).
    pub classification: Option<msaw_metrics::BinaryReport>,
    /// Primary metric per CV fold on the training side (1-MAPE or
    /// accuracy), in fold order.
    pub cv_scores: Vec<f64>,
    /// Training rows.
    pub n_train: usize,
    /// Test rows.
    pub n_test: usize,
}

impl VariantResult {
    /// The primary test metric: 1-MAPE for regression, accuracy for
    /// classification.
    pub fn primary_metric(&self) -> f64 {
        if let Some(r) = &self.regression {
            r.one_minus_mape
        } else if let Some(c) = &self.classification {
            c.accuracy
        } else {
            f64::NAN
        }
    }

    /// Mean of the CV fold scores.
    pub fn cv_mean(&self) -> f64 {
        if self.cv_scores.is_empty() {
            return f64::NAN;
        }
        self.cv_scores.iter().sum::<f64>() / self.cv_scores.len() as f64
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        let fi = if self.with_fi { "w/ FI " } else { "w/o FI" };
        match (&self.regression, &self.classification) {
            (Some(r), _) => format!(
                "{:<5} {} {}  1-MAPE {:5.1}%  MAE {:.4}  (cv {:5.1}%, {} train / {} test)",
                self.outcome.name(),
                self.approach.label(),
                fi,
                100.0 * r.one_minus_mape,
                r.mae,
                100.0 * self.cv_mean(),
                self.n_train,
                self.n_test
            ),
            (_, Some(c)) => format!(
                "{:<5} {} {}  Acc {:5.1}%  P(T) {:5.1}%  P(F) {:5.1}%  R(T) {:5.1}%  R(F) {:5.1}%  F1(T) {:5.1}%  F1(F) {:5.1}%",
                self.outcome.name(),
                self.approach.label(),
                fi,
                100.0 * c.accuracy,
                100.0 * c.precision_true,
                100.0 * c.precision_false,
                100.0 * c.recall_true,
                100.0 * c.recall_false,
                100.0 * c.f1_true,
                100.0 * c.f1_false
            ),
            _ => format!("{} {} {fi}: no scores", self.outcome.name(), self.approach.label()),
        }
    }
}

/// Tune `scale_pos_weight` to the training split's class imbalance,
/// XGBoost's standard `sum(neg)/sum(pos)` recipe. Shared with the
/// sharded chunked grid, whose fits must reweight identically.
pub(crate) fn balanced_params(base: &Params, labels: &[f64]) -> Params {
    let pos = labels.iter().filter(|&&l| l == 1.0).count().max(1);
    let neg = labels.len() - labels.iter().filter(|&&l| l == 1.0).count();
    Params {
        objective: Objective::Logistic { scale_pos_weight: neg.max(1) as f64 / pos as f64 },
        ..base.clone()
    }
}

/// Train on a row view of `set` through its shared context — no row
/// copying, no re-binning — reusing `scratch`'s training arenas across
/// calls. `auto_balance` switches on the class-weight recipe; the
/// paper's models did not reweight (which is exactly why its KD Falls
/// model without FI collapses to the majority class).
fn fit_rows(
    set: &SampleSet,
    ctx: &TrainingContext<'_>,
    rows: &[usize],
    params: &Params,
    auto_balance: bool,
    scratch: &mut TreeScratch,
) -> Result<Booster, TrainError> {
    let y: Vec<f64> = rows.iter().map(|&i| set.labels[i]).collect();
    let params = if set.outcome.is_classification() && auto_balance {
        balanced_params(params, &y)
    } else {
        params.clone()
    };
    Booster::train_on_rows_with(&params, ctx, rows, &y, scratch)
}

/// Predict a row view through the flat engine — no materialised
/// sub-matrix. Runs on one worker: fit jobs already execute inside the
/// grid's pool, and nesting thread fan-out there would oversubscribe.
fn predict_rows(model: &Booster, set: &SampleSet, rows: &[usize]) -> Vec<f64> {
    model.flat_forest().predict_rows_on(1, &set.features, rows)
}

/// The primary metric of predictions against their labels: accuracy at
/// the decision threshold for classification, `1 - MAPE` otherwise.
/// Shared with the chunked grid so both paths score identically.
pub(crate) fn primary_metric_from_preds(
    is_classification: bool,
    y: &[f64],
    preds: &[f64],
    threshold: f64,
) -> f64 {
    if is_classification {
        let labels: Vec<bool> = y.iter().map(|&l| l == 1.0).collect();
        ConfusionMatrix::from_probabilities(&labels, preds, threshold).accuracy()
    } else {
        one_minus_mape(y, preds)
    }
}

/// The final test-set evaluation of predictions against their labels —
/// the [`FitOutput::Final`] both grid paths assemble.
pub(crate) fn final_output_from_preds(
    is_classification: bool,
    y_test: &[f64],
    preds: &[f64],
    threshold: f64,
) -> FitOutput {
    if is_classification {
        let labels: Vec<bool> = y_test.iter().map(|&l| l == 1.0).collect();
        let cm = ConfusionMatrix::from_probabilities(&labels, preds, threshold);
        FitOutput::Final { regression: None, classification: Some(cm.report()) }
    } else {
        FitOutput::Final {
            regression: Some(RegressionScores {
                one_minus_mape: one_minus_mape(y_test, preds),
                mae: mae(y_test, preds),
            }),
            classification: None,
        }
    }
}

/// Score a fitted model on the given rows: the primary metric.
fn score(model: &Booster, set: &SampleSet, rows: &[usize], threshold: f64) -> f64 {
    let y: Vec<f64> = rows.iter().map(|&i| set.labels[i]).collect();
    let preds = predict_rows(model, set, rows);
    primary_metric_from_preds(set.outcome.is_classification(), &y, &preds, threshold)
}

/// The 80/20 split the protocol uses: sample-level (the paper's
/// default) or per-patient grouped when `cfg.split_by_patient` is set.
fn split_train_test(set: &SampleSet, cfg: &ExperimentConfig) -> (Vec<usize>, Vec<usize>) {
    let groups = cfg.split_by_patient.then(|| set.patient_groups());
    split_rows(set.len(), groups.as_deref(), cfg)
}

/// Set-free core of [`split_train_test`]: split `n_rows` samples,
/// grouped by `groups` when given.
fn split_rows(
    n_rows: usize,
    groups: Option<&[u64]>,
    cfg: &ExperimentConfig,
) -> (Vec<usize>, Vec<usize>) {
    match groups {
        Some(g) => group_train_test_split(g, cfg.test_fraction, cfg.seed),
        None => train_test_split(n_rows, cfg.test_fraction, cfg.seed),
    }
}

/// CV folds over the training rows: stratified on the labels for
/// classification outcomes (Falls is imbalanced enough that a plain
/// KFold can hand a fold a lopsided class mix), plain KFold otherwise.
/// Fold indices are positions into `train_rows`. (Production callers
/// go through [`split_plan`]; kept for the stratification tests.)
#[cfg(test)]
fn cv_folds(
    set: &SampleSet,
    train_rows: &[usize],
    cfg: &ExperimentConfig,
) -> Vec<msaw_metrics::Fold> {
    fold_rows(train_rows, &set.labels, set.outcome.is_classification(), cfg)
}

/// Set-free core of [`cv_folds`]: `labels` are full-dataset labels the
/// training rows index into.
fn fold_rows(
    train_rows: &[usize],
    labels: &[f64],
    is_classification: bool,
    cfg: &ExperimentConfig,
) -> Vec<msaw_metrics::Fold> {
    if is_classification {
        let flags: Vec<bool> = train_rows.iter().map(|&i| labels[i] == 1.0).collect();
        stratified_kfold(&flags, cfg.cv_folds, cfg.seed ^ 0x5eed)
    } else {
        kfold(train_rows.len(), cfg.cv_folds, cfg.seed ^ 0x5eed)
    }
}

/// The protocol's frozen row partition for one dataset: the 80/20
/// split plus the CV folds over the training side, all in absolute row
/// indices, exactly as [`plan_with_context`] freezes them into a
/// [`VariantPlan`]. Exposed set-free so the sharded chunked grid —
/// which never materialises a [`SampleSet`] — partitions its rows
/// through the identical code path.
pub(crate) struct SplitPlan {
    /// Training rows of the 80% side.
    pub train_rows: Vec<usize>,
    /// Held-out test rows.
    pub test_rows: Vec<usize>,
    /// Per fold: (training rows, validation rows), absolute indices.
    pub folds: Vec<(Vec<usize>, Vec<usize>)>,
}

/// Compute the protocol's split and folds for `n_rows` samples.
/// Folds are built only when the training side can feed every fold at
/// least two samples. Under `cfg.canonical_row_order` every list is
/// then sorted ascending — same membership, streaming-friendly order.
pub(crate) fn split_plan(
    n_rows: usize,
    labels: &[f64],
    is_classification: bool,
    groups: Option<&[u64]>,
    cfg: &ExperimentConfig,
) -> SplitPlan {
    let (mut train_rows, mut test_rows) = split_rows(n_rows, groups, cfg);
    let mut folds: Vec<(Vec<usize>, Vec<usize>)> = if train_rows.len() >= cfg.cv_folds * 2 {
        fold_rows(&train_rows, labels, is_classification, cfg)
            .into_iter()
            .map(|fold| {
                (
                    fold.train.iter().map(|&i| train_rows[i]).collect(),
                    fold.validation.iter().map(|&i| train_rows[i]).collect(),
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    if cfg.canonical_row_order {
        train_rows.sort_unstable();
        test_rows.sort_unstable();
        for (fold_train, fold_val) in &mut folds {
            fold_train.sort_unstable();
            fold_val.sort_unstable();
        }
    }
    SplitPlan { train_rows, test_rows, folds }
}

/// One variant, prepared for fitting: the sample set's shared training
/// context (matrix indexed and binned exactly once) plus the protocol's
/// 80/20 split and CV folds, all in absolute row indices.
///
/// A plan is immutable and `Sync`: its fit jobs are independent and may
/// run on any thread in any order — [`run_fit_job`] is a pure function
/// of `(plan, job)` — which is what lets [`crate::grid::run_full_grid`]
/// fan the whole grid's jobs across one bounded worker pool.
pub struct VariantPlan<'a> {
    set: &'a SampleSet,
    approach: Approach,
    with_fi: bool,
    ctx: TrainingContext<'a>,
    train_rows: Vec<usize>,
    test_rows: Vec<usize>,
    /// Per fold: (training rows, validation rows), absolute indices.
    folds: Vec<(Vec<usize>, Vec<usize>)>,
}

/// One unit of training work inside a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitJob {
    /// Fit fold `i` on its training rows, score its validation rows.
    Fold(usize),
    /// Fit the final model on the full 80% split, score the held-out 20%.
    Final,
}

/// The result of one [`FitJob`].
#[derive(Debug, Clone)]
pub enum FitOutput {
    /// A fold's primary metric on its validation rows.
    CvScore(f64),
    /// The final model's test-set evaluation.
    Final {
        /// Regression scores (QoL, SPPB).
        regression: Option<RegressionScores>,
        /// Classification report (Falls).
        classification: Option<msaw_metrics::BinaryReport>,
    },
}

/// Prepare one variant: build its shared context (the set's matrix is
/// quantised here, once, on the calling thread) and freeze the
/// protocol's split and folds.
///
/// Panicking wrapper over [`try_plan_variant`] for callers that know
/// their set is non-empty.
pub fn plan_variant<'a>(
    set: &'a SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
) -> VariantPlan<'a> {
    try_plan_variant(set, approach, with_fi, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`plan_variant`]: an empty sample set is a
/// [`PipelineError::EmptySampleSet`] instead of a panic.
pub fn try_plan_variant<'a>(
    set: &'a SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
) -> Result<VariantPlan<'a>, PipelineError> {
    if set.is_empty() {
        return Err(PipelineError::EmptySampleSet);
    }
    // Honour the configured histogram resolution: the context's shared
    // cuts are what every fit of this variant will train against.
    let ctx = match cfg.params_for(set.outcome).tree_method {
        TreeMethod::Hist { max_bins } => TrainingContext::with_max_bins(&set.features, max_bins),
        TreeMethod::Exact => set.training_context(),
    };
    plan_with_context(set, approach, with_fi, cfg, ctx)
}

/// [`try_plan_variant`] through a [`ContextCache`]: column sets shared
/// between variants (DD and DD+FI overlap on 59 of 60 columns, the KD
/// pair on the ICI scalar) are quantised once and reused, both across
/// variants and across callers holding the same cache.
///
/// The returned plan is bit-identical to the uncached one — the cache
/// key is the column's exact byte pattern, and quantisation is a pure
/// function of those bytes.
pub fn try_plan_variant_cached<'a>(
    set: &'a SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
    cache: &mut ContextCache,
) -> Result<VariantPlan<'a>, PipelineError> {
    if set.is_empty() {
        return Err(PipelineError::EmptySampleSet);
    }
    let ctx = match cfg.params_for(set.outcome).tree_method {
        TreeMethod::Hist { max_bins } => cache.context_with_bins(&set.features, max_bins),
        TreeMethod::Exact => cache.context_for(&set.features),
    };
    plan_with_context(set, approach, with_fi, cfg, ctx)
}

/// Shared tail of the plan builders: freeze the protocol's 80/20 split
/// and CV folds around an already-built context.
fn plan_with_context<'a>(
    set: &'a SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
    ctx: TrainingContext<'a>,
) -> Result<VariantPlan<'a>, PipelineError> {
    let groups = cfg.split_by_patient.then(|| set.patient_groups());
    let plan =
        split_plan(set.len(), &set.labels, set.outcome.is_classification(), groups.as_deref(), cfg);
    Ok(VariantPlan {
        set,
        approach,
        with_fi,
        ctx,
        train_rows: plan.train_rows,
        test_rows: plan.test_rows,
        folds: plan.folds,
    })
}

impl VariantPlan<'_> {
    /// The fit jobs of this variant, in canonical order: every CV fold,
    /// then the final model.
    pub fn jobs(&self) -> impl Iterator<Item = FitJob> {
        (0..self.folds.len()).map(FitJob::Fold).chain(std::iter::once(FitJob::Final))
    }
}

/// Execute one fit job against a plan. Pure in `(plan, job, cfg)`:
/// safe to call from any thread, results independent of scheduling.
///
/// Panicking wrapper over [`try_run_fit_job`].
pub fn run_fit_job(plan: &VariantPlan<'_>, job: FitJob, cfg: &ExperimentConfig) -> FitOutput {
    try_run_fit_job(plan, job, cfg)
        .unwrap_or_else(|e| panic!("training failed on valid inputs: {e}"))
}

/// Fallible twin of [`run_fit_job`]: a fit failure (bad labels, bad
/// hyper-parameters) surfaces as a [`TrainError`] instead of a panic.
///
/// Builds a fresh [`TreeScratch`] per call; workers that run many jobs
/// should hold one and call [`try_run_fit_job_with`] instead.
pub fn try_run_fit_job(
    plan: &VariantPlan<'_>,
    job: FitJob,
    cfg: &ExperimentConfig,
) -> Result<FitOutput, TrainError> {
    try_run_fit_job_with(plan, job, cfg, &mut TreeScratch::new())
}

/// [`try_run_fit_job`] against a caller-owned [`TreeScratch`]: the fit
/// reuses the scratch's gradient/partition/histogram arenas instead of
/// allocating fresh ones, which is what makes a worker's Nth fit
/// allocation-free. Results are independent of the scratch's history —
/// the same bit-identity contract as [`Booster::train_on_rows_with`].
pub fn try_run_fit_job_with(
    plan: &VariantPlan<'_>,
    job: FitJob,
    cfg: &ExperimentConfig,
    scratch: &mut TreeScratch,
) -> Result<FitOutput, TrainError> {
    let params = cfg.params_for(plan.set.outcome);
    match job {
        FitJob::Fold(i) => {
            let (fold_train, fold_val) = &plan.folds[i];
            let model =
                fit_rows(plan.set, &plan.ctx, fold_train, params, cfg.auto_balance_falls, scratch)?;
            Ok(FitOutput::CvScore(score(&model, plan.set, fold_val, cfg.decision_threshold)))
        }
        FitJob::Final => {
            let model = fit_rows(
                plan.set,
                &plan.ctx,
                &plan.train_rows,
                params,
                cfg.auto_balance_falls,
                scratch,
            )?;
            let y_test: Vec<f64> = plan.test_rows.iter().map(|&i| plan.set.labels[i]).collect();
            let preds = predict_rows(&model, plan.set, &plan.test_rows);
            Ok(final_output_from_preds(
                plan.set.outcome.is_classification(),
                &y_test,
                &preds,
                cfg.decision_threshold,
            ))
        }
    }
}

/// Assemble a [`VariantResult`] from a plan and its job outputs, which
/// must be in the plan's canonical job order (folds, then final).
pub fn finish_variant(plan: &VariantPlan<'_>, outputs: Vec<FitOutput>) -> VariantResult {
    let mut cv_scores = Vec::with_capacity(plan.folds.len());
    let mut regression = None;
    let mut classification = None;
    for out in outputs {
        match out {
            FitOutput::CvScore(s) => cv_scores.push(s),
            FitOutput::Final { regression: r, classification: c } => {
                regression = r;
                classification = c;
            }
        }
    }
    assert_eq!(cv_scores.len(), plan.folds.len(), "one CV score per fold");
    VariantResult {
        outcome: plan.set.outcome,
        approach: plan.approach,
        with_fi: plan.with_fi,
        regression,
        classification,
        cv_scores,
        n_train: plan.train_rows.len(),
        n_test: plan.test_rows.len(),
    }
}

/// Run the paper's protocol on one prepared sample set: shuffle-split
/// 80/20, K-fold CV on the training side (stratified for Falls), final
/// fit on all training rows, report on the held-out 20%.
///
/// Panicking wrapper over [`try_run_variant`].
pub fn run_variant(
    set: &SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
) -> VariantResult {
    try_run_variant(set, approach, with_fi, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_variant`]: empty sets and fit failures come
/// back as a [`PipelineError`] instead of a panic.
pub fn try_run_variant(
    set: &SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
) -> Result<VariantResult, PipelineError> {
    let plan = try_plan_variant(set, approach, with_fi, cfg)?;
    let mut scratch = TreeScratch::new();
    let outputs: Vec<FitOutput> = plan
        .jobs()
        .map(|job| try_run_fit_job_with(&plan, job, cfg, &mut scratch))
        .collect::<Result<_, _>>()?;
    Ok(finish_variant(&plan, outputs))
}

/// Train a final model on the full 80% training split of a sample set
/// (the model the interpretation experiments explain).
///
/// Panicking wrapper over [`try_fit_final_model`].
pub fn fit_final_model(set: &SampleSet, cfg: &ExperimentConfig) -> Booster {
    try_fit_final_model(set, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`fit_final_model`].
pub fn try_fit_final_model(
    set: &SampleSet,
    cfg: &ExperimentConfig,
) -> Result<Booster, PipelineError> {
    let (train_rows, _) = split_train_test(set, cfg);
    let ctx = set.training_context();
    let params = cfg.params_for(set.outcome);
    let mut scratch = TreeScratch::new();
    Ok(fit_rows(set, &ctx, &train_rows, params, cfg.auto_balance_falls, &mut scratch)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, PipelineConfig};

    fn qol_set() -> SampleSet {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        build_samples(&data, &panel, OutcomeKind::Qol, &cfg)
    }

    fn falls_set() -> SampleSet {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        build_samples(&data, &panel, OutcomeKind::Falls, &cfg)
    }

    #[test]
    fn regression_variant_produces_regression_scores() {
        let set = qol_set();
        let r = run_variant(&set, Approach::DataDriven, false, &ExperimentConfig::fast());
        assert!(r.regression.is_some());
        assert!(r.classification.is_none());
        let scores = r.regression.unwrap();
        assert!((0.0..=1.0).contains(&scores.one_minus_mape));
        assert!(scores.mae >= 0.0);
        assert_eq!(r.n_train + r.n_test, set.len());
        assert_eq!(r.cv_scores.len(), 5);
    }

    #[test]
    fn classification_variant_produces_report() {
        let set = falls_set();
        let r = run_variant(&set, Approach::DataDriven, false, &ExperimentConfig::fast());
        assert!(r.classification.is_some());
        assert!(r.regression.is_none());
        let c = r.classification.unwrap();
        assert!((0.0..=1.0).contains(&c.accuracy));
    }

    #[test]
    fn model_beats_predicting_the_mean() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let r = run_variant(&set, Approach::DataDriven, false, &cfg);
        // Baseline: predict the train mean everywhere.
        let (train_rows, test_rows) = train_test_split(set.len(), cfg.test_fraction, cfg.seed);
        let mean: f64 =
            train_rows.iter().map(|&i| set.labels[i]).sum::<f64>() / train_rows.len() as f64;
        let y: Vec<f64> = test_rows.iter().map(|&i| set.labels[i]).collect();
        let baseline = one_minus_mape(&y, &vec![mean; y.len()]);
        assert!(
            r.regression.unwrap().one_minus_mape > baseline,
            "model {:.3} should beat mean baseline {:.3}",
            r.regression.unwrap().one_minus_mape,
            baseline
        );
    }

    #[test]
    fn results_are_seed_deterministic() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let a = run_variant(&set, Approach::DataDriven, false, &cfg);
        let b = run_variant(&set, Approach::DataDriven, false, &cfg);
        assert_eq!(a.primary_metric(), b.primary_metric());
        assert_eq!(a.cv_scores, b.cv_scores);
    }

    #[test]
    fn summary_lines_mention_the_variant() {
        let set = qol_set();
        let r = run_variant(&set, Approach::KnowledgeDriven, true, &ExperimentConfig::fast());
        let line = r.summary_line();
        assert!(line.contains("QoL") && line.contains("KD") && line.contains("w/ FI"));
    }

    #[test]
    fn balanced_params_matches_imbalance() {
        let base = ExperimentConfig::default().classification_params;
        let labels = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        let p = balanced_params(&base, &labels);
        match p.objective {
            Objective::Logistic { scale_pos_weight } => assert_eq!(scale_pos_weight, 4.0),
            _ => panic!("wrong objective"),
        }
    }

    #[test]
    fn grouped_split_keeps_patients_on_one_side() {
        let set = qol_set();
        let cfg = ExperimentConfig { split_by_patient: true, ..ExperimentConfig::fast() };
        let (train, test) = split_train_test(&set, &cfg);
        assert_eq!(train.len() + test.len(), set.len());
        let train_patients: std::collections::HashSet<u32> =
            train.iter().map(|&i| set.meta[i].patient.0).collect();
        for &i in &test {
            assert!(
                !train_patients.contains(&set.meta[i].patient.0),
                "patient {} leaked across the grouped split",
                set.meta[i].patient.0
            );
        }
        // And the run itself still completes under the grouped protocol.
        let r = run_variant(&set, Approach::DataDriven, false, &cfg);
        assert!(r.primary_metric().is_finite());
    }

    #[test]
    fn sample_split_is_the_default_and_unchanged() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let (train, test) = split_train_test(&set, &cfg);
        let (t2, v2) = train_test_split(set.len(), cfg.test_fraction, cfg.seed);
        assert_eq!(train, t2);
        assert_eq!(test, v2);
    }

    #[test]
    fn canonical_row_order_sorts_without_changing_membership() {
        let set = qol_set();
        let shuffled_cfg = ExperimentConfig::fast();
        let sorted_cfg = ExperimentConfig { canonical_row_order: true, ..ExperimentConfig::fast() };
        let a = split_plan(set.len(), &set.labels, false, None, &shuffled_cfg);
        let b = split_plan(set.len(), &set.labels, false, None, &sorted_cfg);
        let sorted = |v: &[usize]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            s
        };
        // Same membership on every list, ascending order on the
        // canonical side.
        assert_eq!(sorted(&a.train_rows), b.train_rows);
        assert_eq!(sorted(&a.test_rows), b.test_rows);
        assert_ne!(a.train_rows, b.train_rows, "shuffle order should not already be sorted");
        assert_eq!(a.folds.len(), b.folds.len());
        for ((at, av), (bt, bv)) in a.folds.iter().zip(&b.folds) {
            assert_eq!(sorted(at), *bt);
            assert_eq!(sorted(av), *bv);
            assert!(bt.windows(2).all(|w| w[0] < w[1]));
            assert!(bv.windows(2).all(|w| w[0] < w[1]));
        }
        // The protocol still runs end to end under the flag.
        let r = run_variant(&set, Approach::DataDriven, false, &sorted_cfg);
        assert!(r.primary_metric().is_finite());
    }

    #[test]
    fn classification_cv_is_stratified() {
        let set = falls_set();
        let cfg = ExperimentConfig::fast();
        let (train_rows, _) = split_train_test(&set, &cfg);
        let folds = cv_folds(&set, &train_rows, &cfg);
        assert_eq!(folds.len(), cfg.cv_folds);
        let total_pos = train_rows.iter().filter(|&&i| set.labels[i] == 1.0).count();
        let overall = total_pos as f64 / train_rows.len() as f64;
        for fold in &folds {
            let pos = fold.validation.iter().filter(|&&i| set.labels[train_rows[i]] == 1.0).count();
            let rate = pos as f64 / fold.validation.len() as f64;
            // Round-robin dealing keeps every fold within one sample of
            // the overall positive rate.
            assert!(
                (rate - overall).abs() <= 1.5 / fold.validation.len() as f64 + 1e-12,
                "fold positive rate {rate:.3} strays from overall {overall:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_set_is_rejected() {
        let set = qol_set();
        let empty = set.take(&[]);
        run_variant(&empty, Approach::DataDriven, false, &ExperimentConfig::fast());
    }

    #[test]
    fn try_run_variant_types_the_empty_set() {
        let set = qol_set();
        let empty = set.take(&[]);
        let err = try_run_variant(&empty, Approach::DataDriven, false, &ExperimentConfig::fast())
            .unwrap_err();
        assert_eq!(err, PipelineError::EmptySampleSet);
    }

    #[test]
    fn try_run_variant_matches_the_panicking_path() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let a = run_variant(&set, Approach::DataDriven, false, &cfg);
        let b = try_run_variant(&set, Approach::DataDriven, false, &cfg).unwrap();
        assert_eq!(a.regression, b.regression);
        assert_eq!(a.cv_scores, b.cv_scores);
    }
}
