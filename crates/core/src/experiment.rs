//! One variant = one trained and evaluated model: an outcome, an
//! approach (DD or KD), and whether the baseline FI is included.

use crate::config::ExperimentConfig;
use msaw_gbdt::{Booster, Objective, Params};
use msaw_metrics::{group_train_test_split, kfold, stratified_kfold, train_test_split,
    ConfusionMatrix};
use msaw_metrics::{mae, one_minus_mape};
use msaw_preprocess::{OutcomeKind, SampleSet};
use serde::{Deserialize, Serialize};

/// DD vs KD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Data-driven: the full 59-feature (60 with FI) representation.
    DataDriven,
    /// Knowledge-driven: the expert's ICI scalar (plus FI when enabled).
    KnowledgeDriven,
}

impl Approach {
    /// Short label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Approach::DataDriven => "DD",
            Approach::KnowledgeDriven => "KD",
        }
    }
}

/// Regression metrics on the held-out test set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionScores {
    /// The paper's headline score, `1 - MAPE`.
    pub one_minus_mape: f64,
    /// Mean absolute error.
    pub mae: f64,
}

/// The evaluated result of one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantResult {
    /// Which outcome was predicted.
    pub outcome: OutcomeKind,
    /// DD or KD.
    pub approach: Approach,
    /// Whether the window-baseline FI was a feature.
    pub with_fi: bool,
    /// Test-set regression scores (QoL, SPPB).
    pub regression: Option<RegressionScores>,
    /// Test-set classification report (Falls).
    pub classification: Option<msaw_metrics::BinaryReport>,
    /// Primary metric per CV fold on the training side (1-MAPE or
    /// accuracy), in fold order.
    pub cv_scores: Vec<f64>,
    /// Training rows.
    pub n_train: usize,
    /// Test rows.
    pub n_test: usize,
}

impl VariantResult {
    /// The primary test metric: 1-MAPE for regression, accuracy for
    /// classification.
    pub fn primary_metric(&self) -> f64 {
        if let Some(r) = &self.regression {
            r.one_minus_mape
        } else if let Some(c) = &self.classification {
            c.accuracy
        } else {
            f64::NAN
        }
    }

    /// Mean of the CV fold scores.
    pub fn cv_mean(&self) -> f64 {
        if self.cv_scores.is_empty() {
            return f64::NAN;
        }
        self.cv_scores.iter().sum::<f64>() / self.cv_scores.len() as f64
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        let fi = if self.with_fi { "w/ FI " } else { "w/o FI" };
        match (&self.regression, &self.classification) {
            (Some(r), _) => format!(
                "{:<5} {} {}  1-MAPE {:5.1}%  MAE {:.4}  (cv {:5.1}%, {} train / {} test)",
                self.outcome.name(),
                self.approach.label(),
                fi,
                100.0 * r.one_minus_mape,
                r.mae,
                100.0 * self.cv_mean(),
                self.n_train,
                self.n_test
            ),
            (_, Some(c)) => format!(
                "{:<5} {} {}  Acc {:5.1}%  P(T) {:5.1}%  P(F) {:5.1}%  R(T) {:5.1}%  R(F) {:5.1}%  F1(T) {:5.1}%  F1(F) {:5.1}%",
                self.outcome.name(),
                self.approach.label(),
                fi,
                100.0 * c.accuracy,
                100.0 * c.precision_true,
                100.0 * c.precision_false,
                100.0 * c.recall_true,
                100.0 * c.recall_false,
                100.0 * c.f1_true,
                100.0 * c.f1_false
            ),
            _ => format!("{} {} {fi}: no scores", self.outcome.name(), self.approach.label()),
        }
    }
}

/// Tune `scale_pos_weight` to the training split's class imbalance,
/// XGBoost's standard `sum(neg)/sum(pos)` recipe.
fn balanced_params(base: &Params, labels: &[f64]) -> Params {
    let pos = labels.iter().filter(|&&l| l == 1.0).count().max(1);
    let neg = labels.len() - labels.iter().filter(|&&l| l == 1.0).count();
    Params {
        objective: Objective::Logistic { scale_pos_weight: neg.max(1) as f64 / pos as f64 },
        ..base.clone()
    }
}

/// Train on the given rows of `set` and return the fitted model.
/// `auto_balance` switches on the class-weight recipe; the paper's
/// models did not reweight (which is exactly why its KD Falls model
/// without FI collapses to the majority class).
fn fit(set: &SampleSet, rows: &[usize], params: &Params, auto_balance: bool) -> Booster {
    let x = set.features.take_rows(rows);
    let y: Vec<f64> = rows.iter().map(|&i| set.labels[i]).collect();
    let params = if set.outcome.is_classification() && auto_balance {
        balanced_params(params, &y)
    } else {
        params.clone()
    };
    Booster::train(&params, &x, &y).expect("training failed on valid inputs")
}

/// Score a fitted model on the given rows: the primary metric.
fn score(model: &Booster, set: &SampleSet, rows: &[usize], threshold: f64) -> f64 {
    let x = set.features.take_rows(rows);
    let y: Vec<f64> = rows.iter().map(|&i| set.labels[i]).collect();
    let preds = model.predict(&x);
    if set.outcome.is_classification() {
        let labels: Vec<bool> = y.iter().map(|&l| l == 1.0).collect();
        ConfusionMatrix::from_probabilities(&labels, &preds, threshold).accuracy()
    } else {
        one_minus_mape(&y, &preds)
    }
}

/// The 80/20 split the protocol uses: sample-level (the paper's
/// default) or per-patient grouped when `cfg.split_by_patient` is set.
fn split_train_test(set: &SampleSet, cfg: &ExperimentConfig) -> (Vec<usize>, Vec<usize>) {
    if cfg.split_by_patient {
        group_train_test_split(&set.patient_groups(), cfg.test_fraction, cfg.seed)
    } else {
        train_test_split(set.len(), cfg.test_fraction, cfg.seed)
    }
}

/// CV folds over the training rows: stratified on the labels for
/// classification outcomes (Falls is imbalanced enough that a plain
/// KFold can hand a fold a lopsided class mix), plain KFold otherwise.
/// Fold indices are positions into `train_rows`.
fn cv_folds(set: &SampleSet, train_rows: &[usize], cfg: &ExperimentConfig)
    -> Vec<msaw_metrics::Fold> {
    if set.outcome.is_classification() {
        let labels: Vec<bool> = train_rows.iter().map(|&i| set.labels[i] == 1.0).collect();
        stratified_kfold(&labels, cfg.cv_folds, cfg.seed ^ 0x5eed)
    } else {
        kfold(train_rows.len(), cfg.cv_folds, cfg.seed ^ 0x5eed)
    }
}

/// Run the paper's protocol on one prepared sample set: shuffle-split
/// 80/20, K-fold CV on the training side (stratified for Falls), final
/// fit on all training rows, report on the held-out 20%.
pub fn run_variant(
    set: &SampleSet,
    approach: Approach,
    with_fi: bool,
    cfg: &ExperimentConfig,
) -> VariantResult {
    assert!(!set.is_empty(), "cannot evaluate an empty sample set");
    let params = cfg.params_for(set.outcome);
    let (train_rows, test_rows) = split_train_test(set, cfg);

    // Cross-validation within the training split.
    let mut cv_scores = Vec::with_capacity(cfg.cv_folds);
    if train_rows.len() >= cfg.cv_folds * 2 {
        for fold in cv_folds(set, &train_rows, cfg) {
            let fold_train: Vec<usize> = fold.train.iter().map(|&i| train_rows[i]).collect();
            let fold_val: Vec<usize> = fold.validation.iter().map(|&i| train_rows[i]).collect();
            let model = fit(set, &fold_train, params, cfg.auto_balance_falls);
            cv_scores.push(score(&model, set, &fold_val, cfg.decision_threshold));
        }
    }

    // Final model on the full training split, evaluated on the test split.
    let model = fit(set, &train_rows, params, cfg.auto_balance_falls);
    let x_test = set.features.take_rows(&test_rows);
    let y_test: Vec<f64> = test_rows.iter().map(|&i| set.labels[i]).collect();
    let preds = model.predict(&x_test);

    let (regression, classification) = if set.outcome.is_classification() {
        let labels: Vec<bool> = y_test.iter().map(|&l| l == 1.0).collect();
        let cm = ConfusionMatrix::from_probabilities(&labels, &preds, cfg.decision_threshold);
        (None, Some(cm.report()))
    } else {
        (
            Some(RegressionScores {
                one_minus_mape: one_minus_mape(&y_test, &preds),
                mae: mae(&y_test, &preds),
            }),
            None,
        )
    };

    VariantResult {
        outcome: set.outcome,
        approach,
        with_fi,
        regression,
        classification,
        cv_scores,
        n_train: train_rows.len(),
        n_test: test_rows.len(),
    }
}

/// Train a final model on the full 80% training split of a sample set
/// (the model the interpretation experiments explain).
pub fn fit_final_model(set: &SampleSet, cfg: &ExperimentConfig) -> Booster {
    let (train_rows, _) = split_train_test(set, cfg);
    fit(set, &train_rows, cfg.params_for(set.outcome), cfg.auto_balance_falls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, PipelineConfig};

    fn qol_set() -> SampleSet {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        build_samples(&data, &panel, OutcomeKind::Qol, &cfg)
    }

    fn falls_set() -> SampleSet {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        build_samples(&data, &panel, OutcomeKind::Falls, &cfg)
    }

    #[test]
    fn regression_variant_produces_regression_scores() {
        let set = qol_set();
        let r = run_variant(&set, Approach::DataDriven, false, &ExperimentConfig::fast());
        assert!(r.regression.is_some());
        assert!(r.classification.is_none());
        let scores = r.regression.unwrap();
        assert!((0.0..=1.0).contains(&scores.one_minus_mape));
        assert!(scores.mae >= 0.0);
        assert_eq!(r.n_train + r.n_test, set.len());
        assert_eq!(r.cv_scores.len(), 5);
    }

    #[test]
    fn classification_variant_produces_report() {
        let set = falls_set();
        let r = run_variant(&set, Approach::DataDriven, false, &ExperimentConfig::fast());
        assert!(r.classification.is_some());
        assert!(r.regression.is_none());
        let c = r.classification.unwrap();
        assert!((0.0..=1.0).contains(&c.accuracy));
    }

    #[test]
    fn model_beats_predicting_the_mean() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let r = run_variant(&set, Approach::DataDriven, false, &cfg);
        // Baseline: predict the train mean everywhere.
        let (train_rows, test_rows) = train_test_split(set.len(), cfg.test_fraction, cfg.seed);
        let mean: f64 = train_rows.iter().map(|&i| set.labels[i]).sum::<f64>()
            / train_rows.len() as f64;
        let y: Vec<f64> = test_rows.iter().map(|&i| set.labels[i]).collect();
        let baseline = one_minus_mape(&y, &vec![mean; y.len()]);
        assert!(
            r.regression.unwrap().one_minus_mape > baseline,
            "model {:.3} should beat mean baseline {:.3}",
            r.regression.unwrap().one_minus_mape,
            baseline
        );
    }

    #[test]
    fn results_are_seed_deterministic() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let a = run_variant(&set, Approach::DataDriven, false, &cfg);
        let b = run_variant(&set, Approach::DataDriven, false, &cfg);
        assert_eq!(a.primary_metric(), b.primary_metric());
        assert_eq!(a.cv_scores, b.cv_scores);
    }

    #[test]
    fn summary_lines_mention_the_variant() {
        let set = qol_set();
        let r = run_variant(&set, Approach::KnowledgeDriven, true, &ExperimentConfig::fast());
        let line = r.summary_line();
        assert!(line.contains("QoL") && line.contains("KD") && line.contains("w/ FI"));
    }

    #[test]
    fn balanced_params_matches_imbalance() {
        let base = ExperimentConfig::default().classification_params;
        let labels = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        let p = balanced_params(&base, &labels);
        match p.objective {
            Objective::Logistic { scale_pos_weight } => assert_eq!(scale_pos_weight, 4.0),
            _ => panic!("wrong objective"),
        }
    }

    #[test]
    fn grouped_split_keeps_patients_on_one_side() {
        let set = qol_set();
        let cfg = ExperimentConfig { split_by_patient: true, ..ExperimentConfig::fast() };
        let (train, test) = split_train_test(&set, &cfg);
        assert_eq!(train.len() + test.len(), set.len());
        let train_patients: std::collections::HashSet<u32> =
            train.iter().map(|&i| set.meta[i].patient.0).collect();
        for &i in &test {
            assert!(
                !train_patients.contains(&set.meta[i].patient.0),
                "patient {} leaked across the grouped split",
                set.meta[i].patient.0
            );
        }
        // And the run itself still completes under the grouped protocol.
        let r = run_variant(&set, Approach::DataDriven, false, &cfg);
        assert!(r.primary_metric().is_finite());
    }

    #[test]
    fn sample_split_is_the_default_and_unchanged() {
        let set = qol_set();
        let cfg = ExperimentConfig::fast();
        let (train, test) = split_train_test(&set, &cfg);
        let (t2, v2) = train_test_split(set.len(), cfg.test_fraction, cfg.seed);
        assert_eq!(train, t2);
        assert_eq!(test, v2);
    }

    #[test]
    fn classification_cv_is_stratified() {
        let set = falls_set();
        let cfg = ExperimentConfig::fast();
        let (train_rows, _) = split_train_test(&set, &cfg);
        let folds = cv_folds(&set, &train_rows, &cfg);
        assert_eq!(folds.len(), cfg.cv_folds);
        let total_pos = train_rows.iter().filter(|&&i| set.labels[i] == 1.0).count();
        let overall = total_pos as f64 / train_rows.len() as f64;
        for fold in &folds {
            let pos = fold
                .validation
                .iter()
                .filter(|&&i| set.labels[train_rows[i]] == 1.0)
                .count();
            let rate = pos as f64 / fold.validation.len() as f64;
            // Round-robin dealing keeps every fold within one sample of
            // the overall positive rate.
            assert!(
                (rate - overall).abs() <= 1.5 / fold.validation.len() as f64 + 1e-12,
                "fold positive rate {rate:.3} strays from overall {overall:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_set_is_rejected() {
        let set = qol_set();
        let empty = set.take(&[]);
        run_variant(&empty, Approach::DataDriven, false, &ExperimentConfig::fast());
    }
}
