//! Streamed chunked generation must equal full-cohort materialisation
//! bit for bit, for every chunk size — the determinism contract the
//! out-of-core training pipeline is built on.

use msaw_cohort::stream::CohortStream;
use msaw_cohort::{generate, CohortConfig, CohortData, PatientRecord};
use proptest::prelude::*;

/// Concatenate a chunked stream back into patient-major order.
fn stream_chunked(config: &CohortConfig, chunk: usize) -> Vec<PatientRecord> {
    CohortStream::new(config).chunks(chunk).flatten().collect()
}

/// Assert the streamed records reproduce the materialised cohort
/// exactly. Float comparisons are bitwise (activity traces contain NaN
/// not-worn days), everything else uses structural equality.
fn assert_matches(data: &CohortData, records: &[PatientRecord]) {
    let n = data.patients.len();
    assert_eq!(records.len(), n);
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.patient, data.patients[i], "patient {i}");
        assert_eq!(rec.latent, data.latent[i], "latent {i}");
        assert_eq!(rec.pro, data.pro.series[i], "pro {i}");
        assert!(rec.activity.bits_eq(&data.activity[i]), "activity {i}");
        // The materialised cohort flattens visits patient-major:
        // 3 clinical rows then 2 outcome rows per patient.
        assert_eq!(rec.clinical.as_slice(), &data.clinical[i * 3..i * 3 + 3], "clinical {i}");
        assert_eq!(rec.outcomes.as_slice(), &data.outcomes[i * 2..i * 2 + 2], "outcomes {i}");
    }
}

#[test]
fn chunk_sizes_reproduce_full_cohort() {
    let config = CohortConfig::small(42);
    let n = config.total_patients();
    let data = generate(&config);
    for chunk in [1usize, 7, 256, n] {
        assert_matches(&data, &stream_chunked(&config, chunk));
    }
}

#[test]
fn exact_division_leaves_no_empty_trailing_chunk() {
    let config = CohortConfig::small(42);
    let n = config.total_patients();
    // Pick a chunk size that divides n so the "empty last block" case
    // is exercised: the chunk iterator must end cleanly, not yield [].
    let chunk = (1..=n).rev().find(|c| n.is_multiple_of(*c) && *c < n).unwrap();
    let chunks: Vec<_> = CohortStream::new(&config).chunks(chunk).collect();
    assert!(chunks.iter().all(|c| !c.is_empty()));
    assert_eq!(chunks.len(), n / chunk);
    assert_matches(&generate(&config), &chunks.into_iter().flatten().collect::<Vec<_>>());
}

#[test]
fn single_patient_cohort_streams() {
    let mut config = CohortConfig::paper(9);
    config.clinics.truncate(1);
    config.clinics[0].n_patients = 1;
    let data = generate(&config);
    for chunk in [1usize, 2, 100] {
        assert_matches(&data, &stream_chunked(&config, chunk));
    }
}

#[test]
fn chunk_larger_than_cohort_yields_one_chunk() {
    let config = CohortConfig::small(11);
    let n = config.total_patients();
    let chunks: Vec<_> = CohortStream::new(&config).chunks(n + 100).collect();
    assert_eq!(chunks.len(), 1);
    assert_eq!(chunks[0].len(), n);
    assert_matches(&generate(&config), &chunks[0]);
}

/// A tiny arbitrary cohort: 1–3 clinics, 1–6 patients each, varied
/// noise parameters — enough structural variety to shake out any
/// order- or chunk-dependence, small enough to generate hundreds of
/// cases quickly.
fn arb_config() -> impl Strategy<Value = CohortConfig> {
    (1usize..4, any::<u64>(), 1usize..7).prop_map(|(n_clinics, seed, per_clinic)| {
        let mut config = CohortConfig::paper(seed);
        config.clinics.truncate(n_clinics);
        for (i, c) in config.clinics.iter_mut().enumerate() {
            c.n_patients = per_clinic + i; // unequal blocks
        }
        config
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_equals_materialised_for_any_chunk_size(
        config in arb_config(),
        chunk in 1usize..25,
    ) {
        let data = generate(&config);
        assert_matches(&data, &stream_chunked(&config, chunk));
    }
}
