//! Validating ingest for exported sample frames.
//!
//! Sits between CSV parse and sample construction: given a
//! [`msaw_tabular::Frame`] in the layout `SampleSet::to_frame` exports
//! (provenance columns, the 59-feature panel, one `label_*` column),
//! checks the schema and every row's values against the study's domain
//! knowledge — PRO monthly means inside their Likert 1–5 domain,
//! activity aggregates non-negative, the EQ-5D VAS (QoL) label in
//! `[0,1]`, SPPB an integer in 0–12, Falls binary, and no NaN outcome.
//!
//! Two modes:
//! * **strict** ([`validate_strict`]) — the first violation (lowest row,
//!   leftmost column) is returned as an error;
//! * **lenient** ([`validate_lenient`]) — offending rows are quarantined
//!   and reported by index + reason, and the caller proceeds with the
//!   clean subset.
//!
//! Both modes treat a malformed *schema* as fatal: there is no clean
//! subset of a frame whose columns are wrong.

use crate::patient::Clinic;
use crate::pro::QUESTION_BANK;
use msaw_tabular::{DataType, Frame};
use std::collections::BTreeMap;
use std::fmt;

/// How the label column of a frame is validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelRule {
    /// EQ-5D visual analogue scale: finite, in `[0,1]` (QoL).
    Vas01,
    /// Short Physical Performance Battery: integer in 0–12.
    Integer0To12,
    /// Binary outcome: exactly 0 or 1 (Falls).
    Binary,
}

impl LabelRule {
    /// Map an exported label column name to its rule.
    pub fn for_label_column(name: &str) -> Option<LabelRule> {
        match name {
            "label_QoL" => Some(LabelRule::Vas01),
            "label_SPPB" => Some(LabelRule::Integer0To12),
            "label_Falls" => Some(LabelRule::Binary),
            _ => None,
        }
    }
}

/// Why a row failed validation. Ordered so reason counts render
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationReason {
    /// A `pro_*` feature outside the Likert domain `[1,5]`.
    ProOutOfRange,
    /// A negative steps/sleep/calories aggregate.
    NegativeActivity,
    /// QoL label outside `[0,1]`.
    VasOutOfRange,
    /// SPPB label not an integer in 0–12.
    SppbOutOfRange,
    /// Falls label not 0 or 1.
    NonBinaryLabel,
    /// The outcome label is NaN.
    NanOutcome,
    /// The clinic cell is missing or names no known clinic.
    UnknownClinic,
    /// A provenance integer (patient/month/window) is missing.
    MissingProvenance,
}

impl fmt::Display for ViolationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationReason::ProOutOfRange => "PRO value outside Likert [1,5]",
            ViolationReason::NegativeActivity => "negative activity aggregate",
            ViolationReason::VasOutOfRange => "QoL (EQ-5D VAS) outside [0,1]",
            ViolationReason::SppbOutOfRange => "SPPB not an integer in 0-12",
            ViolationReason::NonBinaryLabel => "Falls label not in {0,1}",
            ViolationReason::NanOutcome => "NaN outcome label",
            ViolationReason::UnknownClinic => "unknown clinic",
            ViolationReason::MissingProvenance => "missing provenance value",
        };
        f.write_str(s)
    }
}

/// One offending cell: which row, which column, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Zero-based data-row index within the frame.
    pub row: usize,
    /// Name of the offending column.
    pub column: String,
    /// What rule the value broke.
    pub reason: ViolationReason,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row {}, column `{}`: {}", self.row, self.column, self.reason)
    }
}

/// A validation failure (strict mode, or a schema failure in either mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The frame's columns don't form a sample export (fatal in both
    /// modes — no row subset can repair a wrong schema).
    Schema(String),
    /// Strict mode: the first offending cell.
    Violation(Violation),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Schema(msg) => write!(f, "sample frame schema invalid: {msg}"),
            ValidateError::Violation(v) => write!(f, "sample frame validation failed: {v}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Lenient-mode outcome: which rows were quarantined and why, plus the
/// surviving row indices to proceed with.
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    /// Quarantined rows as `(row index, first reason hit)`, ascending.
    pub quarantined: Vec<(usize, ViolationReason)>,
    /// Total offending rows per reason (a row with several broken cells
    /// counts once per distinct reason).
    pub reason_counts: BTreeMap<ViolationReason, usize>,
    /// Row indices that passed every check, ascending.
    pub clean_rows: Vec<usize>,
}

impl QuarantineReport {
    /// Number of quarantined rows.
    pub fn n_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// One-line human summary ("3 rows quarantined: 2 × …, 1 × …").
    pub fn summary(&self) -> String {
        if self.quarantined.is_empty() {
            return "0 rows quarantined".to_string();
        }
        let reasons: Vec<String> =
            self.reason_counts.iter().map(|(r, n)| format!("{n} x {r}")).collect();
        format!("{} rows quarantined: {}", self.quarantined.len(), reasons.join(", "))
    }
}

/// The resolved shape of a validated frame: which columns hold what.
struct FrameShape {
    pro_cols: Vec<usize>,
    activity_cols: Vec<usize>,
    label_col: usize,
    label_rule: LabelRule,
    clinic_col: usize,
    provenance_cols: Vec<usize>,
}

/// Check the frame's columns: provenance present and typed, all 56 PRO
/// items and 3 activity aggregates present as floats, exactly one
/// known `label_*` column.
fn check_schema(frame: &Frame) -> Result<FrameShape, ValidateError> {
    let schema = frame.schema();
    let require = |name: &str, dtype: DataType| -> Result<usize, ValidateError> {
        match schema.field(name) {
            None => Err(ValidateError::Schema(format!("missing column `{name}`"))),
            Some(f) if f.dtype != dtype => Err(ValidateError::Schema(format!(
                "column `{name}` is {} but must be {}",
                f.dtype.name(),
                dtype.name()
            ))),
            Some(_) => Ok(schema.position(name).expect("field exists")),
        }
    };

    let provenance_cols = vec![
        require("patient", DataType::Int)?,
        require("month", DataType::Int)?,
        require("window", DataType::Int)?,
    ];
    let clinic_col = require("clinic", DataType::Categorical)?;
    let mut pro_cols = Vec::with_capacity(QUESTION_BANK.len());
    for q in QUESTION_BANK.iter() {
        pro_cols.push(require(&q.name, DataType::Float)?);
    }
    let activity_cols = vec![
        require("steps_monthly_mean", DataType::Float)?,
        require("sleep_hours_monthly_mean", DataType::Float)?,
        require("calories_monthly_mean", DataType::Float)?,
    ];

    let labels: Vec<(usize, LabelRule)> = schema
        .fields()
        .iter()
        .enumerate()
        .filter_map(|(i, f)| LabelRule::for_label_column(&f.name).map(|r| (i, r)))
        .collect();
    let (label_col, label_rule) = match labels.as_slice() {
        [] => return Err(ValidateError::Schema("no label_* column".to_string())),
        [one] => *one,
        many => {
            return Err(ValidateError::Schema(format!(
                "expected one label_* column, found {}",
                many.len()
            )))
        }
    };
    require(&schema.fields()[label_col].name, DataType::Float)?;

    Ok(FrameShape { pro_cols, activity_cols, label_col, label_rule, clinic_col, provenance_cols })
}

/// Every violation in one row, leftmost-column-first within each group.
fn row_violations(frame: &Frame, shape: &FrameShape, row: usize, out: &mut Vec<Violation>) {
    let schema = frame.schema();
    let col_name = |c: usize| schema.fields()[c].name.clone();

    for &c in &shape.provenance_cols {
        let vals = frame.column_at(c).and_then(|col| col.as_i64());
        if vals.is_none_or(|v| v[row].is_none()) {
            out.push(Violation {
                row,
                column: col_name(c),
                reason: ViolationReason::MissingProvenance,
            });
        }
    }
    {
        let known = frame
            .column_at(shape.clinic_col)
            .and_then(|col| col.as_categorical())
            .and_then(|(codes, cats)| codes[row].map(|code| cats[code as usize].clone()))
            .is_some_and(|name| Clinic::from_name(&name).is_some());
        if !known {
            out.push(Violation {
                row,
                column: col_name(shape.clinic_col),
                reason: ViolationReason::UnknownClinic,
            });
        }
    }
    for &c in &shape.pro_cols {
        let v = frame.column_at(c).and_then(|col| col.as_f64()).map(|v| v[row]);
        // NaN = missing is legal for features (QA already bounded it).
        if let Some(v) = v {
            if !v.is_nan() && !(1.0..=5.0).contains(&v) {
                out.push(Violation {
                    row,
                    column: col_name(c),
                    reason: ViolationReason::ProOutOfRange,
                });
            }
        }
    }
    for &c in &shape.activity_cols {
        let v = frame.column_at(c).and_then(|col| col.as_f64()).map(|v| v[row]);
        if let Some(v) = v {
            if !v.is_nan() && v < 0.0 {
                out.push(Violation {
                    row,
                    column: col_name(c),
                    reason: ViolationReason::NegativeActivity,
                });
            }
        }
    }
    let label = frame
        .column_at(shape.label_col)
        .and_then(|col| col.as_f64())
        .map(|v| v[row])
        .unwrap_or(f64::NAN);
    let label_column = col_name(shape.label_col);
    if label.is_nan() {
        out.push(Violation { row, column: label_column, reason: ViolationReason::NanOutcome });
    } else {
        let broken = match shape.label_rule {
            LabelRule::Vas01 => {
                (!(0.0..=1.0).contains(&label)).then_some(ViolationReason::VasOutOfRange)
            }
            LabelRule::Integer0To12 => (!(0.0..=12.0).contains(&label) || label.fract() != 0.0)
                .then_some(ViolationReason::SppbOutOfRange),
            LabelRule::Binary => {
                (label != 0.0 && label != 1.0).then_some(ViolationReason::NonBinaryLabel)
            }
        };
        if let Some(reason) = broken {
            out.push(Violation { row, column: label_column, reason });
        }
    }
}

/// Strict mode: error on the schema, or on the first offending cell
/// (lowest row; within a row, provenance → clinic → features → label).
pub fn validate_strict(frame: &Frame) -> Result<(), ValidateError> {
    let shape = check_schema(frame)?;
    let mut found = Vec::new();
    for row in 0..frame.nrows() {
        row_violations(frame, &shape, row, &mut found);
        if let Some(first) = found.into_iter().next() {
            return Err(ValidateError::Violation(first));
        }
        found = Vec::new();
    }
    Ok(())
}

/// Lenient mode: quarantine every offending row, report reasons, and
/// return the clean subset's indices. A wrong schema is still an error.
pub fn validate_lenient(frame: &Frame) -> Result<QuarantineReport, ValidateError> {
    let shape = check_schema(frame)?;
    let mut report = QuarantineReport::default();
    let mut scratch = Vec::new();
    for row in 0..frame.nrows() {
        scratch.clear();
        row_violations(frame, &shape, row, &mut scratch);
        if scratch.is_empty() {
            report.clean_rows.push(row);
        } else {
            report.quarantined.push((row, scratch[0].reason));
            scratch.dedup_by_key(|v| v.reason);
            for v in &scratch {
                *report.reason_counts.entry(v.reason).or_insert(0) += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_tabular::Column;

    /// A minimal well-formed 3-row sample frame.
    fn clean_frame(label_name: &str, labels: Vec<f64>) -> Frame {
        let n = labels.len();
        let mut frame = Frame::new();
        frame.push_column("patient", Column::from_i64((0..n as i64).map(Some).collect())).unwrap();
        let clinics: Vec<Option<&str>> = (0..n).map(|_| Some("Modena")).collect();
        frame.push_column("clinic", Column::from_labels(&clinics)).unwrap();
        frame.push_column("month", Column::from_i64(vec![Some(1); n])).unwrap();
        frame.push_column("window", Column::from_i64(vec![Some(1); n])).unwrap();
        for q in QUESTION_BANK.iter() {
            frame.push_column(q.name.clone(), Column::from_f64(vec![3.0; n])).unwrap();
        }
        for a in ["steps_monthly_mean", "sleep_hours_monthly_mean", "calories_monthly_mean"] {
            frame.push_column(a, Column::from_f64(vec![100.0; n])).unwrap();
        }
        frame.push_column(label_name, Column::from_f64(labels)).unwrap();
        frame
    }

    #[test]
    fn clean_frame_passes_both_modes() {
        let frame = clean_frame("label_QoL", vec![0.8, 0.5, 0.9]);
        assert_eq!(validate_strict(&frame), Ok(()));
        let report = validate_lenient(&frame).unwrap();
        assert_eq!(report.n_quarantined(), 0);
        assert_eq!(report.clean_rows, vec![0, 1, 2]);
        assert_eq!(report.summary(), "0 rows quarantined");
    }

    #[test]
    fn missing_column_is_a_schema_error_in_both_modes() {
        let frame = clean_frame("label_QoL", vec![0.5]).drop_column("month").unwrap();
        assert!(matches!(validate_strict(&frame), Err(ValidateError::Schema(_))));
        assert!(matches!(validate_lenient(&frame), Err(ValidateError::Schema(_))));
    }

    #[test]
    fn missing_label_column_is_a_schema_error() {
        let frame = clean_frame("label_QoL", vec![0.5]).drop_column("label_QoL").unwrap();
        let err = validate_strict(&frame).unwrap_err();
        assert!(matches!(err, ValidateError::Schema(ref m) if m.contains("label")), "{err}");
    }

    #[test]
    fn strict_reports_the_first_violation_by_row() {
        let mut frame = clean_frame("label_QoL", vec![0.5, 0.5, 0.5]);
        // Row 2 has a bad label, row 1 a bad PRO: row 1 must win.
        frame = patch_f64(frame, &QUESTION_BANK[4].name, 1, 99.0);
        frame = patch_f64(frame, "label_QoL", 2, 7.0);
        match validate_strict(&frame).unwrap_err() {
            ValidateError::Violation(v) => {
                assert_eq!(v.row, 1);
                assert_eq!(v.reason, ViolationReason::ProOutOfRange);
                assert_eq!(v.column, QUESTION_BANK[4].name);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn lenient_quarantines_exactly_the_bad_rows() {
        let mut frame = clean_frame("label_SPPB", vec![9.0, 10.0, 11.0, 12.0]);
        frame = patch_f64(frame, "label_SPPB", 1, 7.5); // non-integer
        frame = patch_f64(frame, "steps_monthly_mean", 3, -4.0);
        let report = validate_lenient(&frame).unwrap();
        assert_eq!(report.clean_rows, vec![0, 2]);
        assert_eq!(
            report.quarantined,
            vec![(1, ViolationReason::SppbOutOfRange), (3, ViolationReason::NegativeActivity)]
        );
        assert_eq!(report.reason_counts[&ViolationReason::SppbOutOfRange], 1);
        assert_eq!(report.reason_counts[&ViolationReason::NegativeActivity], 1);
        assert!(report.summary().contains("2 rows quarantined"));
    }

    #[test]
    fn nan_outcome_is_detected() {
        let frame = patch_f64(clean_frame("label_QoL", vec![0.5, 0.5]), "label_QoL", 0, f64::NAN);
        match validate_strict(&frame).unwrap_err() {
            ValidateError::Violation(v) => assert_eq!(v.reason, ViolationReason::NanOutcome),
            other => panic!("{other:?}"),
        }
        // But a NaN *feature* is missing data, not a violation.
        let frame =
            patch_f64(clean_frame("label_QoL", vec![0.5]), &QUESTION_BANK[0].name, 0, f64::NAN);
        assert_eq!(validate_strict(&frame), Ok(()));
    }

    #[test]
    fn falls_labels_must_be_binary() {
        let frame = clean_frame("label_Falls", vec![0.0, 0.3, 1.0]);
        let report = validate_lenient(&frame).unwrap();
        assert_eq!(report.quarantined, vec![(1, ViolationReason::NonBinaryLabel)]);
    }

    #[test]
    fn unknown_clinic_is_flagged() {
        let mut frame = clean_frame("label_QoL", vec![0.5, 0.5]);
        let clinics: Vec<Option<&str>> = vec![Some("Modena"), Some("Atlantis")];
        frame = replace_column(frame, "clinic", Column::from_labels(&clinics));
        let report = validate_lenient(&frame).unwrap();
        assert_eq!(report.quarantined, vec![(1, ViolationReason::UnknownClinic)]);
    }

    fn patch_f64(frame: Frame, name: &str, row: usize, value: f64) -> Frame {
        let mut vals = frame.f64_column(name).unwrap().to_vec();
        vals[row] = value;
        replace_column(frame, name, Column::from_f64(vals))
    }

    /// Rebuild the frame with one column replaced, order preserved.
    fn replace_column(frame: Frame, name: &str, column: Column) -> Frame {
        let mut out = Frame::new();
        for field in frame.schema().fields().iter().map(|f| f.name.clone()).collect::<Vec<_>>() {
            if field == name {
                out.push_column(field, column.clone()).unwrap();
            } else {
                out.push_column(field.clone(), frame.column(&field).unwrap().clone()).unwrap();
            }
        }
        out
    }
}
