//! Deterministic substream derivation.
//!
//! Every simulated quantity draws from an `StdRng` seeded by mixing the
//! master seed with a `(stream, patient, item)` triple, so adding or
//! reordering generation steps never perturbs unrelated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Named noise streams (the values are part of the reproducibility
/// contract — reordering them changes generated cohorts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Patient demographics and baseline latent state.
    Baseline = 1,
    /// Monthly latent trajectory innovations.
    Trajectory = 2,
    /// PRO answer noise.
    Pro = 3,
    /// PRO missingness gaps.
    Gaps = 4,
    /// Activity tracker noise.
    Activity = 5,
    /// Clinical deficit draws.
    Clinical = 6,
    /// Outcome noise.
    Outcomes = 7,
}

/// SplitMix64 finaliser — decorrelates structured seed inputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An RNG for `(master seed, stream, patient, item)`.
pub fn substream(seed: u64, stream: Stream, patient: u64, item: u64) -> StdRng {
    let mixed = splitmix64(
        splitmix64(seed ^ (stream as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            ^ patient.wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ item.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    StdRng::seed_from_u64(mixed)
}

/// Standard-normal draw via Box–Muller (avoids needing `rand_distr`).
pub fn normal(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn substreams_are_deterministic() {
        let a: f64 = substream(42, Stream::Pro, 1, 2).random();
        let b: f64 = substream(42, Stream::Pro, 1, 2).random();
        assert_eq!(a, b);
    }

    #[test]
    fn substreams_differ_across_axes() {
        let base: f64 = substream(42, Stream::Pro, 1, 2).random();
        assert_ne!(base, substream(43, Stream::Pro, 1, 2).random::<f64>());
        assert_ne!(base, substream(42, Stream::Gaps, 1, 2).random::<f64>());
        assert_ne!(base, substream(42, Stream::Pro, 2, 2).random::<f64>());
        assert_ne!(base, substream(42, Stream::Pro, 1, 3).random::<f64>());
    }

    #[test]
    fn normal_has_roughly_standard_moments() {
        let mut rng = substream(7, Stream::Outcomes, 0, 0);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
