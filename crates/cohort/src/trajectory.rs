//! Latent health trajectories: per-domain Intrinsic Capacity and frailty
//! evolving month by month.

use crate::config::ClinicConfig;
use crate::domains::{Domain, DomainVector};
use crate::patient::Patient;
use crate::rng::{normal, substream, Stream};
use crate::STUDY_MONTHS;
use serde::{Deserialize, Serialize};

/// A patient's hidden state over the study: one entry per month
/// `0..=STUDY_MONTHS` (19 points — baseline plus 18 months).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Monthly latent capacity per domain, each in `[0,1]`.
    pub capacity: Vec<DomainVector>,
    /// Monthly latent frailty in `[0,1]` (1 = most frail).
    pub frailty: Vec<f64>,
}

/// Mean monthly drift per domain: slow age-related decline, strongest
/// in locomotion and vitality (the domains SPPB and Falls react to).
fn domain_drift(d: Domain) -> f64 {
    match d {
        Domain::Locomotion => -0.0035,
        Domain::Cognition => -0.0015,
        Domain::Psychological => -0.0010,
        Domain::Vitality => -0.0030,
        Domain::Sensory => -0.0020,
    }
}

/// Monthly innovation scale per domain.
fn domain_volatility(d: Domain) -> f64 {
    match d {
        Domain::Locomotion => 0.012,
        Domain::Cognition => 0.008,
        Domain::Psychological => 0.018,
        Domain::Vitality => 0.015,
        Domain::Sensory => 0.006,
    }
}

/// Frailty as a deficit-weighted readout of capacity plus an
/// idiosyncratic component: frail patients are low-capacity patients,
/// but the mapping is noisy (frailty and IC are related, not opposite —
/// Belloni & Cesari 2019, as discussed in the paper's background).
pub fn frailty_from_capacity(capacity: &DomainVector, idiosyncratic: f64) -> f64 {
    let weights = DomainVector { values: [1.3, 1.0, 0.8, 1.4, 0.7] };
    let deficit = 1.0 - capacity.weighted_mean(&weights);
    // A substantial idiosyncratic share: clinical frailty carries
    // information (comorbidity burden, lab abnormalities) that the
    // questionnaire-visible capacities only partly proxy. This is what
    // the baseline FI contributes on top of the PRO/activity features.
    (0.58 * deficit + 0.42 * idiosyncratic).clamp(0.0, 1.0)
}

/// A stable per-patient *balance* trait in `[0,1]`: partly explained by
/// locomotion capacity, partly idiosyncratic (inner-ear function, past
/// injuries, medication side effects — things a questionnaire only
/// reaches through specific balance items). It loads on three PRO items
/// and on fall risk, and is the signal the expert's ICI subset misses.
pub fn balance_trait(patient: &Patient, seed: u64) -> f64 {
    let mut rng = substream(seed, Stream::Baseline, patient.id.0 as u64, 2);
    let idio = (0.5 + 0.28 * normal(&mut rng)).clamp(0.0, 1.0);
    (0.45 * patient.baseline_capacity.get(Domain::Locomotion) + 0.55 * idio).clamp(0.0, 1.0)
}

/// Simulate a patient's trajectory.
pub fn simulate(patient: &Patient, clinic_cfg: &ClinicConfig, seed: u64) -> Trajectory {
    let mut rng = substream(seed, Stream::Trajectory, patient.id.0 as u64, 0);
    let mut capacity = Vec::with_capacity(STUDY_MONTHS + 1);
    let mut frailty = Vec::with_capacity(STUDY_MONTHS + 1);

    // The idiosyncratic frailty component is a stable patient trait.
    let idiosyncratic = {
        let mut r = substream(seed, Stream::Baseline, patient.id.0 as u64, 1);
        (0.5 + 0.25 * normal(&mut r)).clamp(0.0, 1.0)
    };

    let mut state = patient.baseline_capacity;
    capacity.push(state);
    frailty.push(frailty_from_capacity(&state, idiosyncratic));
    for _month in 1..=STUDY_MONTHS {
        let mut next = state;
        for d in Domain::ALL {
            let drift = domain_drift(d);
            let vol = domain_volatility(d) * clinic_cfg.observation_noise.sqrt();
            // AR(1) with mild mean reversion toward the patient baseline:
            // capacities wander but do not random-walk off to extremes.
            let anchor = patient.baseline_capacity.get(d);
            let v = next.get(d);
            let updated = v + drift + 0.06 * (anchor - v) + vol * normal(&mut rng);
            next.set(d, updated.clamp(0.0, 1.0));
        }
        state = next;
        capacity.push(state);
        frailty.push(frailty_from_capacity(&state, idiosyncratic));
    }
    Trajectory { capacity, frailty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CohortConfig;
    use crate::domains::DomainVector;
    use crate::patient::{Clinic, PatientId};

    fn test_patient(id: u32) -> Patient {
        Patient {
            id: PatientId(id),
            clinic: Clinic::Modena,
            age: 62.0,
            years_with_hiv: 18.0,
            baseline_capacity: DomainVector::splat(0.7),
            baseline_frailty: 0.3,
        }
    }

    fn clinic_cfg() -> ClinicConfig {
        CohortConfig::paper(1).clinics[0].clone()
    }

    #[test]
    fn trajectory_has_a_point_per_month_plus_baseline() {
        let t = simulate(&test_patient(0), &clinic_cfg(), 42);
        assert_eq!(t.capacity.len(), STUDY_MONTHS + 1);
        assert_eq!(t.frailty.len(), STUDY_MONTHS + 1);
    }

    #[test]
    fn all_values_stay_in_unit_interval() {
        for id in 0..20 {
            let t = simulate(&test_patient(id), &clinic_cfg(), 42);
            for c in &t.capacity {
                for v in c.values {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
            for &f in &t.frailty {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_patient() {
        let a = simulate(&test_patient(3), &clinic_cfg(), 42);
        let b = simulate(&test_patient(3), &clinic_cfg(), 42);
        assert_eq!(a, b);
        let c = simulate(&test_patient(3), &clinic_cfg(), 43);
        assert_ne!(a, c);
        let d = simulate(&test_patient(4), &clinic_cfg(), 42);
        assert_ne!(a, d);
    }

    #[test]
    fn frailty_decreases_with_capacity() {
        let high = frailty_from_capacity(&DomainVector::splat(0.95), 0.5);
        let low = frailty_from_capacity(&DomainVector::splat(0.25), 0.5);
        assert!(low > high);
    }

    #[test]
    fn population_drifts_downward_on_average() {
        // Over 18 months the mean capacity should decline slightly
        // (age-related drift), not explode or climb.
        let cfg = clinic_cfg();
        let mut start = 0.0;
        let mut end = 0.0;
        let n = 60;
        for id in 0..n {
            let t = simulate(&test_patient(id), &cfg, 7);
            start += t.capacity[0].mean();
            end += t.capacity[STUDY_MONTHS].mean();
        }
        let drift = (end - start) / n as f64;
        assert!(drift < 0.0, "expected decline, got {drift}");
        assert!(drift > -0.1, "decline implausibly fast: {drift}");
    }
}
