//! The five Intrinsic Capacity domains (WHO ICOPE) the paper's feature
//! space and KD index are organised around.

use serde::{Deserialize, Serialize};

/// An Intrinsic Capacity domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Movement ability (drives SPPB and falls risk).
    Locomotion,
    /// Memory and executive function.
    Cognition,
    /// Mood, stress, social connectedness.
    Psychological,
    /// Energy, appetite, physiological reserve.
    Vitality,
    /// Vision and hearing.
    Sensory,
}

impl Domain {
    /// All domains, in canonical order.
    pub const ALL: [Domain; 5] = [
        Domain::Locomotion,
        Domain::Cognition,
        Domain::Psychological,
        Domain::Vitality,
        Domain::Sensory,
    ];

    /// Canonical index (position in [`Domain::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Domain::Locomotion => 0,
            Domain::Cognition => 1,
            Domain::Psychological => 2,
            Domain::Vitality => 3,
            Domain::Sensory => 4,
        }
    }

    /// Short lowercase name used in generated variable names.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Locomotion => "locomotion",
            Domain::Cognition => "cognition",
            Domain::Psychological => "psychological",
            Domain::Vitality => "vitality",
            Domain::Sensory => "sensory",
        }
    }
}

/// A value per domain (latent capacities, weights, …), each typically
/// in `[0, 1]` where 1 = full capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DomainVector {
    /// `values[d.index()]` is the value for domain `d`.
    pub values: [f64; 5],
}

impl DomainVector {
    /// Uniform vector.
    pub fn splat(v: f64) -> Self {
        DomainVector { values: [v; 5] }
    }

    /// Value for one domain.
    pub fn get(&self, d: Domain) -> f64 {
        self.values[d.index()]
    }

    /// Set one domain's value.
    pub fn set(&mut self, d: Domain, v: f64) {
        self.values[d.index()] = v;
    }

    /// Unweighted mean across domains.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / 5.0
    }

    /// Weighted mean; weights need not be normalised.
    pub fn weighted_mean(&self, weights: &DomainVector) -> f64 {
        let wsum: f64 = weights.values.iter().sum();
        assert!(wsum > 0.0, "weights must not all be zero");
        self.values.iter().zip(&weights.values).map(|(v, w)| v * w).sum::<f64>() / wsum
    }

    /// Clamp every component to `[0, 1]`.
    pub fn clamped(mut self) -> Self {
        for v in &mut self.values {
            *v = v.clamp(0.0, 1.0);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, d) in Domain::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Domain::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = DomainVector::splat(0.5);
        v.set(Domain::Vitality, 0.9);
        assert_eq!(v.get(Domain::Vitality), 0.9);
        assert_eq!(v.get(Domain::Locomotion), 0.5);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let mut v = DomainVector::splat(0.0);
        v.set(Domain::Locomotion, 1.0);
        let mut w = DomainVector::splat(0.0);
        w.set(Domain::Locomotion, 2.0);
        w.set(Domain::Cognition, 2.0);
        assert_eq!(v.weighted_mean(&w), 0.5);
    }

    #[test]
    fn clamped_bounds_components() {
        let v = DomainVector { values: [-0.2, 0.5, 1.7, 0.0, 1.0] }.clamped();
        assert_eq!(v.values, [0.0, 0.5, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn mean_is_arithmetic() {
        let v = DomainVector { values: [0.0, 0.25, 0.5, 0.75, 1.0] };
        assert_eq!(v.mean(), 0.5);
    }
}
