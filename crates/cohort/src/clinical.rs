//! Clinical assessments at study visits (months 0, 9, 18).
//!
//! The paper computes its Frailty Index from 37 clinical variables — 27
//! blood-test values, 3 body-composition measures and 7 HIV-related
//! variables — following the standard deficit-accumulation procedure
//! (Searle et al. 2008). We simulate each variable as a *deficit score*
//! in {0, 0.5, 1}: absent, partial, or full deficit, drawn with a
//! probability that rises with the patient's latent frailty.

use crate::patient::{Patient, PatientId};
use crate::rng::{substream, Stream};
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Number of clinical deficit variables (27 blood + 3 body + 7 HIV).
pub const N_CLINICAL: usize = 37;

/// Category of a clinical variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClinicalCategory {
    /// Blood-test derived deficit (e.g. anaemia, renal function).
    Blood,
    /// Body composition (BMI extremes, muscle mass, waist).
    Body,
    /// HIV-specific (CD4 nadir, viral suppression history, ART burden).
    Hiv,
}

/// Static description of one clinical deficit variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClinicalVariable {
    /// Stable name, e.g. `blood_03` or `hiv_cd4_nadir`.
    pub name: String,
    /// Variable category.
    pub category: ClinicalCategory,
    /// Baseline deficit log-odds at frailty 0.
    pub intercept: f64,
    /// Slope of deficit log-odds in latent frailty.
    pub slope: f64,
}

/// The 37-variable panel, deterministic and shared.
pub fn clinical_panel() -> Vec<ClinicalVariable> {
    let mut panel = Vec::with_capacity(N_CLINICAL);
    for i in 0..27 {
        panel.push(ClinicalVariable {
            name: format!("blood_{i:02}"),
            category: ClinicalCategory::Blood,
            intercept: -2.6 + 0.8 * ((i as f64 * 0.83).sin()),
            slope: 2.8 + 1.2 * ((i as f64 * 1.31).cos()).abs(),
        });
    }
    for (i, label) in ["bmi_extreme", "low_muscle_mass", "waist_circumference"].iter().enumerate() {
        panel.push(ClinicalVariable {
            name: format!("body_{label}"),
            category: ClinicalCategory::Body,
            intercept: -2.2 + 0.3 * i as f64,
            slope: 3.0,
        });
    }
    for (i, label) in [
        "cd4_nadir_low",
        "detectable_viraemia_history",
        "art_regimen_burden",
        "years_infected_high",
        "aids_event_history",
        "lipodystrophy",
        "coinfection",
    ]
    .iter()
    .enumerate()
    {
        panel.push(ClinicalVariable {
            name: format!("hiv_{label}"),
            category: ClinicalCategory::Hiv,
            intercept: -1.9 + 0.25 * ((i as f64 * 1.7).sin()),
            slope: 2.4,
        });
    }
    debug_assert_eq!(panel.len(), N_CLINICAL);
    panel
}

/// One clinical assessment: the 37 deficit scores at a visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClinicalAssessment {
    /// Assessed patient.
    pub patient: PatientId,
    /// Visit month (0, 9 or 18).
    pub month: usize,
    /// Deficit score per variable: 0.0, 0.5 or 1.0.
    pub deficits: Vec<f64>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Draw one visit's assessment from the latent frailty at that month.
pub fn assess(
    patient: &Patient,
    trajectory: &Trajectory,
    month: usize,
    panel: &[ClinicalVariable],
    seed: u64,
) -> ClinicalAssessment {
    let frailty = trajectory.frailty[month];
    let mut rng: StdRng = substream(seed, Stream::Clinical, patient.id.0 as u64, month as u64);
    let deficits = panel
        .iter()
        .map(|v| {
            let p = sigmoid(v.intercept + v.slope * frailty);
            let u: f64 = rng.random();
            // Graded deficit: full when well past the draw, partial when
            // near it — mimics Searle's 0/0.5/1 coding of lab cutoffs.
            if u < p * 0.7 {
                1.0
            } else if u < p {
                0.5
            } else {
                0.0
            }
        })
        .collect();
    ClinicalAssessment { patient: patient.id, month, deficits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CohortConfig;
    use crate::domains::DomainVector;
    use crate::patient::Clinic;
    use crate::trajectory;

    fn patient_with_capacity(id: u32, cap: f64) -> (Patient, Trajectory) {
        let p = Patient {
            id: PatientId(id),
            clinic: Clinic::Modena,
            age: 65.0,
            years_with_hiv: 20.0,
            baseline_capacity: DomainVector::splat(cap),
            baseline_frailty: 1.0 - cap,
        };
        let cfg = CohortConfig::paper(1).clinics[0].clone();
        let t = trajectory::simulate(&p, &cfg, 11);
        (p, t)
    }

    #[test]
    fn panel_matches_paper_breakdown() {
        let panel = clinical_panel();
        assert_eq!(panel.len(), 37);
        let blood = panel.iter().filter(|v| v.category == ClinicalCategory::Blood).count();
        let body = panel.iter().filter(|v| v.category == ClinicalCategory::Body).count();
        let hiv = panel.iter().filter(|v| v.category == ClinicalCategory::Hiv).count();
        assert_eq!((blood, body, hiv), (27, 3, 7));
        let names: std::collections::HashSet<_> = panel.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names.len(), 37);
    }

    #[test]
    fn deficit_scores_are_graded() {
        let (p, t) = patient_with_capacity(0, 0.5);
        let a = assess(&p, &t, 9, &clinical_panel(), 42);
        assert_eq!(a.deficits.len(), 37);
        for &d in &a.deficits {
            assert!(d == 0.0 || d == 0.5 || d == 1.0);
        }
    }

    #[test]
    fn frail_patients_accumulate_more_deficits() {
        let panel = clinical_panel();
        let mut frail_total = 0.0;
        let mut fit_total = 0.0;
        for id in 0..30 {
            let (pf, tf) = patient_with_capacity(id, 0.2);
            let (ph, th) = patient_with_capacity(id + 100, 0.9);
            frail_total += assess(&pf, &tf, 0, &panel, 42).deficits.iter().sum::<f64>();
            fit_total += assess(&ph, &th, 0, &panel, 42).deficits.iter().sum::<f64>();
        }
        assert!(frail_total > fit_total * 1.5, "frail {frail_total} vs fit {fit_total}");
    }

    #[test]
    fn assessment_is_deterministic() {
        let (p, t) = patient_with_capacity(5, 0.6);
        let panel = clinical_panel();
        assert_eq!(assess(&p, &t, 9, &panel, 42), assess(&p, &t, 9, &panel, 42));
        assert_ne!(assess(&p, &t, 9, &panel, 42), assess(&p, &t, 9, &panel, 43));
    }

    #[test]
    fn different_visits_differ() {
        let (p, t) = patient_with_capacity(6, 0.6);
        let panel = clinical_panel();
        let a0 = assess(&p, &t, 0, &panel, 42);
        let a18 = assess(&p, &t, 18, &panel, 42);
        assert_ne!(a0.deficits, a18.deficits);
    }
}
