//! The cohort generator: assembles patients, trajectories, PRO panels,
//! activity traces, clinical assessments and outcomes into one
//! deterministic [`CohortData`].

use crate::activity::ActivityTrace;
use crate::clinical::{ClinicalAssessment, ClinicalVariable};
use crate::config::CohortConfig;
use crate::domains::{Domain, DomainVector};
use crate::outcomes::OutcomeRecord;
use crate::patient::{Patient, PatientId};
use crate::rng::{normal, substream, Stream};
use crate::stream::CohortStream;
use crate::trajectory::{self, Trajectory};
use serde::{Deserialize, Serialize};

/// Weekly PRO observations: `series[patient][question][week]`,
/// `None` = the app prompt went unanswered (a gap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProPanel {
    /// Per-patient, per-question weekly answer series.
    pub series: Vec<Vec<Vec<Option<u8>>>>,
}

impl ProPanel {
    /// Weekly series of one `(patient, question)` pair.
    pub fn get(&self, patient: PatientId, question: usize) -> &[Option<u8>] {
        &self.series[patient.0 as usize][question]
    }

    /// Number of weekly observation slots.
    pub fn n_weeks(&self) -> usize {
        self.series.first().and_then(|p| p.first()).map(|s| s.len()).unwrap_or(0)
    }
}

/// A fully generated synthetic cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CohortData {
    /// The generating configuration (for provenance).
    pub config: CohortConfig,
    /// Enrolled patients, indexed by `PatientId`.
    pub patients: Vec<Patient>,
    /// Latent trajectories — **for tests/validation only**, never features.
    pub latent: Vec<Trajectory>,
    /// Weekly PRO observations with gaps.
    pub pro: ProPanel,
    /// Daily activity traces.
    pub activity: Vec<ActivityTrace>,
    /// Clinical assessments: one entry per patient per visit month.
    pub clinical: Vec<ClinicalAssessment>,
    /// Outcome measurements at months 9 and 18.
    pub outcomes: Vec<OutcomeRecord>,
    /// The clinical variable panel the assessments are scored against.
    pub clinical_panel: Vec<ClinicalVariable>,
}

impl CohortData {
    /// The patient's clinic.
    pub fn clinic_of(&self, patient: PatientId) -> crate::patient::Clinic {
        self.patients[patient.0 as usize].clinic
    }

    /// The clinical assessment of a patient at a visit month, if any.
    pub fn assessment(&self, patient: PatientId, month: usize) -> Option<&ClinicalAssessment> {
        self.clinical.iter().find(|a| a.patient == patient && a.month == month)
    }

    /// The outcome record of a patient at a visit month, if any.
    pub fn outcome(&self, patient: PatientId, month: usize) -> Option<&OutcomeRecord> {
        self.outcomes.iter().find(|o| o.patient == patient && o.month == month)
    }
}

/// Draw a patient's demographics and baseline latent state.
pub(crate) fn make_patient(
    id: u32,
    clinic_cfg: &crate::config::ClinicConfig,
    seed: u64,
) -> Patient {
    let mut rng = substream(seed, Stream::Baseline, id as u64, 0);
    // OPLWH: 50+, right-skewed age distribution.
    let age = 50.0 + 14.0 * (normal(&mut rng).abs() * 0.6 + 0.2).min(2.2);
    let years_with_hiv = (8.0 + 9.0 * (normal(&mut rng) * 0.5 + 1.0)).clamp(1.0, 40.0);

    // Common wellness factor, degraded by age and infection duration
    // (the paper's "accentuated ageing" in long-lived HIV patients).
    let g = 0.72 - 0.004 * (age - 60.0) - 0.003 * (years_with_hiv - 15.0)
        + clinic_cfg.baseline_spread * normal(&mut rng);
    let mut baseline = DomainVector::splat(0.0);
    for d in Domain::ALL {
        let v = g + 0.07 * normal(&mut rng);
        baseline.set(d, v.clamp(0.05, 0.98));
    }
    let baseline_frailty = trajectory::frailty_from_capacity(&baseline, 0.5);
    Patient {
        id: PatientId(id),
        clinic: clinic_cfg.clinic,
        age,
        years_with_hiv,
        baseline_capacity: baseline,
        baseline_frailty,
    }
}

/// Generate the full cohort for `config`.
///
/// A thin collect over [`CohortStream`]: each patient is produced by
/// the streaming generator (whose draws are keyed purely on the
/// patient id) and appended in id order, so this materialised form and
/// the streamed form are byte-identical by construction — pinned by
/// `tests/stream_equivalence.rs`.
pub fn generate(config: &CohortConfig) -> CohortData {
    let n = config.total_patients();
    let mut patients = Vec::with_capacity(n);
    let mut latent = Vec::with_capacity(n);
    let mut pro_series = Vec::with_capacity(n);
    let mut activity_traces = Vec::with_capacity(n);
    let mut clinical_records = Vec::with_capacity(n * crate::VISIT_MONTHS.len());
    let mut outcome_records = Vec::with_capacity(n * 2);

    let mut stream = CohortStream::new(config);
    let panel = stream.panel().to_vec();
    for record in &mut stream {
        patients.push(record.patient);
        latent.push(record.latent);
        pro_series.push(record.pro);
        activity_traces.push(record.activity);
        clinical_records.extend(record.clinical);
        outcome_records.extend(record.outcomes);
    }

    CohortData {
        config: config.clone(),
        patients,
        latent,
        pro: ProPanel { series: pro_series },
        activity: activity_traces,
        clinical: clinical_records,
        outcomes: outcome_records,
        clinical_panel: panel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::missing::gap_lengths;
    use crate::patient::Clinic;
    use crate::{STUDY_MONTHS, WEEKS_PER_MONTH};

    fn small() -> CohortData {
        generate(&CohortConfig::small(42))
    }

    #[test]
    fn cohort_has_configured_size_and_structure() {
        let data = small();
        let n = data.config.total_patients();
        assert_eq!(data.patients.len(), n);
        assert_eq!(data.latent.len(), n);
        assert_eq!(data.pro.series.len(), n);
        assert_eq!(data.activity.len(), n);
        assert_eq!(data.clinical.len(), n * 3);
        assert_eq!(data.outcomes.len(), n * 2);
        assert_eq!(data.pro.n_weeks(), STUDY_MONTHS * WEEKS_PER_MONTH);
    }

    #[test]
    fn patient_ids_are_dense_and_ordered() {
        let data = small();
        for (i, p) in data.patients.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
        }
    }

    #[test]
    fn clinics_are_assigned_in_blocks() {
        let data = generate(&CohortConfig::paper(1));
        let modena = data.patients.iter().filter(|p| p.clinic == Clinic::Modena).count();
        let sydney = data.patients.iter().filter(|p| p.clinic == Clinic::Sydney).count();
        let hk = data.patients.iter().filter(|p| p.clinic == Clinic::HongKong).count();
        assert_eq!((modena, sydney, hk), (128, 100, 33));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.patients, b.patients);
        assert_eq!(a.pro.series, b.pro.series);
        assert_eq!(a.outcomes, b.outcomes);
        let c = generate(&CohortConfig::small(43));
        assert_ne!(a.outcomes, c.outcomes);
    }

    #[test]
    fn ages_are_fifty_plus() {
        let data = small();
        for p in &data.patients {
            assert!(p.age >= 50.0, "age {}", p.age);
            assert!(p.age < 95.0);
        }
    }

    #[test]
    fn gap_statistics_match_paper_scale() {
        let data = generate(&CohortConfig::paper(7));
        let mut total_gaps = 0usize;
        let mut total_len = 0usize;
        let mut max_len = 0usize;
        for patient in &data.pro.series {
            for series in patient {
                for len in gap_lengths(series) {
                    total_gaps += 1;
                    total_len += len;
                    max_len = max_len.max(len);
                }
            }
        }
        let per_patient = total_gaps as f64 / data.patients.len() as f64;
        let mean_len = total_len as f64 / total_gaps as f64;
        assert!((80.0..=140.0).contains(&per_patient), "gaps/patient {per_patient} (paper ≈108)");
        assert!((3.5..=6.0).contains(&mean_len), "mean gap {mean_len} (paper ≈5)");
        assert!(max_len <= 17, "max gap {max_len} (paper max 17)");
    }

    #[test]
    fn outcome_distributions_match_fig1_shape() {
        let data = generate(&CohortConfig::paper(11));
        let qols: Vec<f64> = data.outcomes.iter().map(|o| o.qol).collect();
        let high = qols.iter().filter(|&&q| q >= 0.6).count();
        assert!(high as f64 / qols.len() as f64 > 0.6, "QoL should skew high (Fig 1a)");
        let sppb_high = data.outcomes.iter().filter(|o| o.sppb >= 9).count();
        assert!(
            sppb_high as f64 / data.outcomes.len() as f64 > 0.5,
            "SPPB mass should sit at 9-12 (Fig 1b)"
        );
        let falls = data.outcomes.iter().filter(|o| o.falls).count();
        let rate = falls as f64 / data.outcomes.len() as f64;
        assert!(
            (0.05..=0.30).contains(&rate),
            "falls rate {rate} should be a small minority (Fig 1c)"
        );
    }

    #[test]
    fn lookup_helpers_work() {
        let data = small();
        let pid = data.patients[0].id;
        assert!(data.assessment(pid, 0).is_some());
        assert!(data.assessment(pid, 9).is_some());
        assert!(data.assessment(pid, 5).is_none());
        assert!(data.outcome(pid, 18).is_some());
        assert!(data.outcome(pid, 0).is_none());
        assert_eq!(data.clinic_of(pid), data.patients[0].clinic);
    }

    #[test]
    fn hong_kong_baselines_are_more_homogeneous() {
        let data = generate(&CohortConfig::paper(3));
        let spread = |clinic: Clinic| {
            let vals: Vec<f64> = data
                .patients
                .iter()
                .filter(|p| p.clinic == clinic)
                .map(|p| p.baseline_capacity.mean())
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        assert!(spread(Clinic::HongKong) < spread(Clinic::Modena));
    }
}
