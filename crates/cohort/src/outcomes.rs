//! Outcome generation at the two assessment visits (months 9 and 18).
//!
//! The three outcomes and their target distributions come from the
//! paper's Fig. 1: QoL (EQ-5D VAS–like, in `[0,1]`, strongly skewed toward
//! 0.7–1.0), SPPB (integers 0–12, mass at 9–12) and Falls (binary,
//! heavily imbalanced toward `false`).

use crate::domains::{Domain, DomainVector};
use crate::patient::{Patient, PatientId};
use crate::rng::{normal, substream, Stream};
use crate::trajectory::Trajectory;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Outcomes measured at one clinical visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeRecord {
    /// Assessed patient.
    pub patient: PatientId,
    /// Visit month (9 or 18).
    pub month: usize,
    /// Quality of Life in `[0,1]`.
    pub qol: f64,
    /// Short Physical Performance Battery, integer 0–12.
    pub sppb: u8,
    /// Whether the patient fell at least once since the previous visit.
    pub falls: bool,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// QoL: a weighted capacity readout, psychological and vitality heavy
/// (self-perceived health), squashed so the population skews high.
fn qol_from_state(capacity: &DomainVector, noise: f64) -> f64 {
    let weights = DomainVector { values: [0.9, 0.7, 1.5, 1.3, 0.6] };
    let wellness = capacity.weighted_mean(&weights);
    // Affine + clamp: healthy capacity (~0.7) maps to QoL ~0.8.
    (0.18 + 0.92 * wellness + noise).clamp(0.02, 1.0)
}

/// SPPB: movement of the lower limbs — locomotion dominated.
fn sppb_from_state(capacity: &DomainVector, noise: f64) -> u8 {
    let physical = 0.75 * capacity.get(Domain::Locomotion) + 0.25 * capacity.get(Domain::Vitality);
    let score = 12.9 * (0.12 + 0.95 * physical) + noise;
    score.round().clamp(0.0, 12.0) as u8
}

/// Falls risk over a 9-month window. The logit is deliberately steep:
/// fall risk is strongly separated by health state (healthy patients
/// almost never fall, very frail ones almost surely do), which is what
/// lets the paper's models reach 93–95% accuracy on a ~13%-positive
/// outcome. Two signals drive it:
///
/// * **frailty** — read directly by the clinical FI, which is why the
///   paper's recall-True jumps sharply when FI is added (2%→54% KD,
///   52%→68% DD);
/// * the hidden **balance trait** — visible to the DD models through
///   the three balance-specific PRO items, but *absent from the
///   expert's ICI subset*: the information the KD compression loses,
///   and the reason its Falls model without FI collapses to the
///   majority class.
fn fall_logit(frailty: f64, balance: f64, capacity: &DomainVector) -> f64 {
    let risk =
        3.3 * frailty + 1.7 * (1.0 - balance) + 0.5 * (1.0 - capacity.get(Domain::Locomotion));
    // Sharpen around a level one-plus standard deviation above the
    // population-typical risk, keeping positives a ~13% minority.
    5.0 * (risk - 2.92)
}

/// Draw the outcome record for one visit.
pub fn measure(
    patient: &Patient,
    trajectory: &Trajectory,
    month: usize,
    noise_scale: f64,
    seed: u64,
) -> OutcomeRecord {
    let mut rng = substream(seed, Stream::Outcomes, patient.id.0 as u64, month as u64);
    let capacity = &trajectory.capacity[month];
    let frailty = trajectory.frailty[month];
    let balance = crate::trajectory::balance_trait(patient, seed);
    let qol = qol_from_state(capacity, 0.055 * noise_scale * normal(&mut rng));
    let sppb = sppb_from_state(capacity, 0.55 * noise_scale * normal(&mut rng));
    let p_fall = sigmoid(fall_logit(frailty, balance, capacity));
    let falls = rng.random::<f64>() < p_fall;
    OutcomeRecord { patient: patient.id, month, qol, sppb, falls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CohortConfig;
    use crate::patient::Clinic;
    use crate::trajectory;

    fn make(id: u32, cap: f64) -> (Patient, Trajectory) {
        let p = Patient {
            id: PatientId(id),
            clinic: Clinic::Modena,
            age: 64.0,
            years_with_hiv: 17.0,
            baseline_capacity: DomainVector::splat(cap),
            baseline_frailty: 1.0 - cap,
        };
        let cfg = CohortConfig::paper(1).clinics[0].clone();
        let t = trajectory::simulate(&p, &cfg, 5);
        (p, t)
    }

    #[test]
    fn outcomes_are_in_range() {
        for id in 0..40 {
            let (p, t) = make(id, 0.3 + 0.015 * id as f64);
            for month in [9, 18] {
                let o = measure(&p, &t, month, 1.0, 42);
                assert!((0.0..=1.0).contains(&o.qol));
                assert!(o.sppb <= 12);
            }
        }
    }

    #[test]
    fn healthy_patients_score_higher() {
        let (ph, th) = make(1, 0.9);
        let (pf, tf) = make(2, 0.25);
        let oh = measure(&ph, &th, 9, 1.0, 42);
        let of = measure(&pf, &tf, 9, 1.0, 42);
        assert!(oh.qol > of.qol);
        assert!(oh.sppb > of.sppb);
    }

    #[test]
    fn frail_patients_fall_more_often() {
        let mut frail_falls = 0;
        let mut fit_falls = 0;
        for id in 0..200 {
            let (pf, tf) = make(id, 0.25);
            let (ph, th) = make(id + 1000, 0.9);
            frail_falls += usize::from(measure(&pf, &tf, 9, 1.0, 42).falls);
            fit_falls += usize::from(measure(&ph, &th, 9, 1.0, 42).falls);
        }
        assert!(frail_falls > fit_falls * 3, "frail {frail_falls} vs fit {fit_falls}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let (p, t) = make(7, 0.6);
        assert_eq!(measure(&p, &t, 9, 1.0, 42), measure(&p, &t, 9, 1.0, 42));
    }

    #[test]
    fn qol_noise_does_not_escape_bounds() {
        let (p, t) = make(8, 0.99);
        for seed in 0..50 {
            let o = measure(&p, &t, 18, 3.0, seed);
            assert!((0.0..=1.0).contains(&o.qol));
        }
    }
}
