//! Streaming per-patient cohort generation.
//!
//! Every random draw in the simulator is made on a keyed substream —
//! `substream(seed, stream, patient_id, item)` — so one patient's data
//! depends only on `(config, patient_id)`, never on how many other
//! patients were generated before it or in what order. That property is
//! what this module exposes: a [`CohortStream`] yields fully generated
//! [`PatientRecord`]s one at a time (or in fixed-size chunks via
//! [`CohortStream::chunks`]) with **O(1)** cohort state, and the
//! full-cohort [`crate::generate`] is nothing but `collect` over it.
//!
//! Determinism contract (pinned by `tests/stream_equivalence.rs`):
//! for any chunk size, concatenating the streamed records reproduces
//! the materialised [`crate::CohortData`] bit for bit.

use crate::activity::{self, ActivityTrace};
use crate::clinical::{self, clinical_panel, ClinicalAssessment, ClinicalVariable};
use crate::config::{ClinicConfig, CohortConfig};
use crate::generator::make_patient;
use crate::missing::inject_gaps;
use crate::outcomes::{self, OutcomeRecord};
use crate::patient::Patient;
use crate::pro::{N_PRO, QUESTION_BANK};
use crate::rng::{substream, Stream};
use crate::trajectory::{self, Trajectory};
use crate::{STUDY_MONTHS, VISIT_MONTHS, WEEKS_PER_MONTH};
use serde::{Deserialize, Serialize};

/// Everything the simulator produces for one patient: the same fields
/// the cohort-wide [`crate::CohortData`] holds, cut along the patient
/// axis. `clinical` has one entry per [`VISIT_MONTHS`] visit and
/// `outcomes` one per outcome month (9, then 18), in the same order the
/// full-cohort generator appends them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatientRecord {
    /// Demographics and baseline latent state.
    pub patient: Patient,
    /// Latent trajectory — tests/validation only, never features.
    pub latent: Trajectory,
    /// Weekly PRO answers with gaps: `pro[question][week]`.
    pub pro: Vec<Vec<Option<u8>>>,
    /// Daily activity trace.
    pub activity: ActivityTrace,
    /// Clinical assessments at months 0, 9, 18 (in that order).
    pub clinical: Vec<ClinicalAssessment>,
    /// Outcome measurements at months 9 and 18 (in that order).
    pub outcomes: Vec<OutcomeRecord>,
}

impl PatientRecord {
    /// Field-by-field equality with NaN-tolerant (bitwise) float
    /// comparison on the activity trace, whose not-worn days are `NaN`
    /// and make derived `PartialEq` irreflexive. This is the relation
    /// the streaming determinism contract is stated in.
    pub fn bits_eq(&self, other: &PatientRecord) -> bool {
        self.patient == other.patient
            && self.latent == other.latent
            && self.pro == other.pro
            && self.activity.bits_eq(&other.activity)
            && self.clinical == other.clinical
            && self.outcomes == other.outcomes
    }
}

/// The clinic block a patient id falls in. Ids are assigned densely in
/// `config.clinics` order (the same block layout [`crate::generate`]
/// has always used), so the lookup is a prefix-sum walk.
pub fn clinic_config_of(config: &CohortConfig, id: u32) -> Option<&ClinicConfig> {
    let mut first = 0usize;
    for clinic_cfg in &config.clinics {
        let next = first + clinic_cfg.n_patients;
        if (id as usize) < next {
            return Some(clinic_cfg);
        }
        first = next;
    }
    None
}

/// Generate one patient's full record. Pure in `(config, panel, id)`:
/// every draw comes off a substream keyed on the patient id, so calls
/// can be made in any order, any number of times, from any thread, and
/// always reproduce the same bytes. `panel` must be the shared
/// [`clinical_panel`] (passed in so per-patient calls don't rebuild it).
///
/// Returns `None` when `id` is outside the configured cohort.
pub fn generate_patient(
    config: &CohortConfig,
    panel: &[ClinicalVariable],
    id: u32,
) -> Option<PatientRecord> {
    let clinic_cfg = clinic_config_of(config, id)?;
    let seed = config.seed;
    let n_weeks = STUDY_MONTHS * WEEKS_PER_MONTH;

    let patient = make_patient(id, clinic_cfg, seed);
    let traj = trajectory::simulate(&patient, clinic_cfg, seed);
    let balance = trajectory::balance_trait(&patient, seed);

    // Weekly PRO answers for all 56 questions, then gaps.
    let mut per_question: Vec<Vec<Option<u8>>> = Vec::with_capacity(N_PRO);
    for (q_idx, question) in QUESTION_BANK.iter().enumerate() {
        let mut rng_answers = substream(seed, Stream::Pro, patient.id.0 as u64, q_idx as u64);
        let mut series: Vec<Option<u8>> = (0..n_weeks)
            .map(|week| {
                let month = week / WEEKS_PER_MONTH + 1;
                let domain_theta = traj.capacity[month].get(question.domain);
                let bl = question.balance_loading;
                let theta = (1.0 - bl) * domain_theta + bl * balance;
                Some(question.answer(theta, clinic_cfg.observation_noise, &mut rng_answers))
            })
            .collect();
        let mut rng_gaps = substream(seed, Stream::Gaps, patient.id.0 as u64, q_idx as u64);
        inject_gaps(&mut series, &config.missingness, &mut rng_gaps);
        per_question.push(series);
    }

    let activity = activity::simulate(&patient, &traj, clinic_cfg, seed);

    let clinical_records: Vec<ClinicalAssessment> = VISIT_MONTHS
        .into_iter()
        .map(|month| clinical::assess(&patient, &traj, month, panel, seed))
        .collect();
    let outcome_records: Vec<OutcomeRecord> = [9, 18]
        .into_iter()
        .map(|month| outcomes::measure(&patient, &traj, month, clinic_cfg.observation_noise, seed))
        .collect();

    Some(PatientRecord {
        patient,
        latent: traj,
        pro: per_question,
        activity,
        clinical: clinical_records,
        outcomes: outcome_records,
    })
}

/// An iterator of [`PatientRecord`]s over a cohort configuration, in
/// patient-id order, holding one shared clinical panel and otherwise
/// O(1) state — the streaming front end of the simulator.
pub struct CohortStream<'a> {
    config: &'a CohortConfig,
    panel: Vec<ClinicalVariable>,
    next: u32,
    total: u32,
}

impl<'a> CohortStream<'a> {
    /// Stream every patient of `config`, ids `0..total_patients()`.
    pub fn new(config: &'a CohortConfig) -> CohortStream<'a> {
        CohortStream {
            config,
            panel: clinical_panel(),
            next: 0,
            total: config.total_patients() as u32,
        }
    }

    /// Stream the patients with ids `start..end` (clamped to the
    /// cohort), sharing one clinical panel. Generation is pure in
    /// `(config, id)`, so a range stream yields bit-identical records
    /// to the same ids of a full stream — the primitive parallel
    /// pipelines fan chunks of the cohort across workers with.
    pub fn range(config: &'a CohortConfig, start: u32, end: u32) -> CohortStream<'a> {
        let total = config.total_patients() as u32;
        let end = end.min(total);
        CohortStream { config, panel: clinical_panel(), next: start.min(end), total: end }
    }

    /// The clinical variable panel records are scored against.
    pub fn panel(&self) -> &[ClinicalVariable] {
        &self.panel
    }

    /// Remaining patients.
    pub fn remaining(&self) -> usize {
        (self.total - self.next) as usize
    }

    /// Adapt into fixed-size chunks of records. The final chunk may be
    /// short; `chunk_patients` is clamped to at least 1.
    pub fn chunks(self, chunk_patients: usize) -> CohortChunks<'a> {
        CohortChunks { stream: self, chunk: chunk_patients.max(1) }
    }
}

impl Iterator for CohortStream<'_> {
    type Item = PatientRecord;

    fn next(&mut self) -> Option<PatientRecord> {
        if self.next >= self.total {
            return None;
        }
        let record = generate_patient(self.config, &self.panel, self.next)
            .expect("ids below total_patients() always fall in a clinic block");
        self.next += 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining();
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CohortStream<'_> {}

/// Fixed-size chunking over a [`CohortStream`]; see
/// [`CohortStream::chunks`].
pub struct CohortChunks<'a> {
    stream: CohortStream<'a>,
    chunk: usize,
}

impl Iterator for CohortChunks<'_> {
    type Item = Vec<PatientRecord>;

    fn next(&mut self) -> Option<Vec<PatientRecord>> {
        if self.stream.remaining() == 0 {
            return None;
        }
        let take = self.chunk.min(self.stream.remaining());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(self.stream.next().expect("remaining() said more records exist"));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_length_matches_config() {
        let cfg = CohortConfig::small(42);
        let stream = CohortStream::new(&cfg);
        assert_eq!(stream.len(), cfg.total_patients());
        assert_eq!(stream.count(), cfg.total_patients());
    }

    #[test]
    fn records_are_id_ordered_and_block_assigned() {
        let cfg = CohortConfig::small(42);
        for (i, record) in CohortStream::new(&cfg).enumerate() {
            assert_eq!(record.patient.id.0 as usize, i);
            let expected = clinic_config_of(&cfg, i as u32).unwrap().clinic;
            assert_eq!(record.patient.clinic, expected);
        }
    }

    #[test]
    fn generate_patient_is_order_independent() {
        let cfg = CohortConfig::small(7);
        let panel = clinical_panel();
        // Generating id 5 cold equals generating it after 0..5.
        let cold = generate_patient(&cfg, &panel, 5).unwrap();
        let warm = CohortStream::new(&cfg).nth(5).unwrap();
        assert!(cold.bits_eq(&warm));
    }

    #[test]
    fn out_of_range_id_is_none() {
        let cfg = CohortConfig::small(42);
        let panel = clinical_panel();
        assert!(generate_patient(&cfg, &panel, cfg.total_patients() as u32).is_none());
        assert!(clinic_config_of(&cfg, u32::MAX).is_none());
    }

    #[test]
    fn chunk_sizes_partition_without_loss() {
        let cfg = CohortConfig::small(42);
        let n = cfg.total_patients();
        for chunk in [1usize, 7, n, n + 10] {
            let total: usize = CohortStream::new(&cfg).chunks(chunk).map(|c| c.len()).sum();
            assert_eq!(total, n, "chunk size {chunk}");
        }
    }
}
