//! Patients and clinics.

use crate::domains::DomainVector;
use serde::{Deserialize, Serialize};

/// Stable patient identifier (index into the cohort's panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatientId(pub u32);

/// The three MySAwH clinical centres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Clinic {
    /// Modena, Italy — 128 patients in the paper.
    Modena,
    /// Sydney, Australia — 100 patients.
    Sydney,
    /// Hong Kong, China — 33 patients.
    HongKong,
}

impl Clinic {
    /// All clinics in the paper's order.
    pub const ALL: [Clinic; 3] = [Clinic::Modena, Clinic::Sydney, Clinic::HongKong];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Clinic::Modena => "Modena",
            Clinic::Sydney => "Sydney",
            Clinic::HongKong => "Hong Kong",
        }
    }

    /// Parse a display name back into a clinic (the inverse of
    /// [`Clinic::name`]), for ingesting exported sample frames.
    pub fn from_name(name: &str) -> Option<Clinic> {
        Clinic::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One enrolled patient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Patient {
    /// Cohort-unique id.
    pub id: PatientId,
    /// Enrolling clinic.
    pub clinic: Clinic,
    /// Age at enrolment (the cohort is 50+ by design — OPLWH).
    pub age: f64,
    /// Years since HIV diagnosis (the paper's proxy for accentuated
    /// biological ageing).
    pub years_with_hiv: f64,
    /// Baseline latent Intrinsic Capacity per domain (hidden from the
    /// learning pipeline; kept for tests and validation).
    pub baseline_capacity: DomainVector,
    /// Baseline latent frailty in `[0,1]` (hidden likewise).
    pub baseline_frailty: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clinic_names_are_distinct() {
        let names: std::collections::HashSet<_> = Clinic::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn patient_ids_order() {
        assert!(PatientId(3) < PatientId(10));
    }
}
