//! Simulation configuration.

use crate::patient::Clinic;
use serde::{Deserialize, Serialize};

/// Per-clinic generation parameters. The defaults encode the cohort
/// structure the paper reports and the inter-clinic heterogeneity its
/// Table 1 / Fig. 5 discussion attributes to data-collection protocols
/// and stratum size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClinicConfig {
    /// Which clinic this block describes.
    pub clinic: Clinic,
    /// Number of enrolled patients.
    pub n_patients: usize,
    /// Spread of baseline latent capacity across patients (smaller =
    /// more homogeneous cohort; the paper describes Hong Kong's as such).
    pub baseline_spread: f64,
    /// Extra observation noise on PRO and activity channels (protocol
    /// differences between centres).
    pub observation_noise: f64,
    /// Additive shift applied to the activity-tracker scale (device /
    /// protocol calibration differences).
    pub activity_shift: f64,
}

/// PRO missingness process parameters, matched to the paper's §3 QA
/// statistics: gaps of ~5 consecutive missing observations on average
/// (max 17), ≈108 gaps per patient across all variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissingnessConfig {
    /// Probability a gap starts at any observed week of a variable series.
    pub gap_start_prob: f64,
    /// Mean gap length (geometric distribution).
    pub mean_gap_len: f64,
    /// Hard cap on gap length (paper: max 17 consecutive missing).
    pub max_gap_len: usize,
}

impl Default for MissingnessConfig {
    fn default() -> Self {
        // 56 variables × 72 weeks; gap_start_prob tuned so that the
        // per-patient gap count averages ≈108 (≈1.9 gaps per series)
        // once gap occupancy is accounted for.
        MissingnessConfig { gap_start_prob: 0.031, mean_gap_len: 5.0, max_gap_len: 17 }
    }
}

/// Full cohort simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortConfig {
    /// Per-clinic blocks.
    pub clinics: Vec<ClinicConfig>,
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Missingness process for PRO series.
    pub missingness: MissingnessConfig,
}

impl CohortConfig {
    /// The paper's cohort: 261 patients (Modena 128, Sydney 100,
    /// Hong Kong 33).
    pub fn paper(seed: u64) -> Self {
        CohortConfig {
            clinics: vec![
                ClinicConfig {
                    clinic: Clinic::Modena,
                    n_patients: 128,
                    baseline_spread: 0.16,
                    observation_noise: 1.0,
                    activity_shift: 0.0,
                },
                ClinicConfig {
                    clinic: Clinic::Sydney,
                    n_patients: 100,
                    baseline_spread: 0.15,
                    observation_noise: 1.05,
                    activity_shift: 300.0,
                },
                ClinicConfig {
                    clinic: Clinic::HongKong,
                    n_patients: 33,
                    baseline_spread: 0.09,
                    observation_noise: 1.35,
                    activity_shift: -400.0,
                },
            ],
            seed,
            missingness: MissingnessConfig::default(),
        }
    }

    /// A small cohort for fast tests (same three clinics, scaled down).
    /// A fifth of the paper's size keeps the cohort cheap while leaving
    /// enough patients that the paper's comparative geometry (many noisy
    /// features vs one lossy expert scalar) survives the scale-down; at
    /// an eighth, per-patient memorisation effects start dominating the
    /// DD-vs-KD margins under the paper's i.i.d. sample split.
    pub fn small(seed: u64) -> Self {
        let mut cfg = Self::paper(seed);
        for c in &mut cfg.clinics {
            c.n_patients = (c.n_patients / 5).max(4);
        }
        cfg
    }

    /// A population-scale cohort: the paper's three clinics with their
    /// 128:100:33 enrolment proportions stretched to roughly
    /// `n_patients` total (each clinic keeps at least one patient, so
    /// tiny targets may round the total up). Noise/spread/shift
    /// parameters stay at the paper's values — only enrolment scales.
    pub fn scaled(seed: u64, n_patients: usize) -> Self {
        let mut cfg = Self::paper(seed);
        for c in &mut cfg.clinics {
            c.n_patients = (c.n_patients * n_patients / 261).max(1);
        }
        cfg
    }

    /// Total number of patients.
    pub fn total_patients(&self) -> usize {
        self.clinics.iter().map(|c| c.n_patients).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cohort_has_261_patients() {
        let cfg = CohortConfig::paper(1);
        assert_eq!(cfg.total_patients(), 261);
        assert_eq!(cfg.clinics.len(), 3);
        assert_eq!(cfg.clinics[0].n_patients, 128);
        assert_eq!(cfg.clinics[1].n_patients, 100);
        assert_eq!(cfg.clinics[2].n_patients, 33);
    }

    #[test]
    fn hong_kong_is_most_homogeneous_and_noisiest() {
        let cfg = CohortConfig::paper(1);
        let hk = &cfg.clinics[2];
        assert!(cfg.clinics.iter().all(|c| c.baseline_spread >= hk.baseline_spread));
        assert!(cfg.clinics.iter().all(|c| c.observation_noise <= hk.observation_noise));
    }

    #[test]
    fn small_cohort_scales_down() {
        let cfg = CohortConfig::small(1);
        assert!(cfg.total_patients() < 60);
        assert!(cfg.clinics.iter().all(|c| c.n_patients >= 4));
    }

    #[test]
    fn scaled_cohort_preserves_proportions() {
        let cfg = CohortConfig::scaled(1, 100_000);
        let total = cfg.total_patients() as f64;
        assert!((99_000.0..=101_000.0).contains(&total));
        let modena = cfg.clinics[0].n_patients as f64;
        assert!((modena / total - 128.0 / 261.0).abs() < 0.01);
        // Degenerate targets still give every clinic one patient.
        let tiny = CohortConfig::scaled(1, 1);
        assert!(tiny.clinics.iter().all(|c| c.n_patients == 1));
        // Paper-scale target reproduces the paper cohort exactly.
        assert_eq!(CohortConfig::scaled(1, 261).clinics, CohortConfig::paper(1).clinics);
    }

    #[test]
    fn default_missingness_matches_paper_caps() {
        let m = MissingnessConfig::default();
        assert_eq!(m.max_gap_len, 17);
        assert!((m.mean_gap_len - 5.0).abs() < f64::EPSILON);
    }
}
