//! PRO missingness: the gap process matched to the paper's §3 QA
//! statistics (mean gap ≈ 5 consecutive missing observations, max 17).

use crate::config::MissingnessConfig;
use rand::rngs::StdRng;
use rand::RngExt;

/// Punch gaps into a weekly observation series in place: each `Some`
/// entry may start a gap (geometric length, capped), which overwrites
/// the following entries with `None`. Returns the number of gaps started.
pub fn inject_gaps<T>(
    series: &mut [Option<T>],
    cfg: &MissingnessConfig,
    rng: &mut StdRng,
) -> usize {
    let mut gaps = 0usize;
    let mut i = 0usize;
    // Geometric success probability giving the requested mean length.
    let p_end = 1.0 / cfg.mean_gap_len.max(1.0);
    while i < series.len() {
        if rng.random::<f64>() < cfg.gap_start_prob {
            // Draw the gap length: geometric with mean `mean_gap_len`,
            // truncated at `max_gap_len`.
            let mut len = 1usize;
            while len < cfg.max_gap_len && rng.random::<f64>() > p_end {
                len += 1;
            }
            let end = (i + len).min(series.len());
            for slot in &mut series[i..end] {
                *slot = None;
            }
            gaps += 1;
            // Skip one slot so adjacent gaps cannot merge into an
            // observed missing run longer than `max_gap_len`.
            i = end + 1;
        } else {
            i += 1;
        }
    }
    gaps
}

/// Lengths of the missing runs in a series (the QA statistics).
pub fn gap_lengths<T>(series: &[Option<T>]) -> Vec<usize> {
    let mut lengths = Vec::new();
    let mut run = 0usize;
    for slot in series {
        if slot.is_none() {
            run += 1;
        } else if run > 0 {
            lengths.push(run);
            run = 0;
        }
    }
    if run > 0 {
        lengths.push(run);
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissingnessConfig;
    use crate::rng::{substream, Stream};

    fn full_series(n: usize) -> Vec<Option<u8>> {
        vec![Some(3); n]
    }

    #[test]
    fn gaps_respect_the_hard_cap() {
        let cfg = MissingnessConfig { gap_start_prob: 0.2, mean_gap_len: 8.0, max_gap_len: 17 };
        let mut rng = substream(1, Stream::Gaps, 0, 0);
        for item in 0..50 {
            let mut s = full_series(72);
            let _ = item;
            inject_gaps(&mut s, &cfg, &mut rng);
            for len in gap_lengths(&s) {
                assert!(len <= 17, "gap of {len} exceeds cap");
            }
        }
    }

    #[test]
    fn mean_gap_length_is_near_target() {
        let cfg = MissingnessConfig::default();
        let mut rng = substream(2, Stream::Gaps, 0, 0);
        let mut all = Vec::new();
        for _ in 0..2000 {
            let mut s = full_series(72);
            inject_gaps(&mut s, &cfg, &mut rng);
            all.extend(gap_lengths(&s));
        }
        let mean = all.iter().sum::<usize>() as f64 / all.len() as f64;
        // Truncation at 17 pulls the mean slightly below the geometric's 5.
        assert!((3.8..=5.6).contains(&mean), "mean gap length {mean}");
    }

    #[test]
    fn gap_count_matches_paper_scale() {
        // 56 variables × 72 weeks per patient: the paper reports ≈108
        // gaps per patient on average.
        let cfg = MissingnessConfig::default();
        let mut total = 0usize;
        let n_patients = 50;
        for p in 0..n_patients {
            for v in 0..56 {
                let mut rng = substream(3, Stream::Gaps, p, v);
                let mut s = full_series(72);
                total += inject_gaps(&mut s, &cfg, &mut rng);
            }
        }
        let per_patient = total as f64 / n_patients as f64;
        assert!(
            (80.0..=140.0).contains(&per_patient),
            "gaps per patient {per_patient}, paper reports ≈108"
        );
    }

    #[test]
    fn gap_lengths_reads_runs_correctly() {
        let s = [Some(1), None, None, Some(1), None, Some(1), None, None, None];
        assert_eq!(gap_lengths(&s), vec![2, 1, 3]);
    }

    #[test]
    fn no_gaps_in_untouched_series() {
        assert!(gap_lengths(&full_series(10)).is_empty());
    }

    #[test]
    fn injection_is_deterministic_per_stream() {
        let cfg = MissingnessConfig::default();
        let run = |seed| {
            let mut rng = substream(seed, Stream::Gaps, 1, 1);
            let mut s = full_series(72);
            inject_gaps(&mut s, &cfg, &mut rng);
            s
        };
        assert_eq!(run(5), run(5));
    }
}
