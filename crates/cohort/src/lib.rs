//! # msaw-cohort
//!
//! A synthetic stand-in for the closed My Smart Age with HIV (MySAwH)
//! cohort the paper trained on. Real MySAwH data is identifiable health
//! data from 261 patients and is not distributable, so this crate
//! simulates a cohort with the same *shape*:
//!
//! * 261 patients across three clinics — Modena (128), Sydney (100),
//!   Hong Kong (33) — with ages 50+, years-since-HIV-diagnosis, and
//!   per-clinic protocol differences (Hong Kong is small and more
//!   homogeneous, which is what drives the paper's Table 1 anomalies);
//! * a latent health state per patient: five Intrinsic Capacity domains
//!   (locomotion, cognition, psychological, vitality, sensory) evolving
//!   monthly as a drifting AR(1), plus a frailty level coupled to them;
//! * 56 PRO questionnaire items (Likert 1–5, domain-linked, with mixed
//!   polarity and per-item discrimination) observed **weekly** through
//!   the smartphone app, with realistic gap structure (mean gap ≈ 5
//!   consecutive missing observations, max 17, ≈ 108 gaps per patient —
//!   the paper's §3 Quality Assurance statistics);
//! * daily activity-tracker traces (step count, sleep hours, calories);
//! * clinical assessments at months 0, 9 and 18 with 37 deficit
//!   variables from which the Frailty Index is computed (Searle's
//!   standard procedure, as cited by the paper);
//! * outcome measurements at months 9 and 18: QoL (EQ-5D VAS–like, in
//!   `[0,1]`, skewed high), SPPB (integer 0–12, mass at 9–12) and Falls
//!   (binary, ≈15% positive), matching the Fig. 1 distributions.
//!
//! Everything is deterministic given [`CohortConfig::seed`]. The latent
//! trajectories are exported for *tests only* — the learning pipeline
//! must never see them.

pub mod activity;
pub mod clinical;
pub mod config;
pub mod domains;
pub mod generator;
pub mod missing;
pub mod outcomes;
pub mod patient;
pub mod pro;
pub mod rng;
pub mod stream;
pub mod trajectory;
pub mod validate;

pub use config::{ClinicConfig, CohortConfig, MissingnessConfig};
pub use domains::{Domain, DomainVector};
pub use generator::{generate, CohortData};
pub use outcomes::OutcomeRecord;
pub use patient::{Clinic, Patient, PatientId};
pub use pro::{ProQuestion, N_PRO, QUESTION_BANK};
pub use stream::{generate_patient, CohortStream, PatientRecord};

/// Months in the study (two 9-month windows).
pub const STUDY_MONTHS: usize = 18;
/// Weekly PRO cadence: 4 app prompts per month.
pub const WEEKS_PER_MONTH: usize = 4;
/// Days per month used by the activity tracker simulator.
pub const DAYS_PER_MONTH: usize = 30;
/// Clinical visit months (baseline and the two outcome visits).
pub const VISIT_MONTHS: [usize; 3] = [0, 9, 18];
