//! Daily activity-tracker traces: step count, sleep hours, calories.
//!
//! The commercial-grade wearable in MySAwH logged these three channels
//! daily. We generate them from the latent state: steps are driven by
//! locomotion and vitality (log-normal-ish daily variation, weekly
//! rhythm), sleep by the psychological domain, calories by a basal rate
//! plus activity. Occasional not-worn days become `NaN`.

use crate::config::ClinicConfig;
use crate::domains::Domain;
use crate::patient::Patient;
use crate::rng::{normal, substream, Stream};
use crate::trajectory::Trajectory;
use crate::{DAYS_PER_MONTH, STUDY_MONTHS};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Daily traces for one patient; each vector has
/// `STUDY_MONTHS * DAYS_PER_MONTH` entries, `NaN` = device not worn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityTrace {
    /// Steps per day.
    pub steps: Vec<f64>,
    /// Hours slept per night.
    pub sleep_hours: Vec<f64>,
    /// Active calories per day.
    pub calories: Vec<f64>,
}

/// Probability the device is not worn on a given day.
const NOT_WORN_PROB: f64 = 0.04;

/// Simulate a patient's daily activity over the study.
pub fn simulate(
    patient: &Patient,
    trajectory: &Trajectory,
    clinic_cfg: &ClinicConfig,
    seed: u64,
) -> ActivityTrace {
    let n_days = STUDY_MONTHS * DAYS_PER_MONTH;
    let mut rng = substream(seed, Stream::Activity, patient.id.0 as u64, 0);
    let mut steps = Vec::with_capacity(n_days);
    let mut sleep = Vec::with_capacity(n_days);
    let mut calories = Vec::with_capacity(n_days);

    for day in 0..n_days {
        // Month index 1..=18; the trajectory month governing this day.
        let month = (day / DAYS_PER_MONTH) + 1;
        let cap = &trajectory.capacity[month];
        if rng.random::<f64>() < NOT_WORN_PROB {
            steps.push(f64::NAN);
            sleep.push(f64::NAN);
            calories.push(f64::NAN);
            continue;
        }
        let loco = cap.get(Domain::Locomotion);
        let vita = cap.get(Domain::Vitality);
        let psych = cap.get(Domain::Psychological);

        // Weekly rhythm: weekends a little lower.
        let weekend = if day % 7 >= 5 { 0.88 } else { 1.0 };
        let base_steps = 1200.0 + 9500.0 * (0.65 * loco + 0.35 * vita);
        let noise = (0.35 * clinic_cfg.observation_noise * normal(&mut rng)).exp();
        let s = (base_steps * weekend * noise + clinic_cfg.activity_shift).max(0.0);
        steps.push(s);

        let base_sleep = 5.6 + 2.6 * psych;
        let sl =
            (base_sleep + 0.7 * clinic_cfg.observation_noise * normal(&mut rng)).clamp(2.0, 12.0);
        sleep.push(sl);

        let cal = (650.0 + 0.09 * s + 250.0 * vita + 60.0 * normal(&mut rng)).max(200.0);
        calories.push(cal);
    }
    ActivityTrace { steps, sleep_hours: sleep, calories }
}

impl ActivityTrace {
    /// Bitwise channel equality. Traces encode not-worn days as `NaN`,
    /// so `PartialEq` is irreflexive on any realistic trace — use this
    /// wherever two traces are compared for being *the same data*.
    pub fn bits_eq(&self, other: &ActivityTrace) -> bool {
        fn eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        eq(&self.steps, &other.steps)
            && eq(&self.sleep_hours, &other.sleep_hours)
            && eq(&self.calories, &other.calories)
    }

    /// Mean of a channel over the days of `month` (1-based), skipping
    /// not-worn days. `NaN` when the whole month is missing.
    pub fn monthly_mean(&self, channel: &[f64], month: usize) -> f64 {
        assert!((1..=STUDY_MONTHS).contains(&month), "month out of range");
        let start = (month - 1) * DAYS_PER_MONTH;
        let slice = &channel[start..start + DAYS_PER_MONTH];
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in slice {
            if !v.is_nan() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CohortConfig;
    use crate::domains::DomainVector;
    use crate::patient::{Clinic, PatientId};
    use crate::trajectory;

    fn setup(capacity: f64) -> (Patient, Trajectory, ClinicConfig) {
        let p = Patient {
            id: PatientId(1),
            clinic: Clinic::Modena,
            age: 60.0,
            years_with_hiv: 15.0,
            baseline_capacity: DomainVector::splat(capacity),
            baseline_frailty: 1.0 - capacity,
        };
        let cfg = CohortConfig::paper(1).clinics[0].clone();
        let t = trajectory::simulate(&p, &cfg, 42);
        (p, t, cfg)
    }

    #[test]
    fn trace_covers_the_whole_study() {
        let (p, t, cfg) = setup(0.7);
        let a = simulate(&p, &t, &cfg, 42);
        assert_eq!(a.steps.len(), STUDY_MONTHS * DAYS_PER_MONTH);
        assert_eq!(a.sleep_hours.len(), a.steps.len());
        assert_eq!(a.calories.len(), a.steps.len());
    }

    #[test]
    fn values_are_physiologically_plausible() {
        let (p, t, cfg) = setup(0.7);
        let a = simulate(&p, &t, &cfg, 42);
        for i in 0..a.steps.len() {
            if a.steps[i].is_nan() {
                assert!(a.sleep_hours[i].is_nan() && a.calories[i].is_nan());
                continue;
            }
            assert!(a.steps[i] >= 0.0 && a.steps[i] < 80_000.0);
            assert!((2.0..=12.0).contains(&a.sleep_hours[i]));
            assert!(a.calories[i] >= 200.0 && a.calories[i] < 8000.0);
        }
    }

    #[test]
    fn higher_capacity_patients_walk_more() {
        let (p1, t1, cfg) = setup(0.9);
        let (p2, t2, _) = setup(0.3);
        let a1 = simulate(&p1, &t1, &cfg, 42);
        let a2 = simulate(&p2, &t2, &cfg, 42);
        let m1 = a1.monthly_mean(&a1.steps, 1);
        let m2 = a2.monthly_mean(&a2.steps, 1);
        assert!(m1 > m2, "{m1} !> {m2}");
    }

    #[test]
    fn some_days_are_not_worn() {
        let (p, t, cfg) = setup(0.7);
        let a = simulate(&p, &t, &cfg, 42);
        let missing = a.steps.iter().filter(|v| v.is_nan()).count();
        let frac = missing as f64 / a.steps.len() as f64;
        assert!(frac > 0.01 && frac < 0.10, "not-worn fraction {frac}");
    }

    #[test]
    fn monthly_mean_skips_missing_days() {
        let (p, t, cfg) = setup(0.7);
        let a = simulate(&p, &t, &cfg, 42);
        for month in 1..=STUDY_MONTHS {
            let m = a.monthly_mean(&a.steps, month);
            assert!(!m.is_nan(), "month {month} all missing is implausible here");
        }
    }

    /// Bitwise equality that treats NaN == NaN (traces contain not-worn
    /// days encoded as NaN, which `PartialEq` would reject).
    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn deterministic_per_seed() {
        let (p, t, cfg) = setup(0.7);
        let a = simulate(&p, &t, &cfg, 42);
        let b = simulate(&p, &t, &cfg, 42);
        assert!(bits_eq(&a.steps, &b.steps));
        assert!(bits_eq(&a.sleep_hours, &b.sleep_hours));
        assert!(bits_eq(&a.calories, &b.calories));
        let c = simulate(&p, &t, &cfg, 43);
        assert!(!bits_eq(&a.steps, &c.steps));
    }
}
