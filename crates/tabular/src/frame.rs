//! The [`Frame`]: an ordered collection of equal-length named columns.

use crate::column::Column;
use crate::error::TabularError;
use crate::matrix::Matrix;
use crate::schema::{Field, Schema};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A columnar table. All columns have the same number of rows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Frame {
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Frame {
    /// An empty frame (no columns, no rows).
    pub fn new() -> Self {
        Frame::default()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a column. The first column fixes the row count; subsequent
    /// columns must match it.
    pub fn push_column(&mut self, name: impl Into<String>, column: Column) -> Result<()> {
        let name = name.into();
        if self.schema.contains(&name) {
            return Err(TabularError::DuplicateColumn(name));
        }
        if self.columns.is_empty() {
            self.nrows = column.len();
        } else if column.len() != self.nrows {
            return Err(TabularError::LengthMismatch {
                expected: self.nrows,
                actual: column.len(),
            });
        }
        self.schema.push(Field::new(name, column.dtype()));
        self.columns.push(column);
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.schema
            .position(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))
    }

    /// Borrow a column by position.
    pub fn column_at(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Borrow a float column's payload, with a typed error on mismatch.
    pub fn f64_column(&self, name: &str) -> Result<&[f64]> {
        let col = self.column(name)?;
        col.as_f64().ok_or_else(|| TabularError::TypeMismatch {
            column: name.to_string(),
            expected: "float",
            actual: col.dtype().name(),
        })
    }

    /// Borrow a bool column's payload, with a typed error on mismatch.
    pub fn bool_column(&self, name: &str) -> Result<&[Option<bool>]> {
        let col = self.column(name)?;
        col.as_bool().ok_or_else(|| TabularError::TypeMismatch {
            column: name.to_string(),
            expected: "bool",
            actual: col.dtype().name(),
        })
    }

    /// Borrow an int column's payload, with a typed error on mismatch.
    pub fn i64_column(&self, name: &str) -> Result<&[Option<i64>]> {
        let col = self.column(name)?;
        col.as_i64().ok_or_else(|| TabularError::TypeMismatch {
            column: name.to_string(),
            expected: "int",
            actual: col.dtype().name(),
        })
    }

    /// A new frame containing only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Frame> {
        let mut out = Frame::new();
        for &name in names {
            out.push_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// A new frame with the named column dropped.
    pub fn drop_column(&self, name: &str) -> Result<Frame> {
        if !self.schema.contains(name) {
            return Err(TabularError::UnknownColumn(name.to_string()));
        }
        let mut out = Frame::new();
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            if field.name != name {
                out.push_column(field.name.clone(), col.clone())?;
            }
        }
        Ok(out)
    }

    /// A new frame keeping only rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Frame> {
        if mask.len() != self.nrows {
            return Err(TabularError::MaskLength { expected: self.nrows, actual: mask.len() });
        }
        let mut out = Frame::new();
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            out.push_column(field.name.clone(), col.filter(mask))?;
        }
        // An all-false mask on a frame with columns yields 0 rows; keep that.
        out.nrows = mask.iter().filter(|&&m| m).count();
        Ok(out)
    }

    /// A new frame with rows gathered by `indices` (repeats allowed).
    pub fn take(&self, indices: &[usize]) -> Result<Frame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.nrows) {
            return Err(TabularError::RowOutOfBounds { index: bad, nrows: self.nrows });
        }
        let mut out = Frame::new();
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            out.push_column(field.name.clone(), col.take(indices))?;
        }
        out.nrows = indices.len();
        Ok(out)
    }

    /// Append the rows of `other`. Schemas must match by name, order and type.
    pub fn vstack(&mut self, other: &Frame) -> Result<()> {
        if self.ncols() == 0 {
            *self = other.clone();
            return Ok(());
        }
        if self.schema.fields() != other.schema.fields() {
            // Surface the first mismatching column for a useful message.
            for (a, b) in self.schema.fields().iter().zip(other.schema.fields()) {
                if a.name != b.name {
                    return Err(TabularError::UnknownColumn(b.name.clone()));
                }
                if a.dtype != b.dtype {
                    return Err(TabularError::TypeMismatch {
                        column: a.name.clone(),
                        expected: a.dtype.name(),
                        actual: b.dtype.name(),
                    });
                }
            }
            return Err(TabularError::LengthMismatch {
                expected: self.ncols(),
                actual: other.ncols(),
            });
        }
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            // Variants are known to match after the schema check above.
            let ok = mine.extend_from(theirs);
            debug_assert!(ok, "schema check guarantees matching variants");
        }
        self.nrows += other.nrows;
        Ok(())
    }

    /// Export the named columns as a dense row-major `f64` matrix
    /// (missing values become `NaN`). This is the hand-off format for
    /// `msaw-gbdt`.
    pub fn to_matrix(&self, names: &[&str]) -> Result<Matrix> {
        let cols: Vec<&Column> = names.iter().map(|&n| self.column(n)).collect::<Result<_>>()?;
        let ncols = cols.len();
        let mut data = vec![0.0f64; self.nrows * ncols];
        for (j, col) in cols.iter().enumerate() {
            match col {
                Column::Float(v) => {
                    for (i, &x) in v.iter().enumerate() {
                        data[i * ncols + j] = x;
                    }
                }
                other => {
                    for i in 0..self.nrows {
                        data[i * ncols + j] = other.value_as_f64(i);
                    }
                }
            }
        }
        Ok(Matrix::from_vec(data, self.nrows, ncols))
    }

    /// Restore schema lookup after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.schema.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let mut f = Frame::new();
        f.push_column("steps", Column::from_f64(vec![4000.0, 5000.0, f64::NAN])).unwrap();
        f.push_column("sleep", Column::from_f64(vec![7.0, 6.5, 8.0])).unwrap();
        f.push_column("fell", Column::from_bool(vec![Some(false), Some(true), None])).unwrap();
        f
    }

    #[test]
    fn push_column_fixes_row_count() {
        let f = sample();
        assert_eq!(f.nrows(), 3);
        assert_eq!(f.ncols(), 3);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut f = sample();
        let err = f.push_column("steps", Column::from_f64(vec![0.0; 3])).unwrap_err();
        assert_eq!(err, TabularError::DuplicateColumn("steps".into()));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut f = sample();
        let err = f.push_column("extra", Column::from_f64(vec![0.0; 2])).unwrap_err();
        assert_eq!(err, TabularError::LengthMismatch { expected: 3, actual: 2 });
    }

    #[test]
    fn typed_accessor_mismatch_is_reported() {
        let f = sample();
        let err = f.f64_column("fell").unwrap_err();
        assert!(matches!(err, TabularError::TypeMismatch { .. }));
    }

    #[test]
    fn select_projects_in_order() {
        let f = sample();
        let g = f.select(&["sleep", "steps"]).unwrap();
        assert_eq!(g.schema().names(), vec!["sleep", "steps"]);
        assert_eq!(g.nrows(), 3);
    }

    #[test]
    fn drop_column_removes_exactly_one() {
        let f = sample();
        let g = f.drop_column("sleep").unwrap();
        assert_eq!(g.ncols(), 2);
        assert!(g.column("sleep").is_err());
        assert!(g.column("steps").is_ok());
    }

    #[test]
    fn filter_respects_mask() {
        let f = sample();
        let g = f.filter(&[true, false, true]).unwrap();
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.f64_column("sleep").unwrap(), &[7.0, 8.0]);
    }

    #[test]
    fn filter_bad_mask_len() {
        let f = sample();
        assert!(matches!(f.filter(&[true]), Err(TabularError::MaskLength { .. })));
    }

    #[test]
    fn take_out_of_bounds() {
        let f = sample();
        assert!(matches!(
            f.take(&[0, 3]),
            Err(TabularError::RowOutOfBounds { index: 3, nrows: 3 })
        ));
    }

    #[test]
    fn vstack_appends_rows() {
        let mut a = sample();
        let b = sample();
        a.vstack(&b).unwrap();
        assert_eq!(a.nrows(), 6);
        assert_eq!(a.f64_column("steps").unwrap().len(), 6);
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let mut a = sample();
        let mut b = Frame::new();
        b.push_column("steps", Column::from_f64(vec![1.0])).unwrap();
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn to_matrix_row_major_with_nan() {
        let f = sample();
        let m = f.to_matrix(&["steps", "sleep"]).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.get(0, 0), 4000.0);
        assert_eq!(m.get(1, 1), 6.5);
        assert!(m.get(2, 0).is_nan());
    }

    #[test]
    fn to_matrix_widens_bools() {
        let f = sample();
        let m = f.to_matrix(&["fell"]).unwrap();
        assert_eq!(m.get(1, 0), 1.0);
        assert!(m.get(2, 0).is_nan());
    }

    #[test]
    fn empty_frame_has_no_rows() {
        let f = Frame::new();
        assert_eq!(f.nrows(), 0);
        assert_eq!(f.ncols(), 0);
    }
}
