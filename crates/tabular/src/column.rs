//! Typed column storage.

use crate::schema::DataType;
use serde::{Deserialize, Serialize};

/// A single column of data. Float columns encode missing values as `NaN`
/// so the numeric hot paths (aggregation, matrix export, split scanning
/// downstream in `msaw-gbdt`) never pay for an `Option` discriminant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit floats, `NaN` = missing.
    Float(Vec<f64>),
    /// Nullable integers.
    Int(Vec<Option<i64>>),
    /// Nullable booleans.
    Bool(Vec<Option<bool>>),
    /// Dictionary-encoded categories: `codes[i]` indexes into `categories`.
    Categorical {
        /// Per-row category code; `None` = missing.
        codes: Vec<Option<u32>>,
        /// The dictionary of category labels.
        categories: Vec<String>,
    },
}

impl Column {
    /// Build a float column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float(values)
    }

    /// Build an int column.
    pub fn from_i64(values: Vec<Option<i64>>) -> Self {
        Column::Int(values)
    }

    /// Build a bool column.
    pub fn from_bool(values: Vec<Option<bool>>) -> Self {
        Column::Bool(values)
    }

    /// Build a categorical column by dictionary-encoding the labels in
    /// first-appearance order.
    pub fn from_labels<S: AsRef<str>>(labels: &[Option<S>]) -> Self {
        let mut categories: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(labels.len());
        for label in labels {
            match label {
                None => codes.push(None),
                Some(l) => {
                    let l = l.as_ref();
                    let code = match categories.iter().position(|c| c == l) {
                        Some(pos) => pos as u32,
                        None => {
                            categories.push(l.to_string());
                            (categories.len() - 1) as u32
                        }
                    };
                    codes.push(Some(code));
                }
            }
        }
        Column::Categorical { codes, categories }
    }

    /// Logical type of the column.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Float(_) => DataType::Float,
            Column::Int(_) => DataType::Int,
            Column::Bool(_) => DataType::Bool,
            Column::Categorical { .. } => DataType::Categorical,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Float(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of missing entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Float(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Categorical { codes, .. } => codes.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Borrow the float payload, if this is a float column.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the int payload, if this is an int column.
    pub fn as_i64(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the bool payload, if this is a bool column.
    pub fn as_bool(&self) -> Option<&[Option<bool>]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow categorical codes and dictionary, if categorical.
    pub fn as_categorical(&self) -> Option<(&[Option<u32>], &[String])> {
        match self {
            Column::Categorical { codes, categories } => Some((codes, categories)),
            _ => None,
        }
    }

    /// Value at `row` coerced to `f64`: ints and bools widen, categoricals
    /// expose their code, missing values become `NaN`.
    pub fn value_as_f64(&self, row: usize) -> f64 {
        match self {
            Column::Float(v) => v[row],
            Column::Int(v) => v[row].map(|x| x as f64).unwrap_or(f64::NAN),
            Column::Bool(v) => v[row].map(|x| if x { 1.0 } else { 0.0 }).unwrap_or(f64::NAN),
            Column::Categorical { codes, .. } => codes[row].map(|c| c as f64).unwrap_or(f64::NAN),
        }
    }

    /// Entire column coerced to `f64` (see [`Column::value_as_f64`]).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Column::Float(v) => v.clone(),
            _ => (0..self.len()).map(|i| self.value_as_f64(i)).collect(),
        }
    }

    /// Keep only rows where `mask[i]` is true. `mask.len()` must equal
    /// `self.len()` (enforced by [`crate::Frame::filter`]).
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn keep<T: Clone>(values: &[T], mask: &[bool]) -> Vec<T> {
            values.iter().zip(mask).filter(|(_, &m)| m).map(|(v, _)| v.clone()).collect()
        }
        match self {
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Categorical { codes, categories } => {
                Column::Categorical { codes: keep(codes, mask), categories: categories.clone() }
            }
        }
    }

    /// Select rows by index (indices may repeat; each must be in bounds).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, categories } => Column::Categorical {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                categories: categories.clone(),
            },
        }
    }

    /// Append all rows of `other` (same variant required; categorical
    /// dictionaries are merged by label).
    pub fn extend_from(&mut self, other: &Column) -> bool {
        match (self, other) {
            (Column::Float(a), Column::Float(b)) => {
                a.extend_from_slice(b);
                true
            }
            (Column::Int(a), Column::Int(b)) => {
                a.extend_from_slice(b);
                true
            }
            (Column::Bool(a), Column::Bool(b)) => {
                a.extend_from_slice(b);
                true
            }
            (
                Column::Categorical { codes: ac, categories: acat },
                Column::Categorical { codes: bc, categories: bcat },
            ) => {
                // Remap b's codes into a's dictionary.
                let remap: Vec<u32> = bcat
                    .iter()
                    .map(|label| match acat.iter().position(|c| c == label) {
                        Some(pos) => pos as u32,
                        None => {
                            acat.push(label.clone());
                            (acat.len() - 1) as u32
                        }
                    })
                    .collect();
                ac.extend(bc.iter().map(|c| c.map(|code| remap[code as usize])));
                true
            }
            _ => false,
        }
    }

    /// Render the value at `row` for display/CSV. Missing values render
    /// as the empty string.
    pub fn render(&self, row: usize) -> String {
        match self {
            Column::Float(v) => {
                if v[row].is_nan() {
                    String::new()
                } else {
                    format!("{}", v[row])
                }
            }
            Column::Int(v) => v[row].map(|x| x.to_string()).unwrap_or_default(),
            Column::Bool(v) => v[row].map(|x| x.to_string()).unwrap_or_default(),
            Column::Categorical { codes, categories } => {
                codes[row].and_then(|c| categories.get(c as usize)).cloned().unwrap_or_default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_null_count_counts_nans() {
        let c = Column::from_f64(vec![1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn labels_dictionary_encode_in_first_appearance_order() {
        let c = Column::from_labels(&[Some("modena"), Some("sydney"), Some("modena"), None]);
        let (codes, cats) = c.as_categorical().unwrap();
        assert_eq!(cats, &["modena".to_string(), "sydney".to_string()]);
        assert_eq!(codes, &[Some(0), Some(1), Some(0), None]);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn value_as_f64_widens_all_types() {
        let f = Column::from_f64(vec![2.5]);
        let i = Column::from_i64(vec![Some(7)]);
        let b = Column::from_bool(vec![Some(true)]);
        let c = Column::from_labels(&[Some("x")]);
        assert_eq!(f.value_as_f64(0), 2.5);
        assert_eq!(i.value_as_f64(0), 7.0);
        assert_eq!(b.value_as_f64(0), 1.0);
        assert_eq!(c.value_as_f64(0), 0.0);
    }

    #[test]
    fn missing_values_widen_to_nan() {
        let i = Column::from_i64(vec![None]);
        let b = Column::from_bool(vec![None]);
        assert!(i.value_as_f64(0).is_nan());
        assert!(b.value_as_f64(0).is_nan());
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let c = Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]);
        let filtered = c.filter(&[true, false, true, false]);
        assert_eq!(filtered.as_f64().unwrap(), &[1.0, 3.0]);
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64(vec![Some(10), Some(20), Some(30)]);
        let taken = c.take(&[2, 0, 0]);
        assert_eq!(taken.as_i64().unwrap(), &[Some(30), Some(10), Some(10)]);
    }

    #[test]
    fn extend_merges_categorical_dictionaries() {
        let mut a = Column::from_labels(&[Some("modena"), Some("sydney")]);
        let b = Column::from_labels(&[Some("hong_kong"), Some("modena")]);
        assert!(a.extend_from(&b));
        let (codes, cats) = a.as_categorical().unwrap();
        assert_eq!(cats.len(), 3);
        assert_eq!(codes.len(), 4);
        // The appended "modena" must map back to code 0.
        assert_eq!(codes[3], Some(0));
    }

    #[test]
    fn extend_rejects_mismatched_variants() {
        let mut a = Column::from_f64(vec![1.0]);
        let b = Column::from_i64(vec![Some(1)]);
        assert!(!a.extend_from(&b));
    }

    #[test]
    fn render_uses_empty_string_for_missing() {
        let c = Column::from_f64(vec![f64::NAN, 1.5]);
        assert_eq!(c.render(0), "");
        assert_eq!(c.render(1), "1.5");
    }
}
