//! Minimal CSV round-trip for [`Frame`]s.
//!
//! This exists so experiments can dump generated cohorts and sample sets
//! to disk for inspection. It handles the subset of CSV the pipeline
//! produces: comma separation, no embedded commas/quotes in values,
//! empty string = missing. Output is written through a `BufWriter`
//! per the I/O guidance (unbuffered writes would syscall per cell).

use crate::column::Column;
use crate::error::TabularError;
use crate::frame::Frame;
use crate::schema::DataType;
use crate::Result;
use std::io::{BufRead, BufWriter, Write};

/// Write `frame` as CSV (header + rows).
pub fn write_csv<W: Write>(frame: &Frame, writer: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    let names = frame.schema().names();
    writeln!(out, "{}", names.join(","))?;
    let ncols = frame.ncols();
    let mut cells: Vec<String> = Vec::with_capacity(ncols);
    for row in 0..frame.nrows() {
        cells.clear();
        for col in 0..ncols {
            cells.push(frame.column_at(col).expect("in-range").render(row));
        }
        writeln!(out, "{}", cells.join(","))?;
    }
    out.flush()
}

/// Column type declarations for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvSchema {
    /// `(column name, type)` in file order.
    pub columns: Vec<(String, DataType)>,
}

/// Strip line-ending debris `BufRead::lines` leaves behind: it removes
/// `\r\n` pairs, but a file whose final line has no newline — or one
/// saved with bare-`\r` endings — still carries a trailing `\r` into
/// the last cell, where it silently breaks numeric parsing and header
/// matching.
fn trim_line(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Read a CSV produced by [`write_csv`] given explicit column types.
/// The header must match `schema` by name and order.
///
/// Tolerates the two most common interop artifacts: CRLF line endings
/// (a trailing `\r` is stripped from every line) and a UTF-8 byte
/// order mark in front of the first header cell (spreadsheet exports
/// prepend one; it is not part of the column name).
///
/// Malformed input — empty file, header-only file, a row with the wrong
/// cell count (including a truncated final row), an unparsable cell —
/// is always a typed [`TabularError::Csv`] naming the 1-based line and,
/// for cell errors, the column; this function never panics on bad data.
pub fn read_csv<R: BufRead>(reader: R, schema: &CsvSchema) -> Result<Frame> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((i, Err(e))) => return Err(TabularError::Csv { line: i + 1, message: e.to_string() }),
        None => return Err(TabularError::Csv { line: 1, message: "empty input".into() }),
    };
    let header = trim_line(header.strip_prefix('\u{feff}').unwrap_or(&header));
    let header_names: Vec<&str> = header.split(',').collect();
    if header_names.len() != schema.columns.len() {
        return Err(TabularError::Csv {
            line: 1,
            message: format!(
                "expected {} columns, found {}",
                schema.columns.len(),
                header_names.len()
            ),
        });
    }
    for (h, (name, _)) in header_names.iter().zip(&schema.columns) {
        if h != name {
            return Err(TabularError::Csv {
                line: 1,
                message: format!("header `{h}` does not match schema column `{name}`"),
            });
        }
    }

    enum Builder {
        Float(Vec<f64>),
        Int(Vec<Option<i64>>),
        Bool(Vec<Option<bool>>),
        Labels(Vec<Option<String>>),
    }
    let mut builders: Vec<Builder> = schema
        .columns
        .iter()
        .map(|(_, dtype)| match dtype {
            DataType::Float => Builder::Float(Vec::new()),
            DataType::Int => Builder::Int(Vec::new()),
            DataType::Bool => Builder::Bool(Vec::new()),
            DataType::Categorical => Builder::Labels(Vec::new()),
        })
        .collect();

    let mut n_rows = 0usize;
    for (idx, line) in lines {
        let line = line.map_err(|e| TabularError::Csv { line: idx + 1, message: e.to_string() })?;
        let line = trim_line(&line);
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != builders.len() {
            return Err(TabularError::Csv {
                line: idx + 1,
                message: format!("expected {} cells, found {}", builders.len(), cells.len()),
            });
        }
        for (col, (cell, builder)) in cells.iter().zip(builders.iter_mut()).enumerate() {
            let column = &schema.columns[col].0;
            match builder {
                Builder::Float(v) => {
                    if cell.is_empty() {
                        v.push(f64::NAN);
                    } else {
                        v.push(cell.parse().map_err(|_| TabularError::Csv {
                            line: idx + 1,
                            message: format!("column `{column}`: invalid float `{cell}`"),
                        })?);
                    }
                }
                Builder::Int(v) => {
                    if cell.is_empty() {
                        v.push(None);
                    } else {
                        v.push(Some(cell.parse().map_err(|_| TabularError::Csv {
                            line: idx + 1,
                            message: format!("column `{column}`: invalid int `{cell}`"),
                        })?));
                    }
                }
                Builder::Bool(v) => match *cell {
                    "" => v.push(None),
                    "true" => v.push(Some(true)),
                    "false" => v.push(Some(false)),
                    other => {
                        return Err(TabularError::Csv {
                            line: idx + 1,
                            message: format!("column `{column}`: invalid bool `{other}`"),
                        })
                    }
                },
                Builder::Labels(v) => {
                    if cell.is_empty() {
                        v.push(None);
                    } else {
                        v.push(Some(cell.to_string()));
                    }
                }
            }
        }
        n_rows += 1;
    }
    if n_rows == 0 {
        return Err(TabularError::Csv { line: 1, message: "no data rows".into() });
    }

    let mut frame = Frame::new();
    for ((name, _), builder) in schema.columns.iter().zip(builders) {
        let column = match builder {
            Builder::Float(v) => Column::from_f64(v),
            Builder::Int(v) => Column::from_i64(v),
            Builder::Bool(v) => Column::from_bool(v),
            Builder::Labels(v) => Column::from_labels(&v),
        };
        frame.push_column(name.clone(), column)?;
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Frame {
        let mut f = Frame::new();
        f.push_column("steps", Column::from_f64(vec![4000.0, f64::NAN])).unwrap();
        f.push_column("visits", Column::from_i64(vec![Some(2), None])).unwrap();
        f.push_column("fell", Column::from_bool(vec![Some(true), None])).unwrap();
        f.push_column("clinic", Column::from_labels(&[Some("modena"), Some("sydney")])).unwrap();
        f
    }

    fn schema() -> CsvSchema {
        CsvSchema {
            columns: vec![
                ("steps".into(), DataType::Float),
                ("visits".into(), DataType::Int),
                ("fell".into(), DataType::Bool),
                ("clinic".into(), DataType::Categorical),
            ],
        }
    }

    #[test]
    fn round_trip_preserves_values_and_missing() {
        let f = sample();
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let g = read_csv(Cursor::new(buf), &schema()).unwrap();
        assert_eq!(g.nrows(), 2);
        let steps = g.f64_column("steps").unwrap();
        assert_eq!(steps[0], 4000.0);
        assert!(steps[1].is_nan());
        assert_eq!(g.i64_column("visits").unwrap(), &[Some(2), None]);
        assert_eq!(g.bool_column("fell").unwrap(), &[Some(true), None]);
        let (codes, cats) = g.column("clinic").unwrap().as_categorical().unwrap();
        assert_eq!(cats, &["modena".to_string(), "sydney".to_string()]);
        assert_eq!(codes, &[Some(0), Some(1)]);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let input = "a,b\n1,2\n";
        let bad = CsvSchema {
            columns: vec![("a".into(), DataType::Float), ("c".into(), DataType::Float)],
        };
        let err = read_csv(Cursor::new(input), &bad).unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 1, .. }));
    }

    #[test]
    fn ragged_row_is_an_error() {
        let input = "a,b\n1,2\n3\n";
        let s = CsvSchema {
            columns: vec![("a".into(), DataType::Float), ("b".into(), DataType::Float)],
        };
        let err = read_csv(Cursor::new(input), &s).unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 3, .. }));
    }

    #[test]
    fn invalid_cell_reports_line() {
        let input = "a\nnot_a_number\n";
        let s = CsvSchema { columns: vec![("a".into(), DataType::Float)] };
        let err = read_csv(Cursor::new(input), &s).unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        let s = CsvSchema { columns: vec![("a".into(), DataType::Float)] };
        assert!(read_csv(Cursor::new(""), &s).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "a\n1\n\n2\n";
        let s = CsvSchema { columns: vec![("a".into(), DataType::Float)] };
        let f = read_csv(Cursor::new(input), &s).unwrap();
        assert_eq!(f.nrows(), 2);
    }

    fn two_floats() -> CsvSchema {
        CsvSchema { columns: vec![("a".into(), DataType::Float), ("b".into(), DataType::Float)] }
    }

    #[test]
    fn header_only_input_is_an_error() {
        let err = read_csv(Cursor::new("a,b\n"), &two_floats()).unwrap_err();
        match err {
            TabularError::Csv { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("no data rows"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncated_final_row_names_its_line() {
        // The file ends mid-row (no newline, missing final cell).
        let err = read_csv(Cursor::new("a,b\n1,2\n3"), &two_floats()).unwrap_err();
        match err {
            TabularError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("expected 2 cells, found 1"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn wrong_column_count_mid_file_names_its_line() {
        let err = read_csv(Cursor::new("a,b\n1,2\n1,2,3\n4,5\n"), &two_floats()).unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 3, .. }), "{err}");
    }

    #[test]
    fn non_numeric_cell_names_line_and_column() {
        let err = read_csv(Cursor::new("a,b\n1,2\n3,oops\n"), &two_floats()).unwrap_err();
        match err {
            TabularError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("column `b`") && message.contains("oops"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn crlf_input_parses_like_lf_input() {
        // `BufRead::lines` handles \r\n pairs; the reader must also
        // survive a final line that ends in \r with no newline.
        let input = "a,b\r\n1,2\r\n3,4\r";
        let f = read_csv(Cursor::new(input), &two_floats()).unwrap();
        assert_eq!(f.nrows(), 2);
        assert_eq!(f.f64_column("b").unwrap(), &[2.0, 4.0]);
    }

    #[test]
    fn utf8_bom_on_the_header_is_ignored() {
        let input = "\u{feff}a,b\n1,2\n";
        let f = read_csv(Cursor::new(input), &two_floats()).unwrap();
        assert_eq!(f.nrows(), 1);
        assert_eq!(f.f64_column("a").unwrap(), &[1.0]);
    }

    #[test]
    fn bom_and_crlf_together_round_trip() {
        let input = "\u{feff}a,b\r\n1,2\r\n";
        let f = read_csv(Cursor::new(input), &two_floats()).unwrap();
        assert_eq!(f.nrows(), 1);
    }

    #[test]
    fn carriage_return_only_blank_line_is_skipped() {
        let input = "a\n1\n\r\n2\n";
        let s = CsvSchema { columns: vec![("a".into(), DataType::Float)] };
        let f = read_csv(Cursor::new(input), &s).unwrap();
        assert_eq!(f.nrows(), 2);
    }

    #[test]
    fn bad_bool_and_int_cells_name_their_column() {
        let s = CsvSchema {
            columns: vec![("n".into(), DataType::Int), ("flag".into(), DataType::Bool)],
        };
        let err = read_csv(Cursor::new("n,flag\n1.5,true\n"), &s).unwrap_err();
        match &err {
            TabularError::Csv { line: 2, message } => assert!(message.contains("column `n`")),
            other => panic!("wrong error: {other}"),
        }
        let err = read_csv(Cursor::new("n,flag\n1,yes\n"), &s).unwrap_err();
        match &err {
            TabularError::Csv { line: 2, message } => assert!(message.contains("column `flag`")),
            other => panic!("wrong error: {other}"),
        }
    }
}
