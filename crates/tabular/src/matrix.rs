//! Dense row-major `f64` matrix — the hand-off format between the data
//! pipeline and the learners. Missing values are `NaN`.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    nrows: usize,
    ncols: usize,
}

impl Matrix {
    /// Build from a row-major buffer. Panics if `data.len() != nrows * ncols`
    /// — this is a programmer error, not a data error.
    pub fn from_vec(data: Vec<f64>, nrows: usize, ncols: usize) -> Self {
        assert_eq!(data.len(), nrows * ncols, "matrix buffer size mismatch");
        Matrix { data, nrows, ncols }
    }

    /// A zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix { data: vec![0.0; nrows * ncols], nrows, ncols }
    }

    /// Build from row slices; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { data, nrows, ncols }
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.data[row * self.ncols + col]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.data[row * self.ncols + col] = value;
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.ncols;
        &self.data[start..start + self.ncols]
    }

    /// Copy one column out.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self.get(i, col)).collect()
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.ncols.max(1)).take(self.nrows)
    }

    /// New matrix with an extra column appended on the right.
    pub fn hstack_column(&self, col: &[f64]) -> Matrix {
        assert_eq!(col.len(), self.nrows, "column length mismatch");
        let ncols = self.ncols + 1;
        let mut data = Vec::with_capacity(self.nrows * ncols);
        for (i, row) in self.rows().enumerate() {
            data.extend_from_slice(row);
            data.push(col[i]);
        }
        Matrix { data, nrows: self.nrows, ncols }
    }

    /// New matrix containing only the given rows.
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.ncols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { data, nrows: indices.len(), ncols: self.ncols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matrix buffer size mismatch")]
    fn from_vec_rejects_bad_size() {
        Matrix::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn hstack_column_appends_right() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let m2 = m.hstack_column(&[10.0, 20.0]);
        assert_eq!(m2.ncols(), 2);
        assert_eq!(m2.row(0), &[1.0, 10.0]);
        assert_eq!(m2.row(1), &[2.0, 20.0]);
    }

    #[test]
    fn take_rows_gathers() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 0]);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.get(0, 0), 3.0);
        assert_eq!(t.get(1, 0), 1.0);
    }

    #[test]
    fn rows_iterator_counts_rows() {
        let m = Matrix::zeros(4, 2);
        assert_eq!(m.rows().count(), 4);
    }

    #[test]
    fn zero_column_matrix_is_safe() {
        let m = Matrix::zeros(3, 0);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 0);
    }
}
