//! Schema describing the columns of a [`crate::Frame`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit float; `NaN` encodes a missing value.
    Float,
    /// Nullable 64-bit integer.
    Int,
    /// Nullable boolean.
    Bool,
    /// Dictionary-encoded string category.
    Categorical,
}

impl DataType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Float => "float",
            DataType::Int => "int",
            DataType::Bool => "bool",
            DataType::Categorical => "categorical",
        }
    }
}

/// A named, typed column slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Logical type of the column.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered collection of [`Field`]s with O(1) name lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from fields. Later duplicates shadow earlier entries
    /// in the lookup index; [`crate::Frame`] rejects duplicates before they
    /// reach this point.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        let index = fields.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
        Schema { fields, index }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Position of a field by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.position(name).map(|i| &self.fields[i])
    }

    /// True when a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Append a field, returning its position.
    pub(crate) fn push(&mut self, field: Field) -> usize {
        let pos = self.fields.len();
        self.index.insert(field.name.clone(), pos);
        self.fields.push(field);
        pos
    }

    /// Rebuild the name index (needed after deserialisation, since the
    /// index is skipped by serde).
    pub fn rebuild_index(&mut self) {
        self.index = self.fields.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
    }

    /// Names of all fields in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Schema::new();
        s.push(Field::new("a", DataType::Float));
        s.push(Field::new("b", DataType::Bool));
        assert_eq!(s.position("a"), Some(0));
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("c"), None);
        assert_eq!(s.field("b").unwrap().dtype, DataType::Bool);
        assert_eq!(s.names(), vec!["a", "b"]);
    }

    #[test]
    fn from_fields_builds_index() {
        let s = Schema::from_fields(vec![
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Categorical),
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.contains("y"));
        assert!(!s.is_empty());
    }

    #[test]
    fn rebuild_index_after_manual_clear() {
        let mut s = Schema::from_fields(vec![Field::new("x", DataType::Int)]);
        s.index.clear();
        assert_eq!(s.position("x"), None);
        s.rebuild_index();
        assert_eq!(s.position("x"), Some(0));
    }

    #[test]
    fn dtype_names_are_distinct() {
        let names = [
            DataType::Float.name(),
            DataType::Int.name(),
            DataType::Bool.name(),
            DataType::Categorical.name(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
