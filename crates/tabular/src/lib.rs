//! # msaw-tabular
//!
//! A small, typed, columnar data substrate used throughout the MySAwH
//! reproduction. It plays the role pandas played in the original study:
//! holding heterogeneous patient observations (floats with missing
//! values, integers, booleans, categoricals), selecting and filtering
//! them, and exporting dense matrices for the learners.
//!
//! The design follows the repository-wide guidance for database-flavoured
//! Rust: columns are contiguous `Vec`s, missing floats are encoded as
//! `NaN` (so hot numeric paths stay branch-light), and every fallible
//! operation returns a typed [`TabularError`] instead of panicking.
//!
//! ```
//! use msaw_tabular::{Frame, Column};
//!
//! let mut frame = Frame::new();
//! frame.push_column("steps", Column::from_f64(vec![4200.0, f64::NAN, 6100.0])).unwrap();
//! frame.push_column("fell", Column::from_bool(vec![Some(false), Some(true), None])).unwrap();
//! assert_eq!(frame.nrows(), 3);
//! let steps = frame.column("steps").unwrap().as_f64().unwrap();
//! assert!(steps[1].is_nan());
//! ```

pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod matrix;
pub mod schema;
pub mod stats;

pub use column::Column;
pub use error::TabularError;
pub use frame::Frame;
pub use matrix::Matrix;
pub use schema::{DataType, Field, Schema};
pub use stats::Summary;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TabularError>;
