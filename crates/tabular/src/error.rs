//! Error type shared by every `msaw-tabular` operation.

use std::fmt;

/// Errors produced by frame and column operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A column was requested by a name the frame does not contain.
    UnknownColumn(String),
    /// A column with this name already exists in the frame.
    DuplicateColumn(String),
    /// A column of `expected` rows was pushed into a frame of `actual` rows.
    LengthMismatch { expected: usize, actual: usize },
    /// A typed accessor was used on a column of a different type.
    TypeMismatch { column: String, expected: &'static str, actual: &'static str },
    /// A row index was out of bounds.
    RowOutOfBounds { index: usize, nrows: usize },
    /// A categorical code did not map to a known category.
    UnknownCategory { column: String, code: u32 },
    /// CSV input could not be parsed.
    Csv { line: usize, message: String },
    /// A mask/filter had the wrong length.
    MaskLength { expected: usize, actual: usize },
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TabularError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TabularError::LengthMismatch { expected, actual } => {
                write!(f, "column length mismatch: frame has {expected} rows, column has {actual}")
            }
            TabularError::TypeMismatch { column, expected, actual } => {
                write!(f, "column `{column}` is {actual}, expected {expected}")
            }
            TabularError::RowOutOfBounds { index, nrows } => {
                write!(f, "row index {index} out of bounds for frame of {nrows} rows")
            }
            TabularError::UnknownCategory { column, code } => {
                write!(f, "categorical column `{column}` has no category for code {code}")
            }
            TabularError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            TabularError::MaskLength { expected, actual } => {
                write!(f, "filter mask length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_column() {
        let err = TabularError::UnknownColumn("qol".into());
        assert!(err.to_string().contains("qol"));
    }

    #[test]
    fn display_mentions_lengths() {
        let err = TabularError::LengthMismatch { expected: 3, actual: 5 };
        let s = err.to_string();
        assert!(s.contains('3') && s.contains('5'));
    }
}
