//! Per-column summary statistics (missing-aware).

use crate::column::Column;

/// Summary of a numeric column: missing values are excluded from every
/// statistic; `count` is the number of *present* values.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Present (non-missing) value count.
    pub count: usize,
    /// Missing value count.
    pub missing: usize,
    /// Mean of present values (`NaN` when `count == 0`).
    pub mean: f64,
    /// Sample standard deviation (`NaN` when `count < 2`).
    pub std: f64,
    /// Minimum present value.
    pub min: f64,
    /// Maximum present value.
    pub max: f64,
}

impl Summary {
    /// Summarise a slice of floats, skipping `NaN`s.
    pub fn of_slice(values: &[f64]) -> Summary {
        let mut count = 0usize;
        let mut missing = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_nan() {
                missing += 1;
                continue;
            }
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = if count > 0 { sum / count as f64 } else { f64::NAN };
        let std = if count > 1 {
            let ss: f64 =
                values.iter().filter(|v| !v.is_nan()).map(|&v| (v - mean) * (v - mean)).sum();
            (ss / (count as f64 - 1.0)).sqrt()
        } else {
            f64::NAN
        };
        if count == 0 {
            min = f64::NAN;
            max = f64::NAN;
        }
        Summary { count, missing, mean, std, min, max }
    }

    /// Summarise any column via its `f64` widening.
    pub fn of_column(column: &Column) -> Summary {
        match column {
            Column::Float(v) => Summary::of_slice(v),
            other => Summary::of_slice(&other.to_f64_vec()),
        }
    }
}

/// Mean of present values; `NaN` for an all-missing slice.
pub fn nanmean(values: &[f64]) -> f64 {
    Summary::of_slice(values).mean
}

/// Quantile of present values using linear interpolation between order
/// statistics (the same convention as numpy's default). `q` in `[0,1]`.
/// Returns `NaN` when no values are present.
pub fn nanquantile(values: &[f64], q: f64) -> f64 {
    let mut present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.is_empty() {
        return f64::NAN;
    }
    present.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (present.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        present[lo]
    } else {
        let frac = pos - lo as f64;
        present[lo] * (1.0 - frac) + present[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_skips_nans() {
        let s = Summary::of_slice(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.missing, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_of_empty_is_nan() {
        let s = Summary::of_slice(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan());
        assert!(s.min.is_nan());
    }

    #[test]
    fn std_matches_hand_computation() {
        let s = Summary::of_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Sample std of this classic example is ~2.138.
        assert!((s.std - 2.138).abs() < 1e-3);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nanquantile(&v, 0.0), 1.0);
        assert_eq!(nanquantile(&v, 1.0), 4.0);
        assert_eq!(nanquantile(&v, 0.5), 2.5);
        assert!((nanquantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_ignores_nans() {
        let v = [f64::NAN, 1.0, f64::NAN, 3.0];
        assert_eq!(nanquantile(&v, 0.5), 2.0);
    }

    #[test]
    fn quantile_of_all_missing_is_nan() {
        assert!(nanquantile(&[f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn nanmean_basic() {
        assert_eq!(nanmean(&[2.0, 4.0, f64::NAN]), 3.0);
    }

    #[test]
    fn summary_of_bool_column_widens() {
        let c = Column::from_bool(vec![Some(true), Some(false), None]);
        let s = Summary::of_column(&c);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 0.5);
    }
}
