//! # msaw-kd
//!
//! The knowledge-driven (KD) pipeline — the geriatric-medicine common
//! practice the paper's data-driven approach is compared against:
//!
//! * [`fi`] — the **Frailty Index** by deficit accumulation (Searle et
//!   al. 2008): the proportion of the 37 clinical deficits present at a
//!   visit. The paper feeds the window-baseline FI (months 0 and 9) to
//!   both approaches as an optional extra feature.
//! * [`ici`] — the **Intrinsic Capacity Index**: an expert-chosen subset
//!   of the PRO/activity variables, one per-variable cutoff score
//!   (binary threshold, or a ramp for continuous variables like daily
//!   steps), averaged into a single number. This is exactly the
//!   manual construction the paper describes — including its built-in
//!   bias: "the imposition of the physician's interpretation on the
//!   choice of the variables … as well as on the thresholds".
//!
//! The KD learning models (`M^ICI_o`, `M^{ICI,FI}_o`) are trained by
//! `msaw-core` on the one- or two-column sample sets these functions
//! produce.

pub mod fi;
pub mod ici;

pub use fi::{attach_fi, fi_at_window_start, frailty_index};
pub use ici::{compute_ici_row, default_ici_spec, ici_sample_set, IciVariable, ScoreFn};
