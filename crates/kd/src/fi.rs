//! Frailty Index by deficit accumulation (Searle et al. 2008, as cited
//! by the paper): the ratio of deficits present to deficits assessed.

use msaw_cohort::{CohortData, PatientId};
use msaw_preprocess::SampleSet;

/// FI of one assessment: mean deficit score. Scores are graded
/// (0 / 0.5 / 1), so the index lies in `[0, 1]`; values ≳ 0.25 are
/// conventionally read as frail.
pub fn frailty_index(deficits: &[f64]) -> f64 {
    assert!(!deficits.is_empty(), "an FI needs at least one deficit variable");
    deficits.iter().sum::<f64>() / deficits.len() as f64
}

/// The FI measured at the clinical visit that *opens* a window:
/// month 0 for window 1, month 9 for window 2 — the paper's "baseline"
/// physician assessment added to the patient-centric data points.
pub fn fi_at_window_start(data: &CohortData, patient: PatientId, window: u8) -> f64 {
    let month = match window {
        1 => 0,
        2 => 9,
        w => panic!("window must be 1 or 2, got {w}"),
    };
    let assessment = data
        .assessment(patient, month)
        .unwrap_or_else(|| panic!("patient {patient:?} has no visit at month {month}"));
    frailty_index(&assessment.deficits)
}

/// Append the window-baseline FI to every sample of a set, producing
/// the paper's `Sample^FI_o` variant.
pub fn attach_fi(set: &SampleSet, data: &CohortData) -> SampleSet {
    let fi: Vec<f64> =
        set.meta.iter().map(|m| fi_at_window_start(data, m.patient, m.window)).collect();
    set.with_extra_feature("fi_baseline", &fi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, PipelineConfig};

    #[test]
    fn fi_is_the_mean_deficit() {
        assert_eq!(frailty_index(&[1.0, 0.0, 0.5, 0.5]), 0.5);
        assert_eq!(frailty_index(&[0.0; 37]), 0.0);
        assert_eq!(frailty_index(&[1.0; 37]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one deficit")]
    fn empty_deficits_panic() {
        frailty_index(&[]);
    }

    #[test]
    fn window_start_uses_the_right_visit() {
        let data = generate(&CohortConfig::small(42));
        let pid = data.patients[0].id;
        let fi1 = fi_at_window_start(&data, pid, 1);
        let a0 = data.assessment(pid, 0).unwrap();
        assert_eq!(fi1, frailty_index(&a0.deficits));
        let fi2 = fi_at_window_start(&data, pid, 2);
        let a9 = data.assessment(pid, 9).unwrap();
        assert_eq!(fi2, frailty_index(&a9.deficits));
    }

    #[test]
    fn attach_fi_adds_one_column_per_sample() {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg);
        let augmented = attach_fi(&set, &data);
        assert_eq!(augmented.features.ncols(), set.features.ncols() + 1);
        let fi_col = augmented.features.column(augmented.features.ncols() - 1);
        assert!(fi_col.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Samples of the same patient and window share their FI.
        for (i, a) in augmented.meta.iter().enumerate() {
            for (j, b) in augmented.meta.iter().enumerate().skip(i + 1) {
                if a.patient == b.patient && a.window == b.window {
                    assert_eq!(fi_col[i], fi_col[j]);
                }
            }
        }
    }

    #[test]
    fn fi_tracks_latent_frailty_across_patients() {
        // FI is a noisy readout of latent frailty; over the cohort the
        // correlation must be clearly positive.
        let data = generate(&CohortConfig::paper(42));
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for p in &data.patients {
            let fi = fi_at_window_start(&data, p.id, 1);
            let latent = data.latent[p.id.0 as usize].frailty[0];
            pairs.push((fi, latent));
        }
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sx * sy);
        assert!(corr > 0.55, "FI–frailty correlation too weak: {corr}");
    }
}
