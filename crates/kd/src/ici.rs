//! The expert-defined Intrinsic Capacity Index (ICI).
//!
//! Following the paper's §4: a manually selected subset `V ⊆ V` of the
//! PRO and activity variables — chosen to represent each of the five IC
//! domains — is scored per variable (`s_i(x) ∈ {0,1}` from a single
//! threshold for most variables, a `[0,1]` ramp for continuous ones
//! like daily steps) and averaged:
//!
//! `ICI(i,j,p) = Σ s_i(x^p_{i,j}[V_i]) / n`
//!
//! The subset and cutoffs below are this repository's "clinical expert":
//! sensible choices a physician could have made, deliberately *not*
//! tuned against the models — the KD approach's bias is the point.

use msaw_cohort::Domain;
use msaw_preprocess::SampleSet;
use serde::{Deserialize, Serialize};

/// Per-variable scoring function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScoreFn {
    /// Score 1 when the value is at least the cutoff (positive items:
    /// higher answer = better capacity).
    AtLeast(f64),
    /// Score 1 when the value is at most the cutoff (negative items:
    /// e.g. the paper's stress-level example, scored 1 below its cutoff).
    AtMost(f64),
    /// Linear ramp: 0 at `lo` or below, 1 at `hi` or above (continuous
    /// variables like the number of steps per day).
    Ramp {
        /// Value scoring 0.
        lo: f64,
        /// Value scoring 1.
        hi: f64,
    },
}

impl ScoreFn {
    /// Score one value.
    pub fn score(&self, value: f64) -> f64 {
        match *self {
            ScoreFn::AtLeast(cutoff) => f64::from(value >= cutoff),
            ScoreFn::AtMost(cutoff) => f64::from(value <= cutoff),
            ScoreFn::Ramp { lo, hi } => ((value - lo) / (hi - lo)).clamp(0.0, 1.0),
        }
    }
}

/// One expert-selected variable with its cutoff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IciVariable {
    /// Feature name (must match the sample set's feature names).
    pub feature: String,
    /// The IC domain the variable represents.
    pub domain: Domain,
    /// Its scoring function.
    pub score: ScoreFn,
}

/// The default expert specification: two PRO items per domain plus the
/// step count — eleven variables covering all five IC domains.
pub fn default_ici_spec() -> Vec<IciVariable> {
    fn var(feature: &str, domain: Domain, score: ScoreFn) -> IciVariable {
        IciVariable { feature: feature.to_string(), domain, score }
    }
    vec![
        // Note the expert's bias the paper calls out: the subset below
        // picks walking distance and joint pain for locomotion, missing
        // the balance-specific items entirely — and balance is a strong
        // falls driver. The DD models recover it; the ICI cannot.
        var("pro_locomotion_walk_distance", Domain::Locomotion, ScoreFn::AtLeast(3.0)),
        var("pro_locomotion_joint_pain", Domain::Locomotion, ScoreFn::AtMost(2.5)),
        var("pro_cognition_memory_recall", Domain::Cognition, ScoreFn::AtLeast(3.0)),
        var("pro_cognition_forgetfulness", Domain::Cognition, ScoreFn::AtMost(2.5)),
        var("pro_psychological_mood", Domain::Psychological, ScoreFn::AtLeast(3.0)),
        var("pro_psychological_stress_level", Domain::Psychological, ScoreFn::AtMost(2.5)),
        var("pro_vitality_energy_level", Domain::Vitality, ScoreFn::AtLeast(3.0)),
        var("pro_vitality_fatigue", Domain::Vitality, ScoreFn::AtMost(2.5)),
        var("pro_sensory_vision_near", Domain::Sensory, ScoreFn::AtLeast(3.0)),
        var("pro_sensory_hearing_conversation", Domain::Sensory, ScoreFn::AtLeast(3.0)),
        var("steps_monthly_mean", Domain::Locomotion, ScoreFn::Ramp { lo: 2000.0, hi: 9000.0 }),
    ]
}

/// ICI of one feature row: the mean score over the spec's variables,
/// skipping variables whose value is missing (the index renormalises,
/// as a clinician scoring an incomplete questionnaire would).
/// `None` when every spec variable is missing.
pub fn compute_ici_row(
    row: &[f64],
    feature_positions: &[Option<usize>],
    spec: &[IciVariable],
) -> Option<f64> {
    debug_assert_eq!(feature_positions.len(), spec.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (var, pos) in spec.iter().zip(feature_positions) {
        let Some(p) = pos else { continue };
        let v = row[*p];
        if v.is_nan() {
            continue;
        }
        sum += var.score.score(v);
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Transform a DD sample set into the KD `Sample^ICI_o` variant: the
/// same rows, labels and provenance, with the 59 features collapsed
/// into a single `ici` column.
pub fn ici_sample_set(set: &SampleSet, spec: &[IciVariable]) -> SampleSet {
    let positions: Vec<Option<usize>> =
        spec.iter().map(|v| set.feature_names.iter().position(|n| n == &v.feature)).collect();
    assert!(
        positions.iter().any(|p| p.is_some()),
        "none of the ICI spec variables exist in the sample set"
    );
    let ici: Vec<f64> = (0..set.len())
        .map(|i| compute_ici_row(set.features.row(i), &positions, spec).unwrap_or(f64::NAN))
        .collect();
    SampleSet {
        features: msaw_tabular::Matrix::from_vec(ici.clone(), set.len(), 1),
        feature_names: vec!["ici".to_string()],
        labels: set.labels.clone(),
        meta: set.meta.clone(),
        outcome: set.outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};
    use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, PipelineConfig};

    #[test]
    fn score_functions_behave() {
        assert_eq!(ScoreFn::AtLeast(3.0).score(3.0), 1.0);
        assert_eq!(ScoreFn::AtLeast(3.0).score(2.9), 0.0);
        assert_eq!(ScoreFn::AtMost(2.5).score(2.5), 1.0);
        assert_eq!(ScoreFn::AtMost(2.5).score(2.6), 0.0);
        let ramp = ScoreFn::Ramp { lo: 2000.0, hi: 9000.0 };
        assert_eq!(ramp.score(1000.0), 0.0);
        assert_eq!(ramp.score(9000.0), 1.0);
        assert!((ramp.score(5500.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_spec_covers_all_domains() {
        let spec = default_ici_spec();
        for d in Domain::ALL {
            assert!(spec.iter().any(|v| v.domain == d), "domain {} unrepresented", d.name());
        }
    }

    #[test]
    fn spec_features_exist_in_the_panel() {
        let names = FeaturePanel::feature_names();
        for var in default_ici_spec() {
            assert!(names.contains(&var.feature), "{} not a feature", var.feature);
        }
    }

    #[test]
    fn ici_is_in_unit_interval_and_renormalises() {
        let spec = vec![
            IciVariable {
                feature: "a".into(),
                domain: Domain::Vitality,
                score: ScoreFn::AtLeast(3.0),
            },
            IciVariable {
                feature: "b".into(),
                domain: Domain::Vitality,
                score: ScoreFn::AtLeast(3.0),
            },
        ];
        let positions = vec![Some(0), Some(1)];
        assert_eq!(compute_ici_row(&[4.0, 1.0], &positions, &spec), Some(0.5));
        // Missing second variable: renormalise over the present one.
        assert_eq!(compute_ici_row(&[4.0, f64::NAN], &positions, &spec), Some(1.0));
        assert_eq!(compute_ici_row(&[f64::NAN, f64::NAN], &positions, &spec), None);
    }

    #[test]
    fn ici_sample_set_collapses_to_one_feature() {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let dd = build_samples(&data, &panel, OutcomeKind::Qol, &cfg);
        let kd = ici_sample_set(&dd, &default_ici_spec());
        assert_eq!(kd.features.ncols(), 1);
        assert_eq!(kd.len(), dd.len());
        assert_eq!(kd.labels, dd.labels);
        for i in 0..kd.len() {
            let v = kd.features.get(i, 0);
            assert!(v.is_nan() || (0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn ici_correlates_with_qol_labels() {
        // The expert index is meant to be a real (if lossy) health
        // signal: across the cohort, higher ICI should mean higher QoL.
        let data = generate(&CohortConfig::paper(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let dd = build_samples(&data, &panel, OutcomeKind::Qol, &cfg);
        let kd = ici_sample_set(&dd, &default_ici_spec());
        let pairs: Vec<(f64, f64)> = (0..kd.len())
            .filter(|&i| !kd.features.get(i, 0).is_nan())
            .map(|i| (kd.features.get(i, 0), kd.labels[i]))
            .collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sx * sy);
        assert!(corr > 0.4, "ICI–QoL correlation too weak: {corr}");
    }
}
