//! # msaw-parallel
//!
//! The workspace's one parallel execution primitive: a bounded worker
//! pool draining an indexed job list through a single atomic cursor,
//! with each output written into its job's dedicated slot.
//!
//! The contract that makes results *byte-identical at any worker count*:
//! every job must be a pure function of its index (no shared mutable
//! state, no RNG, no time), and reassembly is keyed by job index rather
//! than by completion order. Under that contract the pool only changes
//! *when* a job runs, never *what* it computes, so
//! `run_indexed_on(1, n, f) == run_indexed_on(k, n, f)` for every `k`.
//!
//! ## Panic safety
//!
//! Every entry point has a `try_` twin (`try_run_indexed_on`,
//! `try_run_scratch_on`, `try_run_blocks_on`, …) that wraps each job in
//! [`std::panic::catch_unwind`] and returns `Err(`[`PoolError`]`)`
//! instead of aborting the run. The failure policy is **drain, don't
//! short-circuit**: after a job panics the pool keeps claiming and
//! running the remaining jobs, so the reported failure is always the
//! *lowest* failing job index — a pure function of the job list, never
//! of worker count or scheduling. (Short-circuiting was rejected
//! because a higher-index failure could suppress a lower-index one that
//! another worker had not reached yet, making the report
//! scheduling-dependent.) A worker whose job panics rebuilds its
//! scratch value before the next claim, so surviving jobs never see a
//! scratch a panic may have left half-written.
//!
//! The infallible entry points are thin wrappers that panic with the
//! failing job's index and payload message.
//!
//! Extracted from `msaw-core`'s grid runner (which fans ~72 fold/final
//! fits) so the SHAP engine can fan row batches and conditional passes
//! across the same machinery.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A job inside the pool panicked.
///
/// `job` is deterministically the **lowest** panicking job index (the
/// pool drains every job before reporting), so the same inputs produce
/// the same error at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Lowest job index whose closure panicked.
    pub job: usize,
    /// The panic payload, when it was a string (the common
    /// `panic!("...")` case); a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Render a panic payload the way the default hook would.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of workers the machine can usefully run: one per core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The bounded default pool size: one worker per available core, never
/// more than there are jobs, always at least one.
pub fn default_workers(n_jobs: usize) -> usize {
    available_workers().clamp(1, n_jobs.max(1))
}

/// Run jobs `0..n_jobs` across the default bounded pool and return the
/// outputs in job-index order.
pub fn run_indexed<T, F>(n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_on(default_workers(n_jobs), n_jobs, job)
}

/// Run jobs `0..n_jobs` across exactly `workers` threads (clamped to
/// the job count) and return the outputs in job-index order.
pub fn run_indexed_on<T, F>(workers: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_scratch_on(workers, n_jobs, || (), |(), i| job(i))
}

/// [`try_run_indexed_on`] with the default bounded pool size.
pub fn try_run_indexed<T, F>(n_jobs: usize, job: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_run_indexed_on(default_workers(n_jobs), n_jobs, job)
}

/// Panic-safe [`run_indexed_on`]: a panicking job yields
/// `Err(PoolError)` carrying the lowest failing index (see the crate
/// docs for the drain policy) instead of unwinding through the pool.
pub fn try_run_indexed_on<T, F>(workers: usize, n_jobs: usize, job: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_run_scratch_on(workers, n_jobs, || (), |(), i| job(i))
}

/// [`run_scratch_on`] with the default bounded pool size.
pub fn run_scratch<S, T, G, F>(n_jobs: usize, scratch: G, job: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_scratch_on(default_workers(n_jobs), n_jobs, scratch, job)
}

/// Like [`run_indexed_on`], but each worker owns a reusable scratch
/// value built by `scratch()` — the hook that lets e.g. a SHAP worker
/// keep one traversal arena alive across all the rows it claims.
///
/// The scratch must be a pure buffer: outputs may not depend on which
/// jobs previously touched it, or determinism across worker counts is
/// lost.
pub fn run_scratch_on<S, T, G, F>(workers: usize, n_jobs: usize, scratch: G, job: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    match try_run_scratch_on(workers, n_jobs, scratch, job) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`try_run_scratch_on`] with the default bounded pool size.
pub fn try_run_scratch<S, T, G, F>(n_jobs: usize, scratch: G, job: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    try_run_scratch_on(default_workers(n_jobs), n_jobs, scratch, job)
}

/// Panic-safe [`run_scratch_on`] — the crate's core primitive; every
/// other entry point funnels here.
///
/// Each claimed job runs inside `catch_unwind`. On a panic the worker
/// records `(index, payload)`, drops its scratch (rebuilt lazily before
/// the next job) and keeps draining the cursor; when every job has been
/// claimed the pool reports the lowest failing index. A `scratch()`
/// panic is attributed to the job that triggered the (re)build.
pub fn try_run_scratch_on<S, T, G, F>(
    workers: usize,
    n_jobs: usize,
    scratch: G,
    job: F,
) -> Result<Vec<T>, PoolError>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    // One worker's drain loop: claim from `next`, run under
    // catch_unwind, keep (index, output) pairs and any failures.
    #[allow(clippy::type_complexity)]
    fn drain<S, T, G, F>(
        next: impl Fn() -> usize,
        n_jobs: usize,
        scratch: &G,
        job: &F,
    ) -> (Vec<(usize, T)>, Vec<(usize, String)>)
    where
        G: Fn() -> S,
        F: Fn(&mut S, usize) -> T,
    {
        let mut slot: Option<S> = None;
        let mut done: Vec<(usize, T)> = Vec::new();
        let mut failed: Vec<(usize, String)> = Vec::new();
        loop {
            let i = next();
            if i >= n_jobs {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| job(slot.get_or_insert_with(scratch), i))) {
                Ok(out) => done.push((i, out)),
                Err(payload) => {
                    // The panic may have left the scratch half-written;
                    // rebuild it so surviving jobs stay deterministic.
                    slot = None;
                    failed.push((i, payload_message(payload)));
                }
            }
        }
        (done, failed)
    }

    let workers = workers.clamp(1, n_jobs.max(1));
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();
    if workers == 1 {
        // Serial fast path: no threads, one scratch, same outputs, same
        // drain policy (every job still runs, so the reported index
        // matches the threaded path).
        let serial_cursor = AtomicUsize::new(0);
        let (done, failed) =
            drain(|| serial_cursor.fetch_add(1, Ordering::Relaxed), n_jobs, &scratch, &job);
        for (i, out) in done {
            slots[i] = Some(out);
        }
        failures = failed;
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let scratch = &scratch;
                    let job = &job;
                    scope.spawn(move || {
                        drain(|| cursor.fetch_add(1, Ordering::Relaxed), n_jobs, scratch, job)
                    })
                })
                .collect();
            for handle in handles {
                let (done, failed) = handle.join().expect("pool worker panicked outside a job");
                for (i, out) in done {
                    debug_assert!(slots[i].is_none(), "each job slot is written once");
                    slots[i] = Some(out);
                }
                failures.extend(failed);
            }
        });
    }
    if let Some((job, message)) = failures.into_iter().min_by_key(|(i, _)| *i) {
        return Err(PoolError { job, message });
    }
    Ok(slots.into_iter().map(|slot| slot.expect("worker pool completed every job")).collect())
}

/// [`run_blocks_on`] with the default bounded pool size.
pub fn run_blocks<T, F>(n_items: usize, block_len: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let n_blocks = n_items.div_ceil(block_len.max(1));
    run_blocks_on(default_workers(n_blocks), n_items, block_len, job)
}

/// Fan items `0..n_items` across the pool in contiguous blocks of
/// `block_len` and flatten the per-block outputs back into item order.
///
/// The blocked shape is for jobs whose per-item cost is too small to
/// amortise a pool claim — batch prediction being the canonical case:
/// each block job returns one output per item of its range, and the
/// index-ordered reassembly keeps the flattened vector byte-identical
/// at any worker count (the same contract as [`run_indexed_on`]).
pub fn run_blocks_on<T, F>(workers: usize, n_items: usize, block_len: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    match try_run_blocks_on(workers, n_items, block_len, job) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`try_run_blocks_on`] with the default bounded pool size.
pub fn try_run_blocks<T, F>(n_items: usize, block_len: usize, job: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let n_blocks = n_items.div_ceil(block_len.max(1));
    try_run_blocks_on(default_workers(n_blocks), n_items, block_len, job)
}

/// Panic-safe [`run_blocks_on`]. `PoolError::job` is the failing
/// *block* index (blocks are the pool's jobs here). Zero items means
/// zero jobs: the result is `Ok(vec![])`, never an error.
pub fn try_run_blocks_on<T, F>(
    workers: usize,
    n_items: usize,
    block_len: usize,
    job: F,
) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let block_len = block_len.max(1);
    let n_blocks = n_items.div_ceil(block_len);
    let blocks = try_run_indexed_on(workers, n_blocks, |b| {
        let start = b * block_len;
        job(start..(start + block_len).min(n_items))
    })?;
    let mut out = Vec::with_capacity(n_items);
    for block in blocks {
        out.extend(block);
    }
    Ok(out)
}

/// Why a [`try_run_waves_on`] run stopped early.
#[derive(Debug)]
pub enum WaveError<E> {
    /// A job inside a wave panicked (lowest failing index within its
    /// wave, rebased to the global job list).
    Pool(PoolError),
    /// The in-order consumer rejected a job's output; carries the
    /// consumer's own error.
    Consume(E),
}

impl<E: std::fmt::Display> std::fmt::Display for WaveError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveError::Pool(e) => write!(f, "{e}"),
            WaveError::Consume(e) => write!(f, "wave consumer failed: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for WaveError<E> {}

/// Fan jobs `0..n_jobs` across the pool in bounded waves of `wave`
/// jobs, feeding each wave's outputs to `consume` **in job-index
/// order** on the calling thread before the next wave starts.
///
/// This is the streaming-merge shape: producers are pure functions of
/// their index (the usual pool contract), the consumer is a stateful
/// fold (merging sketches, appending encoded blocks), and at most
/// `wave` outputs are ever held in memory. Because consumption order
/// is the job order regardless of `workers` or `wave`, the folded
/// result is byte-identical at any worker count — including
/// `workers == 1`, which takes the pool's serial fast path.
///
/// A consumer error stops the run before later waves launch; a panic
/// inside a wave surfaces as [`WaveError::Pool`] with the lowest
/// failing global job index of that wave (earlier waves have already
/// been consumed, later ones never start).
pub fn try_run_waves_on<T, E, F, C>(
    workers: usize,
    n_jobs: usize,
    wave: usize,
    job: F,
    mut consume: C,
) -> Result<(), WaveError<E>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    let wave = wave.max(1);
    let mut start = 0usize;
    while start < n_jobs {
        let end = (start + wave).min(n_jobs);
        let outs =
            try_run_indexed_on(workers, end - start, |k| job(start + k)).map_err(|mut e| {
                e.job += start;
                WaveError::Pool(e)
            })?;
        for (k, out) in outs.into_iter().enumerate() {
            consume(start + k, out).map_err(WaveError::Consume)?;
        }
        start = end;
    }
    Ok(())
}

/// Test-only fault injection (feature `failpoint`): arm a named site
/// with a job index and the matching [`hit`](failpoint::hit) call
/// fires the armed action — a panic ([`arm`](failpoint::arm)) or a
/// deterministic stall ([`arm_sleep`](failpoint::arm_sleep)). Used by
/// the fault-injection suites to prove a panicking grid fit surfaces
/// as a typed error at any worker count, and to wedge the serving
/// batcher at an exact batch so queue-pressure behaviour (deadlines,
/// quotas, degradation) is testable without timing races. Compiled
/// out entirely unless the feature is enabled.
#[cfg(feature = "failpoint")]
pub mod failpoint {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Duration;

    /// What an armed site does when its job hits it.
    #[derive(Clone, Copy)]
    enum Action {
        Panic,
        Sleep(Duration),
    }

    static ARMED: Mutex<Option<HashMap<String, HashMap<usize, Action>>>> = Mutex::new(None);

    fn arm_action(site: &str, job: usize, action: Action) {
        let mut armed = ARMED.lock().expect("failpoint registry");
        armed
            .get_or_insert_with(HashMap::new)
            .entry(site.to_string())
            .or_default()
            .insert(job, action);
    }

    /// Arm `site` to panic when job `job` hits it. A site may be armed
    /// for several jobs at once (to prove the pool reports the lowest
    /// failing index regardless of which worker detonates first).
    pub fn arm(site: &str, job: usize) {
        arm_action(site, job, Action::Panic);
    }

    /// Arm `site` to sleep for `delay` when job `job` hits it — a
    /// deterministic stall instead of a detonation, for tests that need
    /// work to pile up behind a known point (a wedged batcher, a slow
    /// worker) without depending on scheduler timing.
    pub fn arm_sleep(site: &str, job: usize, delay: Duration) {
        arm_action(site, job, Action::Sleep(delay));
    }

    /// Disarm every site.
    pub fn disarm_all() {
        *ARMED.lock().expect("failpoint registry") = None;
    }

    /// Fire whatever `site` is armed for at `job`. Call from production
    /// code under `#[cfg(feature = "failpoint")]`; a disarmed site is a
    /// cheap map lookup. The registry lock is released before the
    /// action runs, so a sleeping site never blocks arming or other
    /// sites.
    pub fn hit(site: &str, job: usize) {
        let action = {
            let armed = ARMED.lock().expect("failpoint registry");
            armed.as_ref().and_then(|map| map.get(site)).and_then(|jobs| jobs.get(&job)).copied()
        };
        match action {
            Some(Action::Panic) => panic!("failpoint `{site}` fired at job {job}"),
            Some(Action::Sleep(delay)) => std::thread::sleep(delay),
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_are_in_index_order_at_any_worker_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_indexed_on(workers, 97, |i| i * i);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn zero_jobs_yield_empty_output() {
        let got: Vec<usize> = run_indexed(0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed_on(4, 50, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each worker's scratch counts the jobs it claimed; the total
        // must cover every job no matter how they were distributed.
        let claimed = AtomicUsize::new(0);
        let out = run_scratch_on(
            3,
            40,
            || 0usize,
            |s, i| {
                *s += 1;
                claimed.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(claimed.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(1000) >= 1);
        // More workers than jobs must still complete correctly.
        let got = run_indexed_on(32, 3, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    /// Silence the default panic hook for tests that intentionally
    /// panic inside jobs; restores the hook when dropped. Tests using
    /// it must hold the same lock (the hook is process-global).
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn try_reports_lowest_failing_index_at_any_worker_count() {
        quiet_panics(|| {
            for workers in [1, 2, 3, 8] {
                let err = try_run_indexed_on(workers, 60, |i| {
                    // Jobs 7, 23 and 41 fail; 7 must always win.
                    if i == 7 || i == 23 || i == 41 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .unwrap_err();
                assert_eq!(err.job, 7, "workers={workers}");
                assert_eq!(err.message, "boom at 7");
            }
        });
    }

    #[test]
    fn try_drains_every_job_even_after_a_failure() {
        quiet_panics(|| {
            let ran: Vec<AtomicUsize> = (0..30).map(|_| AtomicUsize::new(0)).collect();
            let err = try_run_indexed_on(2, 30, |i| {
                ran[i].fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("first job fails");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.job, 0);
            for (i, c) in ran.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "job {i} must still run (drain policy)");
            }
        });
    }

    #[test]
    fn try_succeeds_bit_identically_to_infallible_path() {
        let expect: Vec<usize> = (0..41).map(|i| i * 3).collect();
        for workers in [1, 2, 8] {
            assert_eq!(try_run_indexed_on(workers, 41, |i| i * 3).unwrap(), expect);
        }
    }

    #[test]
    fn try_zero_jobs_is_ok_empty() {
        let got: Result<Vec<usize>, PoolError> = try_run_indexed(0, |i| i);
        assert_eq!(got.unwrap(), Vec::<usize>::new());
        let blocks: Result<Vec<usize>, PoolError> = try_run_blocks(0, 256, |r| r.collect());
        assert_eq!(blocks.unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn scratch_is_rebuilt_after_a_panic() {
        quiet_panics(|| {
            // Serial pool: job 3 poisons its scratch then panics; later
            // jobs must observe a fresh scratch, not the poisoned one.
            let err = try_run_scratch_on(
                1,
                8,
                || 0usize,
                |s, i| {
                    if i == 3 {
                        *s = 999;
                        panic!("poisoned");
                    }
                    assert_ne!(*s, 999, "job {i} saw a scratch from a panicked job");
                    *s += 1;
                    i
                },
            )
            .unwrap_err();
            assert_eq!(err.job, 3);
        });
    }

    #[test]
    fn non_string_payloads_are_reported() {
        quiet_panics(|| {
            let err = try_run_indexed_on(2, 4, |i| {
                if i == 2 {
                    std::panic::panic_any(42usize);
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.job, 2);
            assert_eq!(err.message, "non-string panic payload");
        });
    }

    #[test]
    fn string_payloads_survive() {
        quiet_panics(|| {
            let err = try_run_indexed_on(1, 2, |i| {
                if i == 1 {
                    std::panic::panic_any(String::from("owned payload"));
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.message, "owned payload");
        });
    }

    #[test]
    fn infallible_wrapper_panics_with_job_index() {
        quiet_panics(|| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_indexed_on(2, 10, |i| {
                    if i == 4 {
                        panic!("inner");
                    }
                    i
                })
            }));
            let msg = payload_message(caught.unwrap_err());
            assert!(msg.contains("job 4") && msg.contains("inner"), "{msg}");
        });
    }

    #[test]
    fn try_blocks_reports_failing_block_index() {
        quiet_panics(|| {
            for workers in [1, 2, 8] {
                let err = try_run_blocks_on(workers, 100, 10, |r| {
                    if r.start == 30 {
                        panic!("block panic");
                    }
                    r.collect::<Vec<usize>>()
                })
                .unwrap_err();
                assert_eq!(err.job, 3, "workers={workers}");
            }
        });
    }

    #[test]
    fn waves_consume_in_index_order_at_any_worker_and_wave_size() {
        for workers in [1usize, 2, 8] {
            for wave in [1usize, 3, 50] {
                let mut seen = Vec::new();
                try_run_waves_on(
                    workers,
                    23,
                    wave,
                    |i| i * 10,
                    |i, out| {
                        seen.push((i, out));
                        Ok::<(), ()>(())
                    },
                )
                .unwrap();
                let expect: Vec<(usize, usize)> = (0..23).map(|i| (i, i * 10)).collect();
                assert_eq!(seen, expect, "workers={workers} wave={wave}");
            }
        }
    }

    #[test]
    fn wave_consumer_error_stops_later_waves() {
        let produced = AtomicUsize::new(0);
        let err = try_run_waves_on(
            2,
            20,
            4,
            |i| {
                produced.fetch_add(1, Ordering::Relaxed);
                i
            },
            |i, _| if i == 5 { Err("reject") } else { Ok(()) },
        )
        .unwrap_err();
        match err {
            WaveError::Consume(e) => assert_eq!(e, "reject"),
            other => panic!("expected Consume, got {other:?}"),
        }
        // Waves 0 and 1 (jobs 0..8) ran; the rejection at job 5 stops
        // wave 2 from launching.
        assert_eq!(produced.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn wave_pool_error_carries_global_job_index() {
        quiet_panics(|| {
            let err = try_run_waves_on(
                2,
                20,
                4,
                |i| {
                    if i == 9 {
                        panic!("boom");
                    }
                    i
                },
                |_, _| Ok::<(), ()>(()),
            )
            .unwrap_err();
            match err {
                WaveError::Pool(e) => assert_eq!(e.job, 9),
                other => panic!("expected Pool, got {other:?}"),
            }
        });
    }

    #[cfg(feature = "failpoint")]
    #[test]
    fn failpoint_fires_only_when_armed() {
        quiet_panics(|| {
            failpoint::disarm_all();
            failpoint::hit("site_a", 0); // disarmed: no panic
            failpoint::arm("site_a", 2);
            failpoint::hit("site_a", 1); // wrong job: no panic
            let err = try_run_indexed_on(2, 4, |i| {
                failpoint::hit("site_a", i);
                i
            })
            .unwrap_err();
            assert_eq!(err.job, 2);
            assert!(err.message.contains("failpoint `site_a`"));
            failpoint::disarm_all();
            // Disarmed again: the same run now succeeds.
            assert!(try_run_indexed_on(2, 4, |i| i).is_ok());
        });
    }

    #[cfg(feature = "failpoint")]
    #[test]
    fn failpoint_sleep_stalls_instead_of_panicking() {
        quiet_panics(|| {
            failpoint::disarm_all();
            failpoint::arm_sleep("site_sleep", 1, std::time::Duration::from_millis(30));
            let start = std::time::Instant::now();
            failpoint::hit("site_sleep", 0); // wrong job: no stall
            assert!(start.elapsed() < std::time::Duration::from_millis(25));
            failpoint::hit("site_sleep", 1); // armed: deterministic stall
            assert!(start.elapsed() >= std::time::Duration::from_millis(30));
            failpoint::disarm_all();
        });
    }
}
