//! # msaw-parallel
//!
//! The workspace's one parallel execution primitive: a bounded worker
//! pool draining an indexed job list through a single atomic cursor,
//! with each output written into its job's dedicated slot.
//!
//! The contract that makes results *byte-identical at any worker count*:
//! every job must be a pure function of its index (no shared mutable
//! state, no RNG, no time), and reassembly is keyed by job index rather
//! than by completion order. Under that contract the pool only changes
//! *when* a job runs, never *what* it computes, so
//! `run_indexed_on(1, n, f) == run_indexed_on(k, n, f)` for every `k`.
//!
//! Extracted from `msaw-core`'s grid runner (which fans ~72 fold/final
//! fits) so the SHAP engine can fan row batches and conditional passes
//! across the same machinery.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers the machine can usefully run: one per core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The bounded default pool size: one worker per available core, never
/// more than there are jobs, always at least one.
pub fn default_workers(n_jobs: usize) -> usize {
    available_workers().clamp(1, n_jobs.max(1))
}

/// Run jobs `0..n_jobs` across the default bounded pool and return the
/// outputs in job-index order.
pub fn run_indexed<T, F>(n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_on(default_workers(n_jobs), n_jobs, job)
}

/// Run jobs `0..n_jobs` across exactly `workers` threads (clamped to
/// the job count) and return the outputs in job-index order.
pub fn run_indexed_on<T, F>(workers: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_scratch_on(workers, n_jobs, || (), |(), i| job(i))
}

/// [`run_scratch_on`] with the default bounded pool size.
pub fn run_scratch<S, T, G, F>(n_jobs: usize, scratch: G, job: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_scratch_on(default_workers(n_jobs), n_jobs, scratch, job)
}

/// Like [`run_indexed_on`], but each worker owns a reusable scratch
/// value built by `scratch()` — the hook that lets e.g. a SHAP worker
/// keep one traversal arena alive across all the rows it claims.
///
/// The scratch must be a pure buffer: outputs may not depend on which
/// jobs previously touched it, or determinism across worker counts is
/// lost.
pub fn run_scratch_on<S, T, G, F>(workers: usize, n_jobs: usize, scratch: G, job: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = workers.clamp(1, n_jobs.max(1));
    if workers == 1 {
        // Serial fast path: no threads, one scratch, same outputs.
        let mut s = scratch();
        return (0..n_jobs).map(|i| job(&mut s, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut s = scratch();
                    let mut claimed: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_jobs {
                            break;
                        }
                        claimed.push((i, job(&mut s, i)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            for (i, out) in handle.join().expect("pool worker panicked") {
                debug_assert!(slots[i].is_none(), "each job slot is written once");
                slots[i] = Some(out);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("worker pool completed every job")).collect()
}

/// [`run_blocks_on`] with the default bounded pool size.
pub fn run_blocks<T, F>(n_items: usize, block_len: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let n_blocks = n_items.div_ceil(block_len.max(1));
    run_blocks_on(default_workers(n_blocks), n_items, block_len, job)
}

/// Fan items `0..n_items` across the pool in contiguous blocks of
/// `block_len` and flatten the per-block outputs back into item order.
///
/// The blocked shape is for jobs whose per-item cost is too small to
/// amortise a pool claim — batch prediction being the canonical case:
/// each block job returns one output per item of its range, and the
/// index-ordered reassembly keeps the flattened vector byte-identical
/// at any worker count (the same contract as [`run_indexed_on`]).
pub fn run_blocks_on<T, F>(workers: usize, n_items: usize, block_len: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let block_len = block_len.max(1);
    let n_blocks = n_items.div_ceil(block_len);
    let blocks = run_indexed_on(workers, n_blocks, |b| {
        let start = b * block_len;
        job(start..(start + block_len).min(n_items))
    });
    let mut out = Vec::with_capacity(n_items);
    for block in blocks {
        out.extend(block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_are_in_index_order_at_any_worker_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_indexed_on(workers, 97, |i| i * i);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn zero_jobs_yield_empty_output() {
        let got: Vec<usize> = run_indexed(0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_indexed_on(4, 50, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each worker's scratch counts the jobs it claimed; the total
        // must cover every job no matter how they were distributed.
        let claimed = AtomicUsize::new(0);
        let out = run_scratch_on(
            3,
            40,
            || 0usize,
            |s, i| {
                *s += 1;
                claimed.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(claimed.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(1000) >= 1);
        // More workers than jobs must still complete correctly.
        let got = run_indexed_on(32, 3, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }
}
