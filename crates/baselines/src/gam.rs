//! Generalised additive model via cyclic gradient boosting.
//!
//! `f(x) = base + Σ_j g_j(x_j)` where each shape function `g_j` is
//! piecewise constant over the feature's quantile bins (plus one bin
//! for missing values). Training visits features round-robin; each
//! visit applies one shrunken Newton step per bin — the univariate core
//! of the GA²M / EBM family. The model stays fully glass-box: every
//! prediction decomposes exactly into per-feature contributions.

use msaw_gbdt::binning::BinnedMatrix;
use msaw_gbdt::{Objective, TrainError};
use msaw_tabular::Matrix;
use serde::{Deserialize, Serialize};

/// GAM hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GamParams {
    /// Full passes over the feature set.
    pub n_rounds: usize,
    /// Shrinkage per bin update.
    pub learning_rate: f64,
    /// L2 regularisation on each bin's Newton step.
    pub lambda: f64,
    /// Quantile bins per feature.
    pub max_bins: u16,
    /// Loss function.
    pub objective: Objective,
}

impl GamParams {
    /// Defaults for regression.
    pub fn regression() -> Self {
        GamParams {
            n_rounds: 40,
            learning_rate: 0.25,
            lambda: 2.0,
            max_bins: 32,
            objective: Objective::SquaredError,
        }
    }

    /// Defaults for binary classification.
    pub fn binary() -> Self {
        GamParams {
            objective: Objective::Logistic { scale_pos_weight: 1.0 },
            ..GamParams::regression()
        }
    }
}

/// One feature's fitted shape function: an additive offset per bin.
/// Index `cuts.len()` (the last slot) is the missing-value bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeFunction {
    /// Bin boundaries (`v < cuts[i]` falls in bin `i` or lower).
    pub cuts: Vec<f64>,
    /// Additive contribution per bin; final entry = missing bin.
    pub values: Vec<f64>,
}

impl ShapeFunction {
    /// The contribution of a feature value.
    pub fn evaluate(&self, v: f64) -> f64 {
        if v.is_nan() {
            *self.values.last().expect("missing bin exists")
        } else {
            self.values[self.cuts.partition_point(|&c| c <= v)]
        }
    }
}

/// A trained additive model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdditiveModel {
    /// Constant raw offset.
    pub base_score: f64,
    /// One shape function per feature.
    pub shapes: Vec<ShapeFunction>,
    objective: Objective,
}

impl AdditiveModel {
    /// Train on `data` (NaN = missing) against `labels`.
    pub fn train(params: &GamParams, data: &Matrix, labels: &[f64]) -> Result<Self, TrainError> {
        if data.nrows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        if labels.len() != data.nrows() {
            return Err(TrainError::LabelLength { rows: data.nrows(), labels: labels.len() });
        }
        params.objective.validate_labels(labels)?;
        if params.n_rounds == 0 {
            return Err(TrainError::InvalidParam {
                name: "n_rounds",
                message: "must be positive".into(),
            });
        }

        let n = data.nrows();
        let binned = BinnedMatrix::fit(data, params.max_bins);
        // Pre-resolve each row's bin per feature (missing = last bin).
        let n_bins_of = |f: usize| binned.cuts(f).len() + 2; // value bins + missing
        let mut shapes: Vec<ShapeFunction> = (0..data.ncols())
            .map(|f| ShapeFunction {
                cuts: binned.cuts(f).to_vec(),
                values: vec![0.0; n_bins_of(f)],
            })
            .collect();
        let row_bins: Vec<Vec<u32>> = (0..data.ncols())
            .map(|f| {
                (0..n)
                    .map(|i| match binned.bin(i, f) {
                        Some(b) => b as u32,
                        None => (n_bins_of(f) - 1) as u32,
                    })
                    .collect()
            })
            .collect();

        let base_score = params.objective.base_score(labels);
        let mut raw = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for _round in 0..params.n_rounds {
            for f in 0..data.ncols() {
                params.objective.grad_hess(labels, &raw, &mut grad, &mut hess);
                let n_bins = n_bins_of(f);
                let mut g = vec![0.0f64; n_bins];
                let mut h = vec![0.0f64; n_bins];
                for i in 0..n {
                    let b = row_bins[f][i] as usize;
                    g[b] += grad[i];
                    h[b] += hess[i];
                }
                let shape = &mut shapes[f];
                let mut deltas = vec![0.0f64; n_bins];
                for b in 0..n_bins {
                    if h[b] > 0.0 {
                        deltas[b] = -g[b] / (h[b] + params.lambda) * params.learning_rate;
                        shape.values[b] += deltas[b];
                    }
                }
                for i in 0..n {
                    raw[i] += deltas[row_bins[f][i] as usize];
                }
            }
        }

        // Centre each shape function so the decomposition is identified
        // (mean contribution folded into the base score).
        let mut model = AdditiveModel { base_score, shapes, objective: params.objective };
        for f in 0..data.ncols() {
            let mean: f64 =
                (0..n).map(|i| model.shapes[f].evaluate(data.get(i, f))).sum::<f64>() / n as f64;
            for v in &mut model.shapes[f].values {
                *v -= mean;
            }
            model.base_score += mean;
        }
        Ok(model)
    }

    /// Raw (untransformed) score for a row.
    pub fn predict_raw_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.shapes.len());
        self.base_score + row.iter().zip(&self.shapes).map(|(&v, s)| s.evaluate(v)).sum::<f64>()
    }

    /// Transformed prediction for a row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.objective.transform(self.predict_raw_row(row))
    }

    /// Transformed predictions for a matrix, fanned across the shared
    /// worker pool in row blocks (per-row values unchanged).
    pub fn predict(&self, data: &Matrix) -> Vec<f64> {
        msaw_parallel::run_blocks(data.nrows(), 256, |range| {
            range.map(|i| self.predict_row(data.row(i))).collect()
        })
    }

    /// Exact per-feature contributions for a row (raw-score space):
    /// glass-box by construction, no post-hoc approximation needed.
    pub fn contributions(&self, row: &[f64]) -> Vec<f64> {
        row.iter().zip(&self.shapes).map(|(&v, s)| s.evaluate(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn additive_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = step(x0) + linear(x1): perfectly additive — a GAM's home turf.
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i % 10) as f64, ((i * 3) % 7) as f64]).collect();
        let y: Vec<f64> =
            rows.iter().map(|r| if r[0] > 4.0 { 3.0 } else { 0.0 } + 0.5 * r[1]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_an_additive_function_well() {
        let (x, y) = additive_data(200);
        let model = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        let preds = model.predict(&x);
        let mae: f64 =
            y.iter().zip(&preds).map(|(a, b)| (a - b).abs()).sum::<f64>() / y.len() as f64;
        assert!(mae < 0.15, "MAE {mae} on a purely additive target");
    }

    #[test]
    fn contributions_decompose_the_prediction_exactly() {
        let (x, y) = additive_data(120);
        let model = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        for i in 0..x.nrows() {
            let row = x.row(i);
            let total = model.base_score + model.contributions(row).iter().sum::<f64>();
            assert!((total - model.predict_raw_row(row)).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_values_get_their_own_bin() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![if i % 4 == 0 { f64::NAN } else { (i % 10) as f64 }]).collect();
        let y: Vec<f64> =
            (0..100).map(|i| if i % 4 == 0 { 9.0 } else { (i % 10) as f64 * 0.1 }).collect();
        let x = Matrix::from_rows(&rows);
        let model = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        // The missing bin must have learned the elevated target.
        let p_missing = model.predict_row(&[f64::NAN]);
        let p_present = model.predict_row(&[5.0]);
        assert!(p_missing > p_present + 5.0, "{p_missing} vs {p_present}");
    }

    #[test]
    fn classification_probabilities_are_bounded_and_ordered() {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![(i % 12) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| f64::from(r[0] >= 6.0)).collect();
        let x = Matrix::from_rows(&rows);
        let model = AdditiveModel::train(&GamParams::binary(), &x, &y).unwrap();
        let lo = model.predict_row(&[1.0]);
        let hi = model.predict_row(&[10.0]);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi > 0.8 && lo < 0.2, "lo {lo} hi {hi}");
    }

    #[test]
    fn cannot_model_a_pure_interaction() {
        // y = XOR(x0>0.5, x1>0.5): zero additive signal. The GAM must
        // degenerate to ≈ the mean — this is exactly the capacity gap
        // that makes trees outperform it in the paper.
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| f64::from((r[0] > 0.5) != (r[1] > 0.5))).collect();
        let x = Matrix::from_rows(&rows);
        let model = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        for i in 0..x.nrows() {
            let p = model.predict_row(x.row(i));
            assert!((p - 0.5).abs() < 0.05, "GAM should stay near the mean, got {p}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let x = Matrix::zeros(0, 2);
        assert!(matches!(
            AdditiveModel::train(&GamParams::regression(), &x, &[]),
            Err(TrainError::EmptyDataset)
        ));
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            AdditiveModel::train(&GamParams::regression(), &x, &[1.0]),
            Err(TrainError::LabelLength { .. })
        ));
        let bad = GamParams { n_rounds: 0, ..GamParams::regression() };
        assert!(AdditiveModel::train(&bad, &Matrix::zeros(3, 1), &[1.0; 3]).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = additive_data(80);
        let a = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        let b = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shape_functions_are_centred() {
        let (x, y) = additive_data(150);
        let model = AdditiveModel::train(&GamParams::regression(), &x, &y).unwrap();
        for f in 0..x.ncols() {
            let mean: f64 =
                (0..x.nrows()).map(|i| model.shapes[f].evaluate(x.get(i, f))).sum::<f64>()
                    / x.nrows() as f64;
            assert!(mean.abs() < 1e-9, "shape {f} mean {mean}");
        }
    }
}
