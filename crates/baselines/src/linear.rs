//! Ridge-regularised linear / logistic regression — the classical
//! clinical-statistics baseline, trained by full-batch gradient descent
//! on standardised features.
//!
//! Missing values are replaced by the feature's training mean, which is
//! equivalent to a zero contribution after standardisation; the learned
//! means are stored in the model so inference applies the same rule.

use msaw_gbdt::{Objective, TrainError};
use msaw_tabular::Matrix;
use serde::{Deserialize, Serialize};

/// Linear-model hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// Gradient-descent iterations.
    pub n_iters: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 penalty on the weights (not the intercept).
    pub lambda: f64,
    /// Loss function.
    pub objective: Objective,
}

impl LinearParams {
    /// Defaults for regression.
    pub fn regression() -> Self {
        LinearParams {
            n_iters: 800,
            learning_rate: 1.5,
            lambda: 1e-3,
            objective: Objective::SquaredError,
        }
    }

    /// Defaults for binary classification.
    pub fn binary() -> Self {
        LinearParams {
            objective: Objective::Logistic { scale_pos_weight: 1.0 },
            ..LinearParams::regression()
        }
    }
}

/// A trained linear model over standardised features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Weight per (standardised) feature.
    pub weights: Vec<f64>,
    /// Intercept in raw-score space.
    pub intercept: f64,
    /// Per-feature training means (also the missing-value fill).
    pub means: Vec<f64>,
    /// Per-feature training standard deviations (1 when degenerate).
    pub stds: Vec<f64>,
    objective: Objective,
}

impl LinearModel {
    /// Train on `data` (NaN = missing) against `labels`.
    pub fn train(params: &LinearParams, data: &Matrix, labels: &[f64]) -> Result<Self, TrainError> {
        if data.nrows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        if labels.len() != data.nrows() {
            return Err(TrainError::LabelLength { rows: data.nrows(), labels: labels.len() });
        }
        params.objective.validate_labels(labels)?;
        let n = data.nrows();
        let d = data.ncols();

        // Missing-aware standardisation statistics.
        let mut means = vec![0.0f64; d];
        let mut stds = vec![1.0f64; d];
        for j in 0..d {
            let col = data.column(j);
            let present: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
            if present.is_empty() {
                continue;
            }
            let mean = present.iter().sum::<f64>() / present.len() as f64;
            let var =
                present.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / present.len() as f64;
            means[j] = mean;
            stds[j] = if var > 1e-12 { var.sqrt() } else { 1.0 };
        }

        // Standardised dense design matrix (missing → 0 after centring).
        let mut z = vec![0.0f64; n * d];
        for i in 0..n {
            for j in 0..d {
                let v = data.get(i, j);
                z[i * d + j] = if v.is_nan() { 0.0 } else { (v - means[j]) / stds[j] };
            }
        }

        // Correlated features (the 56 PRO items all track the same
        // latent state) inflate the Gram matrix's top eigenvalue far
        // beyond 1, so a fixed step diverges. Estimate λ_max by power
        // iteration and scale the step to stay inside the stable region.
        let lambda_max = {
            let mut v = vec![1.0 / (d as f64).sqrt(); d];
            let mut lambda = 1.0f64;
            for _ in 0..10 {
                // u = Zᵀ(Z v) / n
                let mut u = vec![0.0f64; d];
                for i in 0..n {
                    let zr = &z[i * d..(i + 1) * d];
                    let s = dot(zr, &v);
                    for (uj, &zv) in u.iter_mut().zip(zr) {
                        *uj += s * zv;
                    }
                }
                for uj in &mut u {
                    *uj /= n as f64;
                }
                lambda = dot(&u, &u).sqrt();
                if lambda <= 1e-12 {
                    lambda = 1.0;
                    break;
                }
                for (vj, &uj) in v.iter_mut().zip(&u) {
                    *vj = uj / lambda;
                }
            }
            lambda.max(1.0)
        };
        let step = params.learning_rate / lambda_max;

        let mut weights = vec![0.0f64; d];
        let mut intercept = params.objective.base_score(labels);
        let mut raw = vec![0.0f64; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        for _ in 0..params.n_iters {
            for i in 0..n {
                let zr = &z[i * d..(i + 1) * d];
                raw[i] = intercept + dot(zr, &weights);
            }
            params.objective.grad_hess(labels, &raw, &mut grad, &mut hess);
            // Average gradient over rows, plus the ridge term.
            let mut wgrad = vec![0.0f64; d];
            let mut igrad = 0.0f64;
            for i in 0..n {
                let zr = &z[i * d..(i + 1) * d];
                for (wg, &zv) in wgrad.iter_mut().zip(zr) {
                    *wg += grad[i] * zv;
                }
                igrad += grad[i];
            }
            let inv_n = 1.0 / n as f64;
            for (w, wg) in weights.iter_mut().zip(&wgrad) {
                *w -= step * (wg * inv_n + params.lambda * *w);
            }
            intercept -= step * igrad * inv_n;
        }

        Ok(LinearModel { weights, intercept, means, stds, objective: params.objective })
    }

    /// Raw score for a row.
    pub fn predict_raw_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.weights.len());
        let mut acc = self.intercept;
        for (j, &v) in row.iter().enumerate() {
            if !v.is_nan() {
                acc += self.weights[j] * (v - self.means[j]) / self.stds[j];
            }
        }
        acc
    }

    /// Transformed prediction for a row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.objective.transform(self.predict_raw_row(row))
    }

    /// Transformed predictions for a matrix, fanned across the shared
    /// worker pool in row blocks (per-row values unchanged).
    pub fn predict(&self, data: &Matrix) -> Vec<f64> {
        msaw_parallel::run_blocks(data.nrows(), 256, |range| {
            range.map(|i| self.predict_row(data.row(i))).collect()
        })
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i % 10) as f64, ((i * 7) % 5) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn recovers_a_linear_function() {
        let (x, y) = linear_data(200);
        let model = LinearModel::train(&LinearParams::regression(), &x, &y).unwrap();
        let preds = model.predict(&x);
        let mae: f64 =
            y.iter().zip(&preds).map(|(a, b)| (a - b).abs()).sum::<f64>() / y.len() as f64;
        assert!(mae < 0.05, "MAE {mae} on an exactly linear target");
    }

    #[test]
    fn logistic_separates_classes() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 20) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| f64::from(r[0] >= 10.0)).collect();
        let x = Matrix::from_rows(&rows);
        let model = LinearModel::train(&LinearParams::binary(), &x, &y).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let p = model.predict_row(row);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(p >= 0.5, y[i] == 1.0, "row {i}: p={p}");
        }
    }

    #[test]
    fn missing_values_contribute_nothing() {
        let (x, y) = linear_data(100);
        let model = LinearModel::train(&LinearParams::regression(), &x, &y).unwrap();
        // A fully-missing row predicts the centred intercept.
        let p = model.predict_raw_row(&[f64::NAN, f64::NAN]);
        assert!((p - model.intercept).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_is_harmless() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 5) as f64, 3.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model = LinearModel::train(&LinearParams::regression(), &x, &y).unwrap();
        assert!(model.weights.iter().all(|w| w.is_finite()));
        let preds = model.predict(&x);
        let mae: f64 =
            y.iter().zip(&preds).map(|(a, b)| (a - b).abs()).sum::<f64>() / y.len() as f64;
        assert!(mae < 0.05);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(LinearModel::train(&LinearParams::regression(), &Matrix::zeros(0, 1), &[]).is_err());
        assert!(
            LinearModel::train(&LinearParams::regression(), &Matrix::zeros(2, 1), &[1.0]).is_err()
        );
        let bin = LinearParams::binary();
        assert!(LinearModel::train(&bin, &Matrix::zeros(2, 1), &[0.5, 1.0]).is_err());
    }

    #[test]
    fn deterministic() {
        let (x, y) = linear_data(60);
        let a = LinearModel::train(&LinearParams::regression(), &x, &y).unwrap();
        let b = LinearModel::train(&LinearParams::regression(), &x, &y).unwrap();
        assert_eq!(a, b);
    }
}
