//! # msaw-baselines
//!
//! The interpretable baseline learners the paper weighed gradient
//! boosting against (§5: "The Gradient Boosting algorithm proved to
//! offer better predictive performance than other popular intelligible
//! learning frameworks such as GA2M, suggesting that separating model
//! performance from model interpretability would better suit our
//! needs"):
//!
//! * [`gam`] — a **generalised additive model** trained by cyclic
//!   gradient boosting of per-feature piecewise-constant shape
//!   functions over quantile bins, the construction behind GA²M /
//!   Explainable Boosting Machines (without pairwise interaction
//!   terms — the paper's comparison point is the additive family's
//!   glass-box restriction, which the univariate form already embodies);
//! * [`linear`] — ridge-regularised linear / logistic regression via
//!   full-batch gradient descent, the classical clinical-statistics
//!   baseline.
//!
//! Both reuse `msaw-gbdt`'s objectives (squared error and weighted
//! logistic) and its quantile binning, and both handle missing values
//! natively — the GAM with a dedicated missing bin per feature, the
//! linear model by mean-imputation folded into the fitted parameters.

pub mod gam;
pub mod linear;

pub use gam::{AdditiveModel, GamParams};
pub use linear::{LinearModel, LinearParams};
