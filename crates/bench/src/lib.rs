//! # msaw-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (run them with `cargo run --release -p msaw-bench --bin <name>`),
//! plus Criterion performance benches under `benches/`.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_outcome_distributions` | Fig. 1 — QoL / SPPB / Falls distributions |
//! | `fig4_dd_vs_kd` | Fig. 4 — headline DD vs KD grid |
//! | `table1_per_clinic` | Table 1 — per-clinic model grids |
//! | `fig5_mae_by_clinic` | Fig. 5 — per-patient MAE box plots by clinic |
//! | `fig6_local_explanations` | Fig. 6 — contrasting local SHAP reports |
//! | `fig7_global_dependence` | Fig. 7 — SHAP dependence + data-driven cutoff |
//! | `qa_gap_sweep` | §3 QA — max-interpolation-gap sweep |

use msaw_cohort::{generate, CohortConfig, CohortData};
use msaw_core::ExperimentConfig;

/// The seed every experiment binary uses, so their outputs agree.
pub const EXPERIMENT_SEED: u64 = 42;

/// Generate the paper-scale cohort all experiment binaries share.
pub fn paper_cohort() -> CohortData {
    generate(&CohortConfig::paper(EXPERIMENT_SEED))
}

/// The shared experiment configuration.
pub fn experiment_config() -> ExperimentConfig {
    ExperimentConfig { seed: EXPERIMENT_SEED, ..ExperimentConfig::default() }
}

/// Render a percentage the way the paper's tables do.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_rounds_like_the_paper() {
        assert_eq!(pct(0.943), "94%");
        assert_eq!(pct(0.02), "2%");
        assert_eq!(pct(1.0), "100%");
    }
}
