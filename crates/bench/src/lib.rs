//! # msaw-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (run them with `cargo run --release -p msaw-bench --bin <name>`),
//! plus Criterion performance benches under `benches/`.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_outcome_distributions` | Fig. 1 — QoL / SPPB / Falls distributions |
//! | `fig4_dd_vs_kd` | Fig. 4 — headline DD vs KD grid |
//! | `table1_per_clinic` | Table 1 — per-clinic model grids |
//! | `fig5_mae_by_clinic` | Fig. 5 — per-patient MAE box plots by clinic |
//! | `fig6_local_explanations` | Fig. 6 — contrasting local SHAP reports |
//! | `fig7_global_dependence` | Fig. 7 — SHAP dependence + data-driven cutoff |
//! | `qa_gap_sweep` | §3 QA — max-interpolation-gap sweep |

use msaw_cohort::{generate, CohortConfig, CohortData};
use msaw_core::ExperimentConfig;

/// The seed every experiment binary uses, so their outputs agree.
pub const EXPERIMENT_SEED: u64 = 42;

/// Generate the paper-scale cohort all experiment binaries share.
pub fn paper_cohort() -> CohortData {
    generate(&CohortConfig::paper(EXPERIMENT_SEED))
}

/// The shared experiment configuration.
pub fn experiment_config() -> ExperimentConfig {
    ExperimentConfig { seed: EXPERIMENT_SEED, ..ExperimentConfig::default() }
}

/// Render a percentage the way the paper's tables do.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// What an experiment binary can fail on: its command line, its output
/// files, or the pipeline itself. Each renders as one line for
/// [`exit_on_error`]; results on stdout are never mixed with errors.
#[derive(Debug)]
pub enum BenchError {
    /// Bad command-line usage.
    Usage(String),
    /// A file or directory operation failed; `path` names the target.
    Io {
        /// The file or directory being written.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The pipeline failed beneath the binary.
    Pipeline(msaw_core::PipelineError),
    /// The serving bench's client/service harness failed.
    Serve(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "usage: {msg}"),
            BenchError::Io { path, source } => write!(f, "cannot write `{path}`: {source}"),
            BenchError::Pipeline(e) => write!(f, "{e}"),
            BenchError::Serve(msg) => write!(f, "serving bench failed: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Pipeline(e) => Some(e),
            BenchError::Usage(_) | BenchError::Serve(_) => None,
        }
    }
}

impl From<msaw_core::PipelineError> for BenchError {
    fn from(e: msaw_core::PipelineError) -> Self {
        BenchError::Pipeline(e)
    }
}

/// The single optional-output-path command line every bench binary
/// accepts: zero args → `default`, one arg → that path, more → a
/// [`BenchError::Usage`] naming the binary.
pub fn out_path_arg(binary: &str, default: &str) -> Result<String, BenchError> {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| default.to_string());
    if args.next().is_some() {
        return Err(BenchError::Usage(format!("{binary} [{default}]")));
    }
    Ok(path)
}

/// Unwrap a binary's `run()` result: errors print one line to stderr
/// and exit non-zero, so a failed run can never masquerade as results
/// on stdout.
pub fn exit_on_error(result: Result<(), BenchError>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_rounds_like_the_paper() {
        assert_eq!(pct(0.943), "94%");
        assert_eq!(pct(0.02), "2%");
        assert_eq!(pct(1.0), "100%");
    }
}
