//! Fig. 4 — the headline comparison: predictive performance of the
//! data-driven vs knowledge-driven approaches, with and without the
//! baseline Frailty Index, on all three outcomes.
//!
//! Prints the same two panels the paper shows: 1-MAPE for the QoL and
//! SPPB regressions (left) and the per-class classification report for
//! Falls (right).

use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_core::grid::find;
use msaw_core::{run_full_grid, Approach};
use msaw_preprocess::OutcomeKind;

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    eprintln!(
        "cohort: {} patients; running 12 models (3 outcomes x DD/KD x +/-FI)...",
        data.patients.len()
    );
    let results = run_full_grid(&data, &cfg);

    println!("Figure 4 — predictive performance (test split)");
    println!();
    println!("Left panel: 1-MAPE for the regression outcomes");
    println!("         |   QoL KD |   QoL DD |  SPPB KD |  SPPB DD");
    for with_fi in [false, true] {
        let row: Vec<String> = [OutcomeKind::Qol, OutcomeKind::Sppb]
            .iter()
            .flat_map(|&o| {
                [Approach::KnowledgeDriven, Approach::DataDriven]
                    .map(|a| pct(find(&results, o, a, with_fi).primary_metric()))
            })
            .collect();
        println!(
            "{:<8} | {:>8} | {:>8} | {:>8} | {:>8}",
            if with_fi { "w/ FI" } else { "w/o FI" },
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }

    println!();
    println!("Right panel: classification effectiveness for Falls");
    println!("         |  Acc KD |  Acc DD | P(T) KD | P(T) DD | P(F) KD | P(F) DD | R(T) KD | R(T) DD | R(F) KD | R(F) DD | F1(T) KD | F1(T) DD | F1(F) KD | F1(F) DD");
    for with_fi in [false, true] {
        let kd = find(&results, OutcomeKind::Falls, Approach::KnowledgeDriven, with_fi)
            .classification
            .expect("falls is classification");
        let dd = find(&results, OutcomeKind::Falls, Approach::DataDriven, with_fi)
            .classification
            .expect("falls is classification");
        println!(
            "{:<8} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>7} | {:>8} | {:>8} | {:>8} | {:>8}",
            if with_fi { "w/ FI" } else { "w/o FI" },
            pct(kd.accuracy),
            pct(dd.accuracy),
            pct(kd.precision_true),
            pct(dd.precision_true),
            pct(kd.precision_false),
            pct(dd.precision_false),
            pct(kd.recall_true),
            pct(dd.recall_true),
            pct(kd.recall_false),
            pct(dd.recall_false),
            pct(kd.f1_true),
            pct(dd.f1_true),
            pct(kd.f1_false),
            pct(dd.f1_false),
        );
    }

    println!();
    println!("Full per-variant detail:");
    for r in &results {
        println!("  {}", r.summary_line());
    }
}
