//! Fig. 6 — local interpretation: two patients with the same SPPB
//! prediction but different top-5 SHAP attributions, demonstrating the
//! personalised-medicine argument of §5.2 (similar outcomes explained by
//! different behaviour → different interventions).

use msaw_bench::{experiment_config, paper_cohort};
use msaw_core::experiment::fit_final_model;
use msaw_core::interpret::{LocalReport, ShapReport};
use msaw_kd::attach_fi;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};
use msaw_shap::shap_interaction_values;

fn print_report(report: &LocalReport, tag: &str) {
    println!();
    println!(
        "{tag}: patient {} (sample row {}), predicted SPPB {:.2}",
        report.patient, report.row, report.prediction
    );
    println!("  top-5 Shapley values:");
    for a in &report.top {
        let direction = if a.shap >= 0.0 { "+" } else { "-" };
        println!(
            "    [{direction}] {:<42} value {:>8.2}   SHAP {:>+8.4}",
            a.feature, a.value, a.shap
        );
    }
}

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = attach_fi(&build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline), &data);
    eprintln!("training the SPPB DD w/ FI model and scanning for a contrast pair...");
    let model = fit_final_model(&set, &cfg);

    println!("Figure 6 — local explanations of two patients' SPPB predictions");
    let shap = ShapReport::new(&model, &set);
    match shap.find_contrast_pair(0.15, 5) {
        Some((a, b)) => {
            print_report(&a, "Patient A");
            print_report(&b, "Patient B");
            println!();
            println!(
                "Same predicted SPPB (Δ = {:.3}) driven by different features → the clinician\n\
                 would consider different interventions, as the paper argues.",
                (a.prediction - b.prediction).abs()
            );

            // Extension beyond the paper: SHAP interaction values for
            // patient A — which feature *pairs* shape the prediction.
            let inter = shap_interaction_values(&model, set.features.row(a.row));
            println!();
            println!("Strongest SHAP interactions for Patient A (extension):");
            for (i, j, v) in inter.top_pairs(3) {
                println!(
                    "    {:<38} x {:<38} {:>+8.4}",
                    set.feature_names[i], set.feature_names[j], v
                );
            }
        }
        None => println!("no contrast pair found at this tolerance — relax it and rerun"),
    }
}
