//! Fig. 5 — regression MAE distribution per patient, grouped by clinical
//! centre, for QoL and SPPB.
//!
//! Every sample receives an out-of-fold prediction (a model that never
//! saw it), absolute errors are averaged per patient, and each clinic's
//! per-patient MAE distribution is summarised as a box plot. The paper
//! reads this figure for robustness: Hong Kong shows more outliers than
//! Modena and Sydney because of its small, homogeneous stratum.

use msaw_bench::{experiment_config, paper_cohort};
use msaw_core::oof::{mae_boxes_by_clinic, oof_predictions};
use msaw_kd::attach_fi;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    println!("Figure 5 — per-patient MAE distribution by clinical centre");
    for outcome in [OutcomeKind::Qol, OutcomeKind::Sppb] {
        eprintln!("computing out-of-fold predictions for {}...", outcome.name());
        let set = attach_fi(&build_samples(&data, &panel, outcome, &cfg.pipeline), &data);
        let preds = oof_predictions(&set, &cfg);
        println!();
        println!(
            "{} (DD w/ FI model, {}-fold out-of-fold predictions)",
            outcome.name(),
            cfg.cv_folds
        );
        println!("  clinic     |   n |  median |      q1 |      q3 | whiskers          | outliers");
        for (clinic, b) in mae_boxes_by_clinic(&set, &preds) {
            println!(
                "  {:<10} | {:>3} | {:>7.4} | {:>7.4} | {:>7.4} | [{:>7.4},{:>7.4}] | {}",
                clinic.name(),
                b.count,
                b.median,
                b.q1,
                b.q3,
                b.whisker_low,
                b.whisker_high,
                b.outliers.len()
            );
        }
    }
    println!();
    println!("Expect Hong Kong's distribution to be the least stable (fewest patients).");
}
