//! Scaling curves for the streaming population-scale pipeline: runs
//! the generate → sketch → encode → out-of-core-fit pipeline
//! (`msaw_core::scale`) at 261 → 10k → 100k → 1M patients and records
//! per-stage wall times, fit throughput, and peak RSS into
//! `BENCH_scale.json`. Scales run ascending so the monotonic `VmHWM`
//! reading attributes peak memory to each scale as it grows; blocks
//! spill to disk from 100k patients up, which is what keeps the 1M fit
//! inside a bounded resident set.
//!
//! CI gates the 10k point (seconds and peak RSS; smaller is better —
//! throughput is gated via its reciprocal `fit_secs_per_mrow`).
//!
//! Usage: `bench_scale [out.json] [max_patients]` — the second argument
//! caps the sweep (CI smokes at 10000; the committed baseline is the
//! full 1M sweep).

use msaw_bench::{exit_on_error, BenchError, EXPERIMENT_SEED};
use msaw_cohort::CohortConfig;
use msaw_core::scale::{run_scale, ScaleConfig};
use msaw_preprocess::OutcomeKind;
use std::fmt::Write as _;
use std::time::Instant;

/// The sweep: paper scale, then 10⁴ / 10⁵ / 10⁶ patients.
const SCALES: [usize; 4] = [261, 10_000, 100_000, 1_000_000];
/// Spill binned blocks to disk from this scale up; below it the code
/// matrix is small enough to keep resident.
const SPILL_FROM: usize = 100_000;

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let usage = || BenchError::Usage("bench_scale [BENCH_scale.json] [max_patients]".to_string());
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_scale.json".to_string());
    let max_patients = match args.next() {
        Some(s) => s.parse::<usize>().map_err(|_| usage())?,
        None => *SCALES.last().unwrap(),
    };
    if args.next().is_some() {
        return Err(usage());
    }

    let spill_dir = std::env::temp_dir().join(format!("msaw_bench_scale_{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir)
        .map_err(|source| BenchError::Io { path: spill_dir.display().to_string(), source })?;

    let mut body = String::new();
    let wall = Instant::now();
    for &n in SCALES.iter().filter(|&&n| n <= max_patients) {
        let cohort = CohortConfig::scaled(EXPERIMENT_SEED, n);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        let spill = n >= SPILL_FROM;
        if spill {
            cfg.spill_path = Some(spill_dir.join(format!("scale_{n}.mscb")));
        }
        eprintln!(
            "scale {n}: {} patients, {}...",
            cohort.total_patients(),
            if spill { "spilled blocks" } else { "in-memory blocks" }
        );
        let report = run_scale(&cohort, &cfg).map_err(BenchError::Pipeline)?;
        let trees = cfg.params.n_estimators;
        let secs_per_mrow =
            if report.fit_rows_per_sec > 0.0 { 1.0e6 / report.fit_rows_per_sec } else { 0.0 };
        let rss = report.peak_rss_mb.unwrap_or(0.0);
        eprintln!(
            "  {} rows | sketch {:.2}s encode {:.2}s fit {:.2}s | {:.0} row-trees/s | peak RSS {:.0} MiB",
            report.n_rows,
            report.sketch_secs,
            report.encode_secs,
            report.fit_secs,
            report.fit_rows_per_sec,
            rss,
        );
        if let Some(path) = &cfg.spill_path {
            let _ = std::fs::remove_file(path);
        }
        write!(
            body,
            "  \"scale{n}_patients\": {},\n  \"scale{n}_rows\": {},\n  \
             \"scale{n}_trees\": {trees},\n  \"scale{n}_spilled\": {},\n  \
             \"scale{n}_sketch_secs\": {:.6},\n  \"scale{n}_encode_secs\": {:.6},\n  \
             \"scale{n}_fit_secs\": {:.6},\n  \"scale{n}_fit_rows_per_sec\": {:.1},\n  \
             \"scale{n}_fit_secs_per_mrow\": {:.6},\n  \"scale{n}_peak_rss_mb\": {:.1},\n",
            report.n_patients,
            report.n_rows,
            if report.spilled { "true" } else { "false" },
            report.sketch_secs,
            report.encode_secs,
            report.fit_secs,
            report.fit_rows_per_sec,
            secs_per_mrow,
            rss,
        )
        .expect("writing to a String cannot fail");
    }
    let _ = std::fs::remove_dir_all(&spill_dir);

    let json = format!(
        "{{\n  \"cohort\": \"scaled\",\n  \"seed\": {EXPERIMENT_SEED},\n  \
         \"outcome\": \"QoL\",\n  \"max_patients\": {max_patients},\n{body}  \
         \"wall_secs\": {:.3}\n}}\n",
        wall.elapsed().as_secs_f64(),
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
