//! Scaling curves for the streaming population-scale pipeline: runs
//! the generate → sketch → encode → out-of-core-fit pipeline
//! (`msaw_core::scale`) at 261 → 10k → 100k → 1M patients and records
//! per-stage wall times, per-stage worker counts, fit throughput, and
//! peak RSS into `BENCH_scale.json`. Scales run ascending so the
//! monotonic `VmHWM` reading attributes peak memory to each scale as
//! it grows; blocks spill to disk from 100k patients up, which is what
//! keeps the 1M fit inside a bounded resident set.
//!
//! The 10k point carries three extra rows:
//!
//! * `sketch_par_speedup` / `encode_par_speedup` — the fan-out's yield:
//!   serial (1-worker) stage seconds over pooled stage seconds. On a
//!   single-core box these honestly read ~1.0; the merged artifacts
//!   are byte-identical either way, so the ratio is pure wall time.
//! * `spilled_fit_*` — the same 10k fit re-run against disk-spilled
//!   blocks, isolating the prefetching block reader's throughput from
//!   the in-memory path CI normally gates.
//!
//! CI gates the 10k point's normalised stage costs (`*_secs_per_mrow`,
//! seconds per million sample rows; smaller is better) and peak RSS.
//!
//! Usage: `bench_scale [out.json] [max_patients]` — the second argument
//! caps the sweep (CI smokes at 10000; the committed baseline is the
//! full 1M sweep).

use msaw_bench::{exit_on_error, BenchError, EXPERIMENT_SEED};
use msaw_cohort::CohortConfig;
use msaw_core::scale::{run_scale, ScaleConfig, ScaleReport};
use msaw_preprocess::OutcomeKind;
use std::fmt::Write as _;
use std::time::Instant;

/// The sweep: paper scale, then 10⁴ / 10⁵ / 10⁶ patients.
const SCALES: [usize; 4] = [261, 10_000, 100_000, 1_000_000];
/// Spill binned blocks to disk from this scale up; below it the code
/// matrix is small enough to keep resident.
const SPILL_FROM: usize = 100_000;
/// The scale that also measures parallel speedups and the spilled-fit
/// row (cheap enough to run twice more, big enough to mean something).
const PROBE_SCALE: usize = 10_000;

/// Seconds per million sample rows — the scale-free form CI gates.
fn secs_per_mrow(secs: f64, n_rows: usize) -> f64 {
    if n_rows > 0 {
        secs * 1.0e6 / n_rows as f64
    } else {
        0.0
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let usage = || BenchError::Usage("bench_scale [BENCH_scale.json] [max_patients]".to_string());
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_scale.json".to_string());
    let max_patients = match args.next() {
        Some(s) => s.parse::<usize>().map_err(|_| usage())?,
        None => *SCALES.last().unwrap(),
    };
    if args.next().is_some() {
        return Err(usage());
    }

    let spill_dir = std::env::temp_dir().join(format!("msaw_bench_scale_{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir)
        .map_err(|source| BenchError::Io { path: spill_dir.display().to_string(), source })?;

    let mut body = String::new();
    let wall = Instant::now();
    for &n in SCALES.iter().filter(|&&n| n <= max_patients) {
        let cohort = CohortConfig::scaled(EXPERIMENT_SEED, n);
        let mut cfg = ScaleConfig::new(OutcomeKind::Qol);
        let workers = cfg.workers;
        let spill = n >= SPILL_FROM;
        if spill {
            cfg.spill_path = Some(spill_dir.join(format!("scale_{n}.mscb")));
        }
        eprintln!(
            "scale {n}: {} patients, {} workers, {}...",
            cohort.total_patients(),
            workers,
            if spill { "spilled blocks" } else { "in-memory blocks" }
        );
        let report = run_scale(&cohort, &cfg).map_err(BenchError::Pipeline)?;
        let trees = cfg.params.n_estimators;
        let fit_secs_per_mrow =
            if report.fit_rows_per_sec > 0.0 { 1.0e6 / report.fit_rows_per_sec } else { 0.0 };
        let rss = report.peak_rss_mb.unwrap_or(0.0);
        eprintln!(
            "  {} rows | sketch {:.2}s encode {:.2}s fit {:.2}s | {:.0} row-trees/s | peak RSS {:.0} MiB",
            report.n_rows,
            report.sketch_secs,
            report.encode_secs,
            report.fit_secs,
            report.fit_rows_per_sec,
            rss,
        );
        if let Some(path) = &cfg.spill_path {
            let _ = std::fs::remove_file(path);
        }
        // Every stage fans out over the same pool width today; the
        // keys stay per-stage so the sweep keeps its meaning if the
        // stages ever get independent knobs.
        write!(
            body,
            "  \"scale{n}_patients\": {},\n  \"scale{n}_rows\": {},\n  \
             \"scale{n}_trees\": {trees},\n  \"scale{n}_spilled\": {},\n  \
             \"scale{n}_sketch_workers\": {workers},\n  \"scale{n}_encode_workers\": {workers},\n  \
             \"scale{n}_fit_workers\": {workers},\n  \
             \"scale{n}_sketch_secs\": {:.6},\n  \"scale{n}_encode_secs\": {:.6},\n  \
             \"scale{n}_fit_secs\": {:.6},\n  \
             \"scale{n}_sketch_secs_per_mrow\": {:.6},\n  \
             \"scale{n}_encode_secs_per_mrow\": {:.6},\n  \
             \"scale{n}_fit_rows_per_sec\": {:.1},\n  \
             \"scale{n}_fit_secs_per_mrow\": {:.6},\n  \"scale{n}_peak_rss_mb\": {:.1},\n",
            report.n_patients,
            report.n_rows,
            if report.spilled { "true" } else { "false" },
            report.sketch_secs,
            report.encode_secs,
            report.fit_secs,
            secs_per_mrow(report.sketch_secs, report.n_rows),
            secs_per_mrow(report.encode_secs, report.n_rows),
            report.fit_rows_per_sec,
            fit_secs_per_mrow,
            rss,
        )
        .expect("writing to a String cannot fail");

        if n == PROBE_SCALE {
            probe_rows(&mut body, n, &cohort, &cfg, &report, &spill_dir)?;
        }
    }
    let _ = std::fs::remove_dir_all(&spill_dir);

    let json = format!(
        "{{\n  \"cohort\": \"scaled\",\n  \"seed\": {EXPERIMENT_SEED},\n  \
         \"outcome\": \"QoL\",\n  \"max_patients\": {max_patients},\n{body}  \
         \"wall_secs\": {:.3}\n}}\n",
        wall.elapsed().as_secs_f64(),
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}

/// The probe-scale extras: a serial re-run for the stage speedups and
/// a spilled re-run for the prefetching block reader's throughput.
fn probe_rows(
    body: &mut String,
    n: usize,
    cohort: &CohortConfig,
    pooled_cfg: &ScaleConfig,
    pooled: &ScaleReport,
    spill_dir: &std::path::Path,
) -> Result<(), BenchError> {
    eprintln!("scale {n}: serial re-run (stage speedups)...");
    let mut serial_cfg = pooled_cfg.clone();
    serial_cfg.workers = 1;
    serial_cfg.spill_path = None;
    let serial = run_scale(cohort, &serial_cfg).map_err(BenchError::Pipeline)?;
    let speedup = |serial_secs: f64, pooled_secs: f64| {
        if pooled_secs > 0.0 {
            serial_secs / pooled_secs
        } else {
            1.0
        }
    };
    let sketch_speedup = speedup(serial.sketch_secs, pooled.sketch_secs);
    let encode_speedup = speedup(serial.encode_secs, pooled.encode_secs);
    eprintln!(
        "  sketch {:.2}s -> {:.2}s ({sketch_speedup:.2}x) | encode {:.2}s -> {:.2}s ({encode_speedup:.2}x)",
        serial.sketch_secs, pooled.sketch_secs, serial.encode_secs, pooled.encode_secs,
    );

    eprintln!("scale {n}: spilled re-run (prefetching block reader)...");
    let mut spilled_cfg = pooled_cfg.clone();
    let spill = spill_dir.join(format!("scale_{n}_probe.mscb"));
    spilled_cfg.spill_path = Some(spill.clone());
    let spilled = run_scale(cohort, &spilled_cfg).map_err(BenchError::Pipeline)?;
    let _ = std::fs::remove_file(&spill);
    let spilled_fit_secs_per_mrow =
        if spilled.fit_rows_per_sec > 0.0 { 1.0e6 / spilled.fit_rows_per_sec } else { 0.0 };
    eprintln!(
        "  spilled fit {:.2}s | {:.0} row-trees/s",
        spilled.fit_secs, spilled.fit_rows_per_sec,
    );

    write!(
        body,
        "  \"scale{n}_sketch_par_speedup\": {sketch_speedup:.3},\n  \
         \"scale{n}_encode_par_speedup\": {encode_speedup:.3},\n  \
         \"scale{n}_spilled_fit_secs\": {:.6},\n  \
         \"scale{n}_spilled_fit_rows_per_sec\": {:.1},\n  \
         \"scale{n}_spilled_fit_secs_per_mrow\": {spilled_fit_secs_per_mrow:.6},\n",
        spilled.fit_secs, spilled.fit_rows_per_sec,
    )
    .expect("writing to a String cannot fail");
    Ok(())
}
