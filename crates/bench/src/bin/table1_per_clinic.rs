//! Table 1 — the same 12-model grid as Fig. 4, trained and evaluated
//! separately per clinic (Hong Kong, Modena, Sydney). The paper uses
//! this to probe inter-clinic protocol differences; its Hong Kong rows
//! show anomalies it attributes to the small stratum (33 patients).

use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_cohort::Clinic;
use msaw_core::grid::{find, run_clinic_grids};
use msaw_core::Approach;
use msaw_preprocess::OutcomeKind;

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();

    println!("Table 1 — single-clinic model performance");
    println!();
    println!("clinic     |        | 1-MAPE QoL KD/DD | 1-MAPE SPPB KD/DD | Falls Acc KD/DD | R(T) KD/DD | F1(T) KD/DD");

    // The paper orders rows Hong Kong, Modena, Sydney. All three grids
    // share one set of full-cohort variant builds (filtered per clinic).
    eprintln!("running 12 models for each of 3 clinics...");
    let per_clinic =
        run_clinic_grids(&data, &[Clinic::HongKong, Clinic::Modena, Clinic::Sydney], &cfg);
    for (clinic, results) in per_clinic {
        for with_fi in [false, true] {
            let get = |o: OutcomeKind, a: Approach| find(&results, o, a, with_fi);
            let falls_kd = get(OutcomeKind::Falls, Approach::KnowledgeDriven)
                .classification
                .expect("classification");
            let falls_dd = get(OutcomeKind::Falls, Approach::DataDriven)
                .classification
                .expect("classification");
            println!(
                "{:<10} | {:<6} | {:>7} {:>8} | {:>8} {:>8} | {:>7} {:>7} | {:>4} {:>5} | {:>5} {:>5}",
                clinic.name(),
                if with_fi { "w/ FI" } else { "w/o FI" },
                pct(get(OutcomeKind::Qol, Approach::KnowledgeDriven).primary_metric()),
                pct(get(OutcomeKind::Qol, Approach::DataDriven).primary_metric()),
                pct(get(OutcomeKind::Sppb, Approach::KnowledgeDriven).primary_metric()),
                pct(get(OutcomeKind::Sppb, Approach::DataDriven).primary_metric()),
                pct(falls_kd.accuracy),
                pct(falls_dd.accuracy),
                pct(falls_kd.recall_true),
                pct(falls_dd.recall_true),
                pct(falls_kd.f1_true),
                pct(falls_dd.f1_true),
            );
        }
        let n = find(&results, OutcomeKind::Qol, Approach::DataDriven, false);
        println!("{:<10} |        | ({} train / {} test samples)", "", n.n_train, n.n_test);
    }
    println!();
    println!("Expect Hong Kong (33 patients) to be the noisiest stratum, as in the paper.");
}
