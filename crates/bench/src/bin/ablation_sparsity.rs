//! Ablation — the two learner design choices DESIGN.md calls out:
//!
//! 1. **Sparsity-aware missing handling** (XGBoost §3.4): native NaN
//!    routing with learned default directions, versus the classical
//!    impute-then-train baseline (per-feature mean imputation).
//! 2. **Exact vs histogram split finding**: identical API, different
//!    candidate sets; quality should be near-identical at the paper's
//!    scale while histogram trains faster (timings in the Criterion
//!    bench `train_gbdt`).

use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_core::{run_variant, Approach};
use msaw_gbdt::TreeMethod;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};
use msaw_tabular::Matrix;

/// Replace every NaN with its feature's mean over the set.
fn mean_impute(set: &SampleSet) -> SampleSet {
    let nrows = set.features.nrows();
    let ncols = set.features.ncols();
    let means: Vec<f64> = (0..ncols)
        .map(|j| {
            let col = set.features.column(j);
            let present: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
            if present.is_empty() {
                0.0
            } else {
                present.iter().sum::<f64>() / present.len() as f64
            }
        })
        .collect();
    let mut data = Vec::with_capacity(nrows * ncols);
    for i in 0..nrows {
        for (j, &mean) in means.iter().enumerate() {
            let v = set.features.get(i, j);
            data.push(if v.is_nan() { mean } else { v });
        }
    }
    SampleSet {
        features: Matrix::from_vec(data, nrows, ncols),
        feature_names: set.feature_names.clone(),
        labels: set.labels.clone(),
        meta: set.meta.clone(),
        outcome: set.outcome,
    }
}

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);

    println!("Ablation 1 — missing-value handling (QoL, DD)");
    let native = run_variant(&set, Approach::DataDriven, false, &cfg);
    let imputed_set = mean_impute(&set);
    let imputed = run_variant(&imputed_set, Approach::DataDriven, false, &cfg);
    println!(
        "  sparsity-aware (native NaN):  1-MAPE {}  MAE {:.4}",
        pct(native.regression.unwrap().one_minus_mape),
        native.regression.unwrap().mae
    );
    println!(
        "  mean imputation baseline:     1-MAPE {}  MAE {:.4}",
        pct(imputed.regression.unwrap().one_minus_mape),
        imputed.regression.unwrap().mae
    );

    println!();
    println!("Ablation 2 — split finder (QoL, DD)");
    for (label, method) in [
        ("exact", TreeMethod::Exact),
        ("hist 256 bins", TreeMethod::Hist { max_bins: 256 }),
        ("hist 32 bins", TreeMethod::Hist { max_bins: 32 }),
    ] {
        let mut c = cfg.clone();
        c.regression_params.tree_method = method;
        let r = run_variant(&set, Approach::DataDriven, false, &c);
        println!(
            "  {:<14} 1-MAPE {}  MAE {:.4}",
            label,
            pct(r.regression.unwrap().one_minus_mape),
            r.regression.unwrap().mae
        );
    }
}
