//! Performance tracking for the SHAP engine: times row-batch SHAP and
//! the Fig. 7 interpretation path end-to-end on the paper cohort's SPPB
//! DD model, against the retired serial clone-per-branch implementation
//! kept in `msaw_shap::reference`, and writes `BENCH_shap.json` so the
//! engine's perf trajectory is recorded from run to run.
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_shap [out.json]`

use std::time::Instant;

use msaw_bench::{
    exit_on_error, experiment_config, out_path_arg, paper_cohort, BenchError, EXPERIMENT_SEED,
};
use msaw_core::experiment::fit_final_model;
use msaw_core::interpret::ShapReport;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};
use msaw_shap::{dependence_curve, reference, sign_change_threshold, GlobalSummary, TreeExplainer};
use msaw_tabular::Matrix;

/// Median of at least one timed repetition, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The Fig. 7 interpretation path as it ran before the shared-matrix
/// refactor: `global_ranking` and `dependence_report` each built their
/// own explainer and their own full SHAP matrix, serially, with the
/// clone-per-branch recursion.
fn fig7_pre_refactor(model: &msaw_gbdt::Booster, set: &SampleSet) -> Option<f64> {
    let shap = reference::shap_values_serial_clone(model, &set.features);
    let summary = GlobalSummary::from_shap_matrix(&shap);
    let feature = summary
        .top_k(8)
        .into_iter()
        .map(|(f, _)| f)
        .find(|&f| set.feature_names[f].starts_with("pro_"))
        .expect("a PRO item ranks among the top features");
    let shap_again = reference::shap_values_serial_clone(model, &set.features);
    let curve = dependence_curve(&set.features, &shap_again, feature);
    sign_change_threshold(&curve)
}

/// The same path on the current engine: one [`ShapReport`] feeds both
/// the ranking and the dependence curve.
fn fig7_current(model: &msaw_gbdt::Booster, set: &SampleSet) -> Option<f64> {
    let report = ShapReport::new(model, set);
    let feature = report
        .global_ranking(8)
        .into_iter()
        .map(|(n, _)| n)
        .find(|n| n.starts_with("pro_"))
        .expect("a PRO item ranks among the top features");
    report.dependence_report(&feature).threshold
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_path = out_path_arg("bench_shap", "BENCH_shap.json")?;
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    eprintln!(
        "training the SPPB DD model ({} rows x {} features)...",
        set.len(),
        set.features.ncols()
    );
    let model = fit_final_model(&set, &cfg);
    let explainer = TreeExplainer::new(&model);

    // Row-batch SHAP: the pooled arena engine vs the retired serial
    // clone-per-branch loop, on the full sample set.
    let batch = time_median(3, || {
        std::hint::black_box::<Matrix>(explainer.shap_values(&set.features));
    });
    eprintln!("shap matrix (batch engine):    {batch:.3}s");
    let batch_pre = time_median(3, || {
        std::hint::black_box::<Matrix>(reference::shap_values_serial_clone(&model, &set.features));
    });
    eprintln!("shap matrix (pre-refactor):    {batch_pre:.3}s");

    // Fig. 7 end-to-end: ranking + dependence report.
    let fig7 = time_median(3, || {
        std::hint::black_box(fig7_current(&model, &set));
    });
    eprintln!("fig7 path (shared ShapReport): {fig7:.3}s");
    let fig7_pre = time_median(3, || {
        std::hint::black_box(fig7_pre_refactor(&model, &set));
    });
    eprintln!("fig7 path (pre-refactor):      {fig7_pre:.3}s");

    // The two paths must agree before their timings are comparable.
    assert_eq!(
        fig7_current(&model, &set),
        fig7_pre_refactor(&model, &set),
        "current and pre-refactor Fig. 7 paths must find the same threshold"
    );
    eprintln!("fig7 speedup: {:.2}x", fig7_pre / fig7);

    let json = format!(
        "{{\n  \"cohort\": \"paper\",\n  \"patients\": {},\n  \"seed\": {},\n  \
         \"rows\": {},\n  \"features\": {},\n  \"trees\": {},\n  \
         \"shap_matrix_secs\": {:.6},\n  \"shap_matrix_pre_refactor_secs\": {:.6},\n  \
         \"fig7_end_to_end_secs\": {:.6},\n  \"fig7_pre_refactor_secs\": {:.6},\n  \
         \"fig7_speedup\": {:.3}\n}}\n",
        data.patients.len(),
        EXPERIMENT_SEED,
        set.len(),
        set.features.ncols(),
        model.trees().len(),
        batch,
        batch_pre,
        fig7,
        fig7_pre,
        fig7_pre / fig7,
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
