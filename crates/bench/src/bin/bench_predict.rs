//! Performance tracking for the flat-forest prediction engine: times
//! raw-score batch prediction on the paper cohort's SPPB DD model —
//! the node-walk loop (`predict_raw_row` per row) against the compiled
//! [`FlatForest`], single-core and multi-worker — and writes
//! `BENCH_predict.json` so the engine's perf trajectory is recorded
//! from run to run.
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_predict [out.json]`

use std::time::Instant;

use msaw_bench::{
    exit_on_error, experiment_config, out_path_arg, paper_cohort, BenchError, EXPERIMENT_SEED,
};
use msaw_core::experiment::fit_final_model;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

/// Median of at least one timed repetition, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_path = out_path_arg("bench_predict", "BENCH_predict.json")?;
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    eprintln!(
        "training the SPPB DD model ({} rows x {} features)...",
        set.len(),
        set.features.ncols()
    );
    let model = fit_final_model(&set, &cfg);
    let flat = model.flat_forest();
    let workers = msaw_parallel::available_workers();

    // The engine swap must be invisible in the outputs before its
    // timings are comparable: flat == node walk, bit for bit.
    let walk: Vec<f64> = set.features.rows().map(|r| model.predict_raw_row(r)).collect();
    for (a, b) in flat.predict_raw_batch(&set.features).iter().zip(&walk) {
        assert_eq!(a.to_bits(), b.to_bits(), "flat forest diverged from the node walk");
    }

    // Repeat each timed batch so one pass is long enough to measure.
    const PASSES: usize = 20;
    let walk_secs = time_median(5, || {
        for _ in 0..PASSES {
            let preds: Vec<f64> = set.features.rows().map(|r| model.predict_raw_row(r)).collect();
            std::hint::black_box(preds);
        }
    }) / PASSES as f64;
    eprintln!("node walk (single core):   {:.3}ms/batch", walk_secs * 1e3);

    let flat_single_secs = time_median(5, || {
        for _ in 0..PASSES {
            std::hint::black_box(flat.predict_raw_batch_on(1, &set.features));
        }
    }) / PASSES as f64;
    eprintln!("flat forest (single core): {:.3}ms/batch", flat_single_secs * 1e3);

    let flat_multi_secs = time_median(5, || {
        for _ in 0..PASSES {
            std::hint::black_box(flat.predict_raw_batch_on(workers, &set.features));
        }
    }) / PASSES as f64;
    eprintln!("flat forest ({workers} workers):   {:.3}ms/batch", flat_multi_secs * 1e3);

    // The always-compiled scalar fallback on the same single core, via
    // the explicit-level entry point: both the regression guard for the
    // fallback and the denominator of the SIMD speedup headline.
    let flat_scalar_secs = time_median(5, || {
        for _ in 0..PASSES {
            std::hint::black_box(flat.predict_raw_batch_on_with(
                1,
                &set.features,
                msaw_gbdt::SimdLevel::Scalar,
            ));
        }
    }) / PASSES as f64;
    let simd_kernel = msaw_gbdt::simd::kernel_name();
    eprintln!("flat forest (scalar, 1 core): {:.3}ms/batch", flat_scalar_secs * 1e3);
    eprintln!(
        "speedups: {:.2}x single-core, {:.2}x with {workers} workers, \
         {:.2}x {simd_kernel} kernel vs scalar",
        walk_secs / flat_single_secs,
        walk_secs / flat_multi_secs,
        flat_scalar_secs / flat_single_secs,
    );

    let json = format!(
        "{{\n  \"cohort\": \"paper\",\n  \"patients\": {},\n  \"seed\": {},\n  \
         \"rows\": {},\n  \"features\": {},\n  \"trees\": {},\n  \"nodes\": {},\n  \
         \"walk_single_core_secs\": {:.9},\n  \"flat_single_core_secs\": {:.9},\n  \
         \"flat_multi_worker_secs\": {:.9},\n  \"flat_scalar_single_core_secs\": {:.9},\n  \
         \"simd_kernel\": \"{}\",\n  \"simd_speedup\": {:.3},\n  \"workers\": {},\n  \
         \"flat_single_core_speedup\": {:.3},\n  \"flat_multi_worker_speedup\": {:.3}\n}}\n",
        data.patients.len(),
        EXPERIMENT_SEED,
        set.len(),
        set.features.ncols(),
        model.trees().len(),
        flat.n_nodes(),
        walk_secs,
        flat_single_secs,
        flat_multi_secs,
        flat_scalar_secs,
        simd_kernel,
        flat_scalar_secs / flat_single_secs,
        workers,
        walk_secs / flat_single_secs,
        walk_secs / flat_multi_secs,
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
