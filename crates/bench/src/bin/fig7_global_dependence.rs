//! Fig. 7 — global interpretation: the SHAP value of one PRO question
//! plotted against its possible answers, revealing a data-derived
//! threshold. The paper's point: the DD approach re-discovers the kind
//! of cutoff (≥ 3 on a Likert answer) the KD approach hard-codes, but
//! from data and per-model.

use msaw_bench::{experiment_config, paper_cohort};
use msaw_core::experiment::fit_final_model;
use msaw_core::interpret::ShapReport;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    eprintln!("training the SPPB DD model and computing SHAP dependence...");
    let model = fit_final_model(&set, &cfg);
    // One explainer + one SHAP matrix feed both the ranking and the
    // dependence curve below.
    let shap = ShapReport::new(&model, &set);

    println!("Figure 7 — global SHAP dependence for one PRO question");
    println!();
    println!("Globally most influential features (mean |SHAP|):");
    let ranking = shap.global_ranking(8);
    for (name, value) in &ranking {
        println!("  {:<42} {:>8.4}", name, value);
    }

    // Pick the highest-ranked PRO item (Likert 1-5) for the dependence plot.
    let feature = ranking
        .iter()
        .map(|(n, _)| n)
        .find(|n| n.starts_with("pro_"))
        .expect("a PRO item ranks among the top features")
        .clone();
    let report = shap.dependence_report(&feature);

    println!();
    println!("Dependence of `{feature}` (mean SHAP per answer bucket):");
    // Bucket the monthly means by rounded answer value, as the paper's
    // scatter is grouped by the discrete possible answers.
    let mut buckets: std::collections::BTreeMap<i64, (f64, usize)> = Default::default();
    for &(v, s) in &report.points {
        let e = buckets.entry(v.round() as i64).or_insert((0.0, 0));
        e.0 += s;
        e.1 += 1;
    }
    for (answer, (sum, n)) in &buckets {
        let mean = sum / *n as f64;
        let marker = if mean >= 0.0 { "+" } else { "-" };
        println!(
            "  answer ≈ {answer}:  mean SHAP {:>+8.4}  ({:>4} samples)  {}{}",
            mean,
            n,
            marker,
            "#".repeat((mean.abs() * 40.0).round() as usize)
        );
    }
    match report.threshold {
        Some(t) => println!(
            "\nData-driven threshold: SHAP flips sign at answer ≈ {t:.1} — the DD analogue\n\
             of the expert's manual cutoff (the paper observes a threshold of ≥ 3)."
        ),
        None => println!("\nNo sign change found for this feature."),
    }
}
