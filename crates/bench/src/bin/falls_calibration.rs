//! Extension — calibration of the Falls probability model.
//!
//! The paper evaluates Falls only through thresholded metrics; for the
//! preventive-medicine uses it motivates (acting on *risk*, not on a
//! hard label), the predicted probabilities themselves must be
//! trustworthy. This binary reports the Brier score, the expected
//! calibration error and the reliability curve of the DD w/ FI model.

use msaw_bench::{experiment_config, paper_cohort};
use msaw_core::oof::oof_predictions;
use msaw_kd::attach_fi;
use msaw_metrics::{brier_score, calibration_curve, expected_calibration_error};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = attach_fi(&build_samples(&data, &panel, OutcomeKind::Falls, &cfg.pipeline), &data);
    eprintln!("computing out-of-fold fall probabilities...");
    let probs = oof_predictions(&set, &cfg);
    let labels: Vec<bool> = set.labels.iter().map(|&l| l == 1.0).collect();

    let prevalence = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
    println!("Falls probability calibration (DD w/ FI, out-of-fold)");
    println!();
    println!("samples: {}   prevalence: {:.1}%", set.len(), 100.0 * prevalence);
    println!(
        "Brier score: {:.4}  (constant-prevalence baseline: {:.4})",
        brier_score(&labels, &probs),
        prevalence * (1.0 - prevalence)
    );
    println!(
        "expected calibration error (10 bins): {:.4}",
        expected_calibration_error(&labels, &probs, 10)
    );
    println!();
    println!("reliability curve:");
    println!("  bucket      | mean predicted | observed rate |     n");
    for b in calibration_curve(&labels, &probs, 10) {
        if b.count == 0 {
            continue;
        }
        println!(
            "  [{:.1}, {:.1}) | {:>14.3} | {:>13.3} | {:>5}",
            b.lo, b.hi, b.mean_predicted, b.observed_rate, b.count
        );
    }
    println!();
    println!("A well-calibrated model tracks the diagonal (predicted ≈ observed).");
}
