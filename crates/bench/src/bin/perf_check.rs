//! CI perf smoke: compare headline metrics of a freshly-run benchmark
//! JSON against the committed baseline, failing when any metric has
//! regressed beyond the tolerance.
//!
//! Usage:
//!
//! ```text
//! perf_check <committed.json> <fresh.json> <key>[:tol] [<key>[:tol]...]
//! ```
//!
//! Every `<key>` must exist as a numeric field in both files; the check
//! fails (exit 1) if `fresh > committed * (1 + tol)` for any of them.
//! The default 25% tolerance absorbs shared-runner noise while still
//! catching real regressions; a per-key `:tol` suffix (a fraction)
//! overrides it — `shed_total:0` gates a counter that must never grow
//! past its committed value, `serve_p999_secs:1.0` gives a noisy tail
//! percentile 100% headroom. Smaller is always better for every gated
//! key (latency seconds and failure counters alike).
//!
//! The parser is a deliberately tiny flat-JSON scanner (the BENCH files
//! are flat or one level deep, written by our own binaries) — no JSON
//! dependency, no allocation beyond the file read.

use std::process::ExitCode;

/// Allowed relative slowdown before the check fails, unless the key
/// carries its own `:tol` suffix.
const TOLERANCE: f64 = 0.25;

/// Split a `key[:tol]` argument into the JSON key and its tolerance.
fn parse_key_spec(spec: &str) -> Result<(&str, f64), String> {
    let Some((key, tol)) = spec.rsplit_once(':') else {
        return Ok((spec, TOLERANCE));
    };
    let tol: f64 = tol
        .parse()
        .map_err(|_| format!("bad tolerance in \"{spec}\": expected a number after ':'"))?;
    if !tol.is_finite() || tol < 0.0 || key.is_empty() {
        return Err(format!("bad key spec \"{spec}\": tolerance must be a non-negative fraction"));
    }
    Ok((key, tol))
}

/// Extract the numeric value of `"key": <number>` from a JSON text.
/// Nested objects are fine as long as the key itself is unique and its
/// value is a bare number.
fn numeric_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path, keys @ ..] = args.as_slice() else {
        return Err("usage: perf_check <committed.json> <fresh.json> <key> [<key>...]".into());
    };
    if keys.is_empty() {
        return Err("usage: perf_check <committed.json> <fresh.json> <key> [<key>...]".into());
    }
    let committed =
        std::fs::read_to_string(committed_path).map_err(|e| format!("{committed_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path).map_err(|e| format!("{fresh_path}: {e}"))?;

    let mut failures = Vec::new();
    for spec in keys {
        let (key, tolerance) = parse_key_spec(spec)?;
        let base = numeric_field(&committed, key)
            .ok_or_else(|| format!("{committed_path}: no numeric field \"{key}\""))?;
        let now = numeric_field(&fresh, key)
            .ok_or_else(|| format!("{fresh_path}: no numeric field \"{key}\""))?;
        let limit = base * (1.0 + tolerance);
        let verdict = if now > limit { "REGRESSED" } else { "ok" };
        eprintln!(
            "  {key}: committed {base:.6}, fresh {now:.6} (limit {limit:.6}, +{:.0}%) {verdict}",
            tolerance * 100.0
        );
        if now > limit {
            let growth = if base > 0.0 {
                format!("+{:.0}%", (now / base - 1.0) * 100.0)
            } else {
                format!("{now:.6} from a zero baseline")
            };
            failures.push(format!(
                "{key} regressed: {now:.6} vs committed {base:.6} ({growth} > +{:.0}% allowed)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            eprintln!("perf check passed");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("perf check failed:\n{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "cohort": "small",
  "variants_secs": {
    "qol_dd": 0.151
  },
  "variants_total_secs": 1.25,
  "run_full_grid_secs": 0.7,
  "flat_single_core_speedup": 2.269
}"#;

    #[test]
    fn extracts_top_level_and_nested_numbers() {
        assert_eq!(numeric_field(SAMPLE, "run_full_grid_secs"), Some(0.7));
        assert_eq!(numeric_field(SAMPLE, "variants_total_secs"), Some(1.25));
        assert_eq!(numeric_field(SAMPLE, "qol_dd"), Some(0.151));
        assert_eq!(numeric_field(SAMPLE, "flat_single_core_speedup"), Some(2.269));
    }

    #[test]
    fn missing_or_non_numeric_keys_are_none() {
        assert_eq!(numeric_field(SAMPLE, "absent"), None);
        assert_eq!(numeric_field(SAMPLE, "cohort"), None);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(numeric_field(r#"{"x": 1.5e-3}"#, "x"), Some(0.0015));
        assert_eq!(numeric_field(r#"{"x": -2e2}"#, "x"), Some(-200.0));
    }

    #[test]
    fn key_specs_carry_optional_per_key_tolerances() {
        assert_eq!(parse_key_spec("serve_p50_secs"), Ok(("serve_p50_secs", TOLERANCE)));
        assert_eq!(parse_key_spec("shed_total:0"), Ok(("shed_total", 0.0)));
        assert_eq!(parse_key_spec("serve_p999_secs:1.0"), Ok(("serve_p999_secs", 1.0)));
        assert!(parse_key_spec("x:-0.5").is_err());
        assert!(parse_key_spec("x:nan").is_err());
        assert!(parse_key_spec(":0.5").is_err());
    }
}
