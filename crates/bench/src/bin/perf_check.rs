//! CI perf smoke: compare headline metrics of a freshly-run benchmark
//! JSON against the committed baseline, failing when any metric has
//! regressed beyond the tolerance.
//!
//! Usage:
//!
//! ```text
//! perf_check <committed.json> <fresh.json> <key> [<key>...]
//! ```
//!
//! Every `<key>` must exist as a numeric field in both files; the check
//! fails (exit 1) if `fresh > committed * (1 + TOLERANCE)` for any of
//! them. The 25% tolerance absorbs shared-runner noise while still
//! catching real regressions; the BENCH_*.json files are seconds, so
//! smaller is always better.
//!
//! The parser is a deliberately tiny flat-JSON scanner (the BENCH files
//! are flat or one level deep, written by our own binaries) — no JSON
//! dependency, no allocation beyond the file read.

use std::process::ExitCode;

/// Allowed relative slowdown before the check fails.
const TOLERANCE: f64 = 0.25;

/// Extract the numeric value of `"key": <number>` from a JSON text.
/// Nested objects are fine as long as the key itself is unique and its
/// value is a bare number.
fn numeric_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path, keys @ ..] = args.as_slice() else {
        return Err("usage: perf_check <committed.json> <fresh.json> <key> [<key>...]".into());
    };
    if keys.is_empty() {
        return Err("usage: perf_check <committed.json> <fresh.json> <key> [<key>...]".into());
    }
    let committed =
        std::fs::read_to_string(committed_path).map_err(|e| format!("{committed_path}: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path).map_err(|e| format!("{fresh_path}: {e}"))?;

    let mut failures = Vec::new();
    for key in keys {
        let base = numeric_field(&committed, key)
            .ok_or_else(|| format!("{committed_path}: no numeric field \"{key}\""))?;
        let now = numeric_field(&fresh, key)
            .ok_or_else(|| format!("{fresh_path}: no numeric field \"{key}\""))?;
        let limit = base * (1.0 + TOLERANCE);
        let verdict = if now > limit { "REGRESSED" } else { "ok" };
        eprintln!("  {key}: committed {base:.6}s, fresh {now:.6}s (limit {limit:.6}s) {verdict}");
        if now > limit {
            failures.push(format!(
                "{key} regressed: {now:.6}s vs committed {base:.6}s (+{:.0}% > +{:.0}% allowed)",
                (now / base - 1.0) * 100.0,
                TOLERANCE * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            eprintln!("perf check passed");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("perf check failed:\n{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "cohort": "small",
  "variants_secs": {
    "qol_dd": 0.151
  },
  "variants_total_secs": 1.25,
  "run_full_grid_secs": 0.7,
  "flat_single_core_speedup": 2.269
}"#;

    #[test]
    fn extracts_top_level_and_nested_numbers() {
        assert_eq!(numeric_field(SAMPLE, "run_full_grid_secs"), Some(0.7));
        assert_eq!(numeric_field(SAMPLE, "variants_total_secs"), Some(1.25));
        assert_eq!(numeric_field(SAMPLE, "qol_dd"), Some(0.151));
        assert_eq!(numeric_field(SAMPLE, "flat_single_core_speedup"), Some(2.269));
    }

    #[test]
    fn missing_or_non_numeric_keys_are_none() {
        assert_eq!(numeric_field(SAMPLE, "absent"), None);
        assert_eq!(numeric_field(SAMPLE, "cohort"), None);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(numeric_field(r#"{"x": 1.5e-3}"#, "x"), Some(0.0015));
        assert_eq!(numeric_field(r#"{"x": -2e2}"#, "x"), Some(-200.0));
    }
}
