//! Performance tracking for the serving layer: trains the SPPB DD
//! model, publishes it through the model registry, reloads it from
//! disk, and drives the batching prediction service with concurrent
//! clients submitting small requests — the serving-latency shape, as
//! opposed to `bench_predict`'s one-big-batch shape. Mid-run, the
//! identical artifact is republished and hot-reloaded through the
//! registry watcher, so the recorded latencies cover a live model swap
//! — the production steady state, not a static fast path. Records
//! request latency percentiles (p50/p99/p999), aggregate throughput,
//! and the service's robustness counters (`shed_total`,
//! `reload_count`) into `BENCH_serve.json` so the service's perf *and*
//! robustness trajectory is tracked from run to run (CI gates on the
//! percentile seconds — smaller is better — and on the counters:
//! shedding at defaults or a missed reload is a regression).
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_serve [out.json]`

use std::time::{Duration, Instant};

use msaw_bench::{
    exit_on_error, experiment_config, out_path_arg, paper_cohort, BenchError, EXPERIMENT_SEED,
};
use msaw_core::experiment::fit_final_model;
use msaw_core::{Approach, ModelKey, ModelRegistry};
use msaw_gbdt::ModelArtifact;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};
use msaw_serve::{PredictionService, RequestOptions, ServeConfig};

/// Concurrent client threads driving the service.
const CLIENTS: usize = 8;
/// Requests each client submits back-to-back.
const REQUESTS_PER_CLIENT: usize = 150;
/// Rows per request — small on purpose: the batcher's job is to
/// coalesce these into full blocks.
const ROWS_PER_REQUEST: usize = 16;
/// Warm-up requests discarded before measuring.
const WARMUP: usize = 20;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_path = out_path_arg("bench_serve", "BENCH_serve.json")?;
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    eprintln!(
        "training the SPPB DD model ({} rows x {} features)...",
        set.len(),
        set.features.ncols()
    );
    let model = fit_final_model(&set, &cfg);

    // Publish and reload through the registry so the bench times the
    // production path: a model served from a persisted artifact.
    let registry_dir =
        std::env::temp_dir().join(format!("msaw_bench_serve_{}", std::process::id()));
    let registry =
        ModelRegistry::open(&registry_dir).map_err(|e| BenchError::Pipeline(e.into()))?;
    let key = ModelKey::for_samples(&set, Approach::DataDriven);
    registry
        .store(&key, &ModelArtifact::from_booster(model, None))
        .map_err(|e| BenchError::Pipeline(e.into()))?;
    let artifact = registry.load(&key).map_err(|e| BenchError::Pipeline(e.into()))?;
    let trees = artifact.booster.trees().len();
    let nodes = artifact.forest.n_nodes();

    let service = PredictionService::spawn(artifact.clone(), ServeConfig::default()).unwrap();
    let watcher = service
        .watch_registry(registry.clone(), key.group_name(), Duration::from_millis(10))
        .map_err(|e| BenchError::Serve(e.to_string()))?;
    let total_requests = CLIENTS * REQUESTS_PER_CLIENT;
    eprintln!(
        "serving: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests x {ROWS_PER_REQUEST} rows, \
         with one hot reload mid-run..."
    );

    let wall = Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let handle = service.handle();
        // Each client cycles through its own window of cohort rows.
        let rows: Vec<usize> =
            (0..ROWS_PER_REQUEST * 8).map(|i| (c * 131 + i * 7) % set.len()).collect();
        let features = set.features.take_rows(&rows);
        clients.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
            for r in 0..WARMUP + REQUESTS_PER_CLIENT {
                let lo = (r * ROWS_PER_REQUEST) % (features.nrows() - ROWS_PER_REQUEST + 1);
                let window: Vec<usize> = (lo..lo + ROWS_PER_REQUEST).collect();
                let request = features.take_rows(&window);
                let start = Instant::now();
                let out = handle
                    .submit(&request, RequestOptions::default())
                    .map_err(|e| e.to_string())?
                    .wait()
                    .map_err(|e| e.to_string())?;
                let elapsed = start.elapsed().as_secs_f64();
                if out.predictions.len() != ROWS_PER_REQUEST {
                    return Err(format!(
                        "request answered {} rows, expected {ROWS_PER_REQUEST}",
                        out.predictions.len()
                    ));
                }
                if r >= WARMUP {
                    latencies.push(elapsed);
                }
            }
            Ok(latencies)
        }));
    }
    // Republish the identical artifact mid-run: the watcher must swap
    // it in while the clients are hammering, without shedding a single
    // request — the latencies below therefore price in a live reload.
    std::thread::sleep(Duration::from_millis(50));
    registry.store(&key, &artifact).map_err(|e| BenchError::Pipeline(e.into()))?;
    let reload_deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().reloads == 0 && Instant::now() < reload_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(total_requests);
    for client in clients {
        let client_latencies = client
            .join()
            .map_err(|_| BenchError::Serve("client thread panicked".into()))?
            .map_err(BenchError::Serve)?;
        latencies.extend(client_latencies);
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let stats = service.stats();
    watcher.stop();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);

    latencies.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let p999 = percentile(&latencies, 0.999);
    let served_rows = (total_requests + CLIENTS * WARMUP) * ROWS_PER_REQUEST;
    let rows_per_sec = served_rows as f64 / wall_secs;
    eprintln!(
        "p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  {:.0} rows/sec  \
         (sheds {}, reloads {}, restarts {})",
        p50 * 1e3,
        p99 * 1e3,
        p999 * 1e3,
        rows_per_sec,
        stats.shed_total(),
        stats.reloads,
        stats.batcher_restarts,
    );
    if stats.reloads == 0 {
        return Err(BenchError::Serve("the mid-run republish was never hot-reloaded".into()));
    }

    let json = format!(
        "{{\n  \"cohort\": \"paper\",\n  \"seed\": {},\n  \"trees\": {},\n  \"nodes\": {},\n  \
         \"clients\": {},\n  \"requests\": {},\n  \"rows_per_request\": {},\n  \
         \"serve_p50_secs\": {:.9},\n  \"serve_p99_secs\": {:.9},\n  \
         \"serve_p999_secs\": {:.9},\n  \"serve_rows_per_sec\": {:.1},\n  \
         \"shed_total\": {},\n  \"reload_count\": {},\n  \"batcher_restarts\": {},\n  \
         \"wall_secs\": {:.6}\n}}\n",
        EXPERIMENT_SEED,
        trees,
        nodes,
        CLIENTS,
        total_requests,
        ROWS_PER_REQUEST,
        p50,
        p99,
        p999,
        rows_per_sec,
        stats.shed_total(),
        stats.reloads,
        stats.batcher_restarts,
        wall_secs,
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
