//! Performance tracking for the serving layer: trains the SPPB DD
//! model, publishes it through the model registry, reloads it from
//! disk, and drives the batching prediction service with concurrent
//! clients submitting small requests — the serving-latency shape, as
//! opposed to `bench_predict`'s one-big-batch shape. Records request
//! latency percentiles and aggregate throughput into
//! `BENCH_serve.json` so the service's perf trajectory is tracked from
//! run to run (CI gates on the p50/p99 seconds; smaller is better).
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_serve [out.json]`

use std::time::Instant;

use msaw_bench::{
    exit_on_error, experiment_config, out_path_arg, paper_cohort, BenchError, EXPERIMENT_SEED,
};
use msaw_core::experiment::fit_final_model;
use msaw_core::{Approach, ModelKey, ModelRegistry};
use msaw_gbdt::ModelArtifact;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};
use msaw_serve::{PredictionService, RequestOptions, ServeConfig};

/// Concurrent client threads driving the service.
const CLIENTS: usize = 8;
/// Requests each client submits back-to-back.
const REQUESTS_PER_CLIENT: usize = 150;
/// Rows per request — small on purpose: the batcher's job is to
/// coalesce these into full blocks.
const ROWS_PER_REQUEST: usize = 16;
/// Warm-up requests discarded before measuring.
const WARMUP: usize = 20;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_path = out_path_arg("bench_serve", "BENCH_serve.json")?;
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    eprintln!(
        "training the SPPB DD model ({} rows x {} features)...",
        set.len(),
        set.features.ncols()
    );
    let model = fit_final_model(&set, &cfg);

    // Publish and reload through the registry so the bench times the
    // production path: a model served from a persisted artifact.
    let registry_dir =
        std::env::temp_dir().join(format!("msaw_bench_serve_{}", std::process::id()));
    let registry =
        ModelRegistry::open(&registry_dir).map_err(|e| BenchError::Pipeline(e.into()))?;
    let key = ModelKey::for_samples(&set, Approach::DataDriven);
    registry
        .store(&key, &ModelArtifact::from_booster(model, None))
        .map_err(|e| BenchError::Pipeline(e.into()))?;
    let artifact = registry.load(&key).map_err(|e| BenchError::Pipeline(e.into()))?;
    let trees = artifact.booster.trees().len();
    let nodes = artifact.forest.n_nodes();

    let service = PredictionService::spawn(artifact, ServeConfig::default()).unwrap();
    let total_requests = CLIENTS * REQUESTS_PER_CLIENT;
    eprintln!(
        "serving: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests x {ROWS_PER_REQUEST} rows..."
    );

    let wall = Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let handle = service.handle();
        // Each client cycles through its own window of cohort rows.
        let rows: Vec<usize> =
            (0..ROWS_PER_REQUEST * 8).map(|i| (c * 131 + i * 7) % set.len()).collect();
        let features = set.features.take_rows(&rows);
        clients.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
            for r in 0..WARMUP + REQUESTS_PER_CLIENT {
                let lo = (r * ROWS_PER_REQUEST) % (features.nrows() - ROWS_PER_REQUEST + 1);
                let window: Vec<usize> = (lo..lo + ROWS_PER_REQUEST).collect();
                let request = features.take_rows(&window);
                let start = Instant::now();
                let out = handle
                    .submit(&request, RequestOptions::default())
                    .map_err(|e| e.to_string())?
                    .wait()
                    .map_err(|e| e.to_string())?;
                let elapsed = start.elapsed().as_secs_f64();
                if out.predictions.len() != ROWS_PER_REQUEST {
                    return Err(format!(
                        "request answered {} rows, expected {ROWS_PER_REQUEST}",
                        out.predictions.len()
                    ));
                }
                if r >= WARMUP {
                    latencies.push(elapsed);
                }
            }
            Ok(latencies)
        }));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(total_requests);
    for client in clients {
        let client_latencies = client
            .join()
            .map_err(|_| BenchError::Serve("client thread panicked".into()))?
            .map_err(BenchError::Serve)?;
        latencies.extend(client_latencies);
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);

    latencies.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let served_rows = (total_requests + CLIENTS * WARMUP) * ROWS_PER_REQUEST;
    let rows_per_sec = served_rows as f64 / wall_secs;
    eprintln!("p50 {:.3}ms  p99 {:.3}ms  {:.0} rows/sec", p50 * 1e3, p99 * 1e3, rows_per_sec);

    let json = format!(
        "{{\n  \"cohort\": \"paper\",\n  \"seed\": {},\n  \"trees\": {},\n  \"nodes\": {},\n  \
         \"clients\": {},\n  \"requests\": {},\n  \"rows_per_request\": {},\n  \
         \"serve_p50_secs\": {:.9},\n  \"serve_p99_secs\": {:.9},\n  \
         \"serve_rows_per_sec\": {:.1},\n  \"wall_secs\": {:.6}\n}}\n",
        EXPERIMENT_SEED,
        trees,
        nodes,
        CLIENTS,
        total_requests,
        ROWS_PER_REQUEST,
        p50,
        p99,
        rows_per_sec,
        wall_secs,
    );
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
