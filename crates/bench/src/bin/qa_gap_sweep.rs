//! §3 Quality Assurance — the interpolation sweep.
//!
//! The paper: "We experimentally determined the max size of gaps that
//! could be safely interpolated (five missing steps), by assessing the
//! predictive performance of each of the models resulting from training
//! sets obtained from more or less 'aggressive' interpolation."
//!
//! This binary reruns that sweep: for every max-gap limit it rebuilds
//! the QoL sample set and evaluates the DD model, printing sample count
//! and 1-MAPE. Small limits starve the training set; large limits admit
//! spurious interpolated data.

use msaw_bench::{experiment_config, paper_cohort};
use msaw_core::{run_variant, Approach};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, PipelineConfig};

fn main() {
    let data = paper_cohort();
    let base = experiment_config();

    println!("QA sweep — model quality vs max interpolation gap (QoL, DD)");
    println!();
    println!("max gap | samples kept | kept %  | 1-MAPE (test) | MAE");
    for max_gap in 0..=10usize {
        let pipeline = PipelineConfig { max_interpolation_gap: max_gap, ..base.pipeline.clone() };
        let mut cfg = base.clone();
        cfg.pipeline = pipeline.clone();
        let panel = FeaturePanel::build(&data, &pipeline);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &pipeline);
        if set.len() < 50 {
            println!("{max_gap:>7} | {:>12} | too few samples to evaluate", set.len());
            continue;
        }
        let result = run_variant(&set, Approach::DataDriven, false, &cfg);
        let scores = result.regression.expect("regression outcome");
        println!(
            "{max_gap:>7} | {:>12} | {:>6.1}% | {:>12.1}% | {:.4}{}",
            set.len(),
            100.0 * set.len() as f64 / (data.patients.len() * 16) as f64,
            100.0 * scores.one_minus_mape,
            scores.mae,
            if max_gap == 5 { "   <- paper's choice" } else { "" }
        );
    }
    println!();
    println!("The paper fixed max gap = 5 as the balance point between sample count and");
    println!("interpolation-induced noise.");
}
