//! Performance tracking for the 12-model grid: times `run_full_grid`
//! on `CohortConfig::small` and writes `BENCH_grid.json` (wall-time per
//! variant plus the end-to-end total) so the grid's perf trajectory is
//! recorded from run to run.
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_grid [out.json]`

use std::time::Instant;

use msaw_bench::{exit_on_error, out_path_arg, BenchError, EXPERIMENT_SEED};
use msaw_cohort::{generate, CohortConfig};
use msaw_core::grid::build_variant_sets;
use msaw_core::{run_full_grid, run_variant, Approach, ExperimentConfig};
use msaw_preprocess::{FeaturePanel, OutcomeKind};

/// Median of at least one timed repetition, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_path = out_path_arg("bench_grid", "BENCH_grid.json")?;
    let data = generate(&CohortConfig::small(EXPERIMENT_SEED));
    let cfg = ExperimentConfig { seed: EXPERIMENT_SEED, ..ExperimentConfig::fast() };
    eprintln!("timing the 12-model grid on the small cohort ({} patients)...", data.patients.len());

    // Per-variant timings: one fit pipeline per variant, run in the same
    // canonical order the grid uses.
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let mut variants: Vec<(String, f64)> = Vec::new();
    for outcome in OutcomeKind::ALL {
        let sets = build_variant_sets(&data, &panel, outcome, &cfg);
        let jobs = [
            ("kd", &sets.kd, Approach::KnowledgeDriven, false),
            ("kd_fi", &sets.kd_fi, Approach::KnowledgeDriven, true),
            ("dd", &sets.dd, Approach::DataDriven, false),
            ("dd_fi", &sets.dd_fi, Approach::DataDriven, true),
        ];
        for (tag, set, approach, with_fi) in jobs {
            let secs = time_median(1, || {
                std::hint::black_box(run_variant(set, approach, with_fi, &cfg));
            });
            let name = format!("{}_{}", outcome.name().to_lowercase(), tag);
            eprintln!("  {name:<12} {secs:.3}s");
            variants.push((name, secs));
        }
    }

    // End-to-end grid wall time (median of 3: single-run noise on a
    // shared box is easily 10%+).
    let total = time_median(3, || {
        std::hint::black_box(run_full_grid(&data, &cfg));
    });
    eprintln!("run_full_grid total: {total:.3}s");

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"cohort\": \"small\",\n  \"patients\": {},\n  \"seed\": {},\n",
        data.patients.len(),
        EXPERIMENT_SEED
    ));
    json.push_str("  \"variants_secs\": {\n");
    for (i, (name, secs)) in variants.iter().enumerate() {
        let comma = if i + 1 < variants.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {secs:.6}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"variants_total_secs\": {:.6},\n",
        variants.iter().map(|(_, s)| s).sum::<f64>()
    ));
    json.push_str(&format!("  \"run_full_grid_secs\": {total:.6}\n}}\n"));
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
