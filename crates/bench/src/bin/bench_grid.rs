//! Performance tracking for the 12-model grid: times `run_full_grid`
//! on `CohortConfig::small` and writes `BENCH_grid.json` so the grid's
//! perf trajectory is recorded from run to run.
//!
//! Three rows tell the story, all medians of 3 runs:
//!
//! * `setup_secs` — panel + variant-set construction, the part of the
//!   end-to-end grid that is not model fitting. (An earlier revision
//!   timed this only inside the grid row, which made the end-to-end
//!   number read *slower* than the sum of its per-variant parts.)
//! * `variants_secs`/`variants_total_secs` — each variant run serially
//!   through `run_variant` on its own context and scratch.
//! * `run_full_grid_secs` — the pooled engine end to end (setup
//!   included): shared context cache, per-worker scratch arenas, fits
//!   fanned across `workers` pool workers.
//!
//! A second section benchmarks the **sharded out-of-core grid**
//! (`try_run_full_grid_chunked`): the same 12 variants fit entirely
//! from spilled bin-coded matrices at 10k and 100k patients, with
//! stream-compatible reduced parameters (the full-cohort matrices never
//! materialise in RAM). The 10k row is CI's smoke point; the 100k row
//! is the committed evidence that a grid infeasible in memory fits
//! inside the scaling bench's RSS envelope.
//!
//! Usage: `cargo run --release -p msaw-bench --bin bench_grid
//! [out.json] [sharded_max_patients]` — the second argument caps the
//! sharded sweep (CI smokes at 10000; the baseline runs 100000).

use std::time::Instant;

use msaw_bench::{exit_on_error, BenchError, EXPERIMENT_SEED};
use msaw_cohort::{generate, CohortConfig};
use msaw_core::grid::build_variant_sets;
use msaw_core::scale::peak_rss_mb;
use msaw_core::{
    run_full_grid, run_variant, try_run_full_grid_chunked, Approach, ChunkedGridConfig,
    ExperimentConfig,
};
use msaw_gbdt::TreeMethod;
use msaw_preprocess::{FeaturePanel, OutcomeKind};

/// Scales for the sharded out-of-core grid section.
const SHARDED_SCALES: [usize; 2] = [10_000, 100_000];

/// Median of at least one timed repetition, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    exit_on_error(run());
}

/// The stream-compatible reduced protocol for the sharded grid rows:
/// histogram trees with a shared bin budget, no subsampling, canonical
/// row order — the regime where the chunked grid is bit-identical to
/// the in-memory one — and a small forest so the 100k row stays a
/// benchmark rather than an afternoon.
fn sharded_experiment() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fast();
    cfg.seed = EXPERIMENT_SEED;
    cfg.cv_folds = 3;
    cfg.canonical_row_order = true;
    for params in [&mut cfg.regression_params, &mut cfg.classification_params] {
        params.n_estimators = 8;
        params.max_depth = 3;
        params.tree_method = TreeMethod::Hist { max_bins: 32 };
        params.subsample = 1.0;
        params.colsample_bytree = 1.0;
    }
    cfg
}

fn run() -> Result<(), BenchError> {
    let usage =
        || BenchError::Usage("bench_grid [BENCH_grid.json] [sharded_max_patients]".to_string());
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_grid.json".to_string());
    let sharded_max = match args.next() {
        Some(s) => s.parse::<usize>().map_err(|_| usage())?,
        None => *SHARDED_SCALES.last().unwrap(),
    };
    if args.next().is_some() {
        return Err(usage());
    }
    let data = generate(&CohortConfig::small(EXPERIMENT_SEED));
    let cfg = ExperimentConfig { seed: EXPERIMENT_SEED, ..ExperimentConfig::fast() };
    let workers = msaw_parallel::default_workers(usize::MAX);
    eprintln!(
        "timing the 12-model grid on the small cohort ({} patients, {} workers)...",
        data.patients.len(),
        workers
    );

    // The non-fitting setup the end-to-end grid row pays on top of its
    // fits: feature panel + the 3 outcomes' variant sample sets.
    let setup = time_median(3, || {
        let panel = FeaturePanel::build(&data, &cfg.pipeline);
        for outcome in OutcomeKind::ALL {
            std::hint::black_box(build_variant_sets(&data, &panel, outcome, &cfg));
        }
    });
    eprintln!("  setup (panel + variant sets): {setup:.3}s");

    // Per-variant timings: one fit pipeline per variant, run serially
    // in the grid's canonical order, each on its own context/scratch.
    let panel = FeaturePanel::build(&data, &cfg.pipeline);
    let mut variants: Vec<(String, f64)> = Vec::new();
    for outcome in OutcomeKind::ALL {
        let sets = build_variant_sets(&data, &panel, outcome, &cfg);
        let jobs = [
            ("kd", &sets.kd, Approach::KnowledgeDriven, false),
            ("kd_fi", &sets.kd_fi, Approach::KnowledgeDriven, true),
            ("dd", &sets.dd, Approach::DataDriven, false),
            ("dd_fi", &sets.dd_fi, Approach::DataDriven, true),
        ];
        for (tag, set, approach, with_fi) in jobs {
            let secs = time_median(3, || {
                std::hint::black_box(run_variant(set, approach, with_fi, &cfg));
            });
            let name = format!("{}_{}", outcome.name().to_lowercase(), tag);
            eprintln!("  {name:<12} {secs:.3}s");
            variants.push((name, secs));
        }
    }
    let variants_total: f64 = variants.iter().map(|(_, s)| s).sum();
    eprintln!("serial variants total: {variants_total:.3}s (excludes setup)");

    // End-to-end pooled grid (setup + cached planning + pooled fits).
    let total = time_median(3, || {
        std::hint::black_box(run_full_grid(&data, &cfg));
    });
    eprintln!("run_full_grid total: {total:.3}s (includes setup)");

    // The histogram-accumulation kernel in isolation: root-node
    // gradient/hessian histograms over the binned DD QoL matrix with
    // deterministic synthetic gradients, active kernel vs forced
    // scalar. Checksums must match exactly — the SIMD path is
    // bit-identical by contract.
    let sets = build_variant_sets(&data, &panel, OutcomeKind::Qol, &cfg);
    let binned = msaw_gbdt::binning::BinnedMatrix::fit(&sets.dd.features, 64);
    let nrows = binned.nrows();
    let grad: Vec<f64> = (0..nrows).map(|i| ((i * 37 + 11) % 101) as f64 / 50.5 - 1.0).collect();
    let hess: Vec<f64> = (0..nrows).map(|i| ((i * 53 + 7) % 89) as f64 / 89.0 + 0.25).collect();
    const HIST_PASSES: usize = 50;
    let hist_kernel = msaw_gbdt::simd::kernel_name();
    let mut check_simd = 0.0;
    let hist_secs = time_median(5, || {
        for _ in 0..HIST_PASSES {
            check_simd =
                std::hint::black_box(msaw_gbdt::build_hists_for_bench(&binned, &grad, &hess));
        }
    }) / HIST_PASSES as f64;
    msaw_gbdt::simd::force_level(Some(msaw_gbdt::SimdLevel::Scalar));
    let mut check_scalar = 0.0;
    let hist_scalar_secs = time_median(5, || {
        for _ in 0..HIST_PASSES {
            check_scalar =
                std::hint::black_box(msaw_gbdt::build_hists_for_bench(&binned, &grad, &hess));
        }
    }) / HIST_PASSES as f64;
    msaw_gbdt::simd::force_level(None);
    assert_eq!(
        check_simd.to_bits(),
        check_scalar.to_bits(),
        "histogram kernels diverged between {hist_kernel} and scalar"
    );
    eprintln!(
        "hist build ({} rows x {} features): {:.3}ms {hist_kernel} vs {:.3}ms scalar ({:.2}x)",
        nrows,
        binned.ncols(),
        hist_secs * 1e3,
        hist_scalar_secs * 1e3,
        hist_scalar_secs / hist_secs
    );

    // Sharded out-of-core grid: all 12 variants fit from spilled
    // bin-coded matrices, one row per scale. Wall time is a single run
    // (48 chunked fits dominate; median-of-3 would triple a long
    // benchmark for noise reduction it doesn't need).
    let mut sharded = String::new();
    let spill_root = std::env::temp_dir().join(format!("msaw_bench_grid_{}", std::process::id()));
    for &n in SHARDED_SCALES.iter().filter(|&&n| n <= sharded_max) {
        let cohort = CohortConfig::scaled(EXPERIMENT_SEED, n);
        let spill_dir = spill_root.join(format!("grid_{n}"));
        std::fs::create_dir_all(&spill_dir)
            .map_err(|source| BenchError::Io { path: spill_dir.display().to_string(), source })?;
        let mut gcfg = ChunkedGridConfig::new(sharded_experiment());
        gcfg.spill_dir = Some(spill_dir.clone());
        let fits_per_variant = gcfg.experiment.cv_folds + 1;
        eprintln!(
            "sharded grid at {n} patients ({} workers, spilled matrices)...",
            msaw_parallel::default_workers(usize::MAX)
        );
        let start = Instant::now();
        let report = try_run_full_grid_chunked(&cohort, &gcfg).map_err(BenchError::Pipeline)?;
        let secs = start.elapsed().as_secs_f64();
        let rss = peak_rss_mb().unwrap_or(0.0);
        let n_fits = report.results.len() * fits_per_variant;
        let secs_per_mrow = secs * 1.0e6 / report.n_rows.max(1) as f64;
        assert!(report.spilled, "sharded rows must run from spilled matrices");
        // Exactness is recorded, not asserted: the continuous FI/ICI
        // columns outgrow the per-column distinct budget at these
        // scales, which thins their cuts but changes nothing about the
        // grid's validity (bit-identity to the in-memory grid is pinned
        // by tests at the seed scale, where the sketch stays exact).
        eprintln!(
            "  {} rows | {} fits | {secs:.2}s ({secs_per_mrow:.2}s/Mrow) | peak RSS {rss:.0} MiB | sketch exact: {}",
            report.n_rows, n_fits, report.sketch_exact
        );
        sharded.push_str(&format!(
            "  \"grid{n}_patients\": {},\n  \"grid{n}_rows\": {},\n  \
             \"grid{n}_fits\": {n_fits},\n  \"grid{n}_sketch_exact\": {},\n  \
             \"grid{n}_secs\": {secs:.6},\n  \"grid{n}_secs_per_mrow\": {secs_per_mrow:.6},\n  \
             \"grid{n}_peak_rss_mb\": {rss:.1},\n",
            cohort.total_patients(),
            report.n_rows,
            if report.sketch_exact { "true" } else { "false" },
        ));
        let _ = std::fs::remove_dir_all(&spill_dir);
    }
    let _ = std::fs::remove_dir_all(&spill_root);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"cohort\": \"small\",\n  \"patients\": {},\n  \"seed\": {},\n  \"workers\": {},\n",
        data.patients.len(),
        EXPERIMENT_SEED,
        workers
    ));
    json.push_str(&sharded);
    json.push_str(&format!("  \"setup_secs\": {setup:.6},\n"));
    json.push_str("  \"variants_secs\": {\n");
    for (i, (name, secs)) in variants.iter().enumerate() {
        let comma = if i + 1 < variants.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {secs:.6}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"variants_total_secs\": {variants_total:.6},\n"));
    json.push_str(&format!("  \"run_full_grid_secs\": {total:.6},\n"));
    json.push_str(&format!("  \"hist_kernel\": \"{hist_kernel}\",\n"));
    json.push_str(&format!("  \"hist_build_secs\": {hist_secs:.9},\n"));
    json.push_str(&format!("  \"hist_build_scalar_secs\": {hist_scalar_secs:.9},\n"));
    json.push_str(&format!("  \"hist_build_speedup\": {:.3}\n}}\n", hist_scalar_secs / hist_secs));
    std::fs::write(&out_path, json)
        .map_err(|source| BenchError::Io { path: out_path.clone(), source })?;
    println!("wrote {out_path}");
    Ok(())
}
