//! Fig. 1 — distribution of the three outcomes over the QA'd sample set:
//! (a) QoL in 0.1-wide bins, (b) SPPB value counts, (c) Falls counts.
//!
//! The paper plots (a) and (b) with log-scale counts; we print the raw
//! counts per bin, which carry the same information.

use msaw_bench::{experiment_config, paper_cohort};
use msaw_metrics::histogram::{histogram, value_counts_bool, value_counts_i64};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    println!("Figure 1 — outcome distributions over the sample set");
    println!();

    let qol = build_samples(&data, &panel, OutcomeKind::Qol, &cfg.pipeline);
    println!(
        "(sample set: {} records from {} potential — paper: 2,250 of 4,176)",
        qol.len(),
        data.patients.len() * 16
    );
    println!();
    println!("(a) QoL distribution");
    for bin in histogram(&qol.labels, 0.0, 1.0, 10) {
        println!(
            "  {:>8}  {:>6}  {}",
            bin.label(),
            bin.count,
            bar(bin.count, 40.0 / qol.len() as f64)
        );
    }

    let sppb = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg.pipeline);
    println!();
    println!("(b) SPPB distribution");
    let sppb_int: Vec<i64> = sppb.labels.iter().map(|&l| l as i64).collect();
    for (value, count) in value_counts_i64(&sppb_int) {
        println!("  {:>8}  {:>6}  {}", value, count, bar(count, 40.0 / sppb.len() as f64));
    }

    let falls = build_samples(&data, &panel, OutcomeKind::Falls, &cfg.pipeline);
    println!();
    println!("(c) Falls distribution");
    let falls_bool: Vec<bool> = falls.labels.iter().map(|&l| l == 1.0).collect();
    let (neg, pos) = value_counts_bool(&falls_bool);
    println!("  {:>8}  {:>6}  {}", "False", neg, bar(neg, 40.0 / falls.len() as f64));
    println!("  {:>8}  {:>6}  {}", "True", pos, bar(pos, 40.0 / falls.len() as f64));
    println!();
    println!(
        "positive rate: {:.1}% (paper Fig. 1c shows a small minority of True)",
        100.0 * pos as f64 / falls.len() as f64
    );
}

fn bar(count: usize, scale: f64) -> String {
    "#".repeat((count as f64 * scale).round() as usize)
}
