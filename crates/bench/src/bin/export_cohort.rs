//! Export the synthetic cohort's QA'd sample sets to CSV, one file per
//! outcome, so the data can be inspected or consumed outside Rust
//! (the real MySAwH data cannot be shared; this synthetic stand-in can).
//!
//! ```sh
//! cargo run --release -p msaw-bench --bin export_cohort [out_dir]
//! ```

use msaw_bench::{exit_on_error, experiment_config, out_path_arg, paper_cohort, BenchError};
use msaw_kd::attach_fi;
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};
use msaw_tabular::csv::write_csv;
use std::fs::File;
use std::path::PathBuf;

fn main() {
    exit_on_error(run());
}

fn run() -> Result<(), BenchError> {
    let out_dir: PathBuf = out_path_arg("export_cohort", "cohort_export")?.into();
    let io_err = |path: &std::path::Path| {
        let path = path.display().to_string();
        move |source| BenchError::Io { path, source }
    };
    std::fs::create_dir_all(&out_dir).map_err(io_err(&out_dir))?;

    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    for outcome in OutcomeKind::ALL {
        let set = attach_fi(&build_samples(&data, &panel, outcome, &cfg.pipeline), &data);
        let path = out_dir.join(format!("samples_{}.csv", outcome.name().to_lowercase()));
        let file = File::create(&path).map_err(io_err(&path))?;
        write_csv(&set.to_frame(), file).map_err(io_err(&path))?;
        println!(
            "wrote {} ({} rows x {} columns)",
            path.display(),
            set.len(),
            set.features.ncols() + 5
        );
    }
    println!("\nColumns: patient, clinic, month, window, 59 features, fi_baseline, label.");
    Ok(())
}
