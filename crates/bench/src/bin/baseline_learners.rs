//! §5 learner comparison — the paper's model-selection claim:
//!
//! "The Gradient Boosting algorithm proved to offer better predictive
//! performance than other popular intelligible learning frameworks such
//! as GA2M, suggesting that separating model performance from model
//! interpretability would better suit our needs."
//!
//! This binary reruns that comparison on the DD sample sets: gradient
//! boosting (glass-box via post-hoc TreeSHAP) vs an additive GA²M-style
//! model and ridge linear/logistic regression (glass-box by
//! construction).

use msaw_baselines::{AdditiveModel, GamParams, LinearModel, LinearParams};
use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_core::{run_variant, Approach};
use msaw_metrics::train_test_split;
use msaw_metrics::{one_minus_mape, ConfusionMatrix};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    println!("Learner comparison on the DD feature space (80/20 split)");
    println!();
    println!("outcome | gradient boosting | additive (GA2M-style) | ridge linear");
    for outcome in OutcomeKind::ALL {
        let set = build_samples(&data, &panel, outcome, &cfg.pipeline);
        let (train, test) = train_test_split(set.len(), cfg.test_fraction, cfg.seed);
        let x_train = set.features.take_rows(&train);
        let y_train: Vec<f64> = train.iter().map(|&i| set.labels[i]).collect();
        let x_test = set.features.take_rows(&test);
        let y_test: Vec<f64> = test.iter().map(|&i| set.labels[i]).collect();

        let gbdt = run_variant(&set, Approach::DataDriven, false, &cfg).primary_metric();

        let gam_params =
            if outcome.is_classification() { GamParams::binary() } else { GamParams::regression() };
        let gam = AdditiveModel::train(&gam_params, &x_train, &y_train).expect("gam trains");
        let gam_preds = gam.predict(&x_test);

        let lin_params = if outcome.is_classification() {
            LinearParams::binary()
        } else {
            LinearParams::regression()
        };
        let lin = LinearModel::train(&lin_params, &x_train, &y_train).expect("linear trains");
        let lin_preds = lin.predict(&x_test);

        let score = |preds: &[f64]| {
            if outcome.is_classification() {
                let labels: Vec<bool> = y_test.iter().map(|&l| l == 1.0).collect();
                ConfusionMatrix::from_probabilities(&labels, preds, cfg.decision_threshold)
                    .accuracy()
            } else {
                one_minus_mape(&y_test, preds)
            }
        };
        println!(
            "{:<7} | {:>17} | {:>21} | {:>12}",
            outcome.name(),
            pct(gbdt),
            pct(score(&gam_preds)),
            pct(score(&lin_preds)),
        );
    }
    println!();
    println!("Metric: 1-MAPE for QoL/SPPB, accuracy for Falls. Expect gradient boosting to");
    println!("match or beat the glass-box learners, as the paper found for GA2M.");
}
