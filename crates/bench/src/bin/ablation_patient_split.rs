//! Methodological ablation — within-patient leakage.
//!
//! The paper (like much of the clinical-ML literature of its time)
//! splits at the *sample* level: the same patient's monthly samples can
//! land in both train and test, and samples from one window share their
//! label. This ablation quantifies how much of the headline score that
//! leakage is worth by comparing the paper's protocol against a
//! grouped split that keeps each patient entirely on one side —
//! both runs go through the same `run_variant` pipeline, toggled by
//! `ExperimentConfig::split_by_patient`.

use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_core::{run_variant, Approach, ExperimentConfig};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind};

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let grouped_cfg = ExperimentConfig { split_by_patient: true, ..cfg.clone() };
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    println!("Ablation — sample-level split (paper protocol) vs per-patient grouped split");
    println!();
    println!("outcome | sample-level (paper) | patient-grouped | leakage premium");
    for outcome in OutcomeKind::ALL {
        let set = build_samples(&data, &panel, outcome, &cfg.pipeline);
        let paper_style = run_variant(&set, Approach::DataDriven, false, &cfg).primary_metric();
        let grouped = run_variant(&set, Approach::DataDriven, false, &grouped_cfg).primary_metric();
        println!(
            "{:<7} | {:>20} | {:>15} | {:>+14.1}pp",
            outcome.name(),
            pct(paper_style),
            pct(grouped),
            100.0 * (paper_style - grouped),
        );
    }
    println!();
    println!("A positive premium means part of the paper-protocol score comes from the");
    println!("model recognising patients it has already seen — a caveat for deployment.");
}
