//! Methodological ablation — within-patient leakage.
//!
//! The paper (like much of the clinical-ML literature of its time)
//! splits at the *sample* level: the same patient's monthly samples can
//! land in both train and test, and samples from one window share their
//! label. This ablation quantifies how much of the headline score that
//! leakage is worth by comparing the paper's protocol against a
//! grouped split that keeps each patient entirely on one side.

use msaw_bench::{experiment_config, paper_cohort, pct};
use msaw_core::{run_variant, Approach};
use msaw_metrics::{group_train_test_split, one_minus_mape, ConfusionMatrix};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, SampleSet};

/// Evaluate with a per-patient grouped 80/20 split, same learner.
fn grouped_score(set: &SampleSet, cfg: &msaw_core::ExperimentConfig) -> f64 {
    let groups = set.patient_groups();
    let (train, test) = group_train_test_split(&groups, cfg.test_fraction, cfg.seed);
    let x_train = set.features.take_rows(&train);
    let y_train: Vec<f64> = train.iter().map(|&i| set.labels[i]).collect();
    let x_test = set.features.take_rows(&test);
    let y_test: Vec<f64> = test.iter().map(|&i| set.labels[i]).collect();
    let model = msaw_gbdt::Booster::train(cfg.params_for(set.outcome), &x_train, &y_train)
        .expect("training succeeds");
    let preds = model.predict(&x_test);
    if set.outcome.is_classification() {
        let labels: Vec<bool> = y_test.iter().map(|&l| l == 1.0).collect();
        ConfusionMatrix::from_probabilities(&labels, &preds, cfg.decision_threshold).accuracy()
    } else {
        one_minus_mape(&y_test, &preds)
    }
}

fn main() {
    let data = paper_cohort();
    let cfg = experiment_config();
    let panel = FeaturePanel::build(&data, &cfg.pipeline);

    println!("Ablation — sample-level split (paper protocol) vs per-patient grouped split");
    println!();
    println!("outcome | sample-level (paper) | patient-grouped | leakage premium");
    for outcome in OutcomeKind::ALL {
        let set = build_samples(&data, &panel, outcome, &cfg.pipeline);
        let paper_style = run_variant(&set, Approach::DataDriven, false, &cfg).primary_metric();
        let grouped = grouped_score(&set, &cfg);
        println!(
            "{:<7} | {:>20} | {:>15} | {:>+14.1}pp",
            outcome.name(),
            pct(paper_style),
            pct(grouped),
            100.0 * (paper_style - grouped),
        );
    }
    println!();
    println!("A positive premium means part of the paper-protocol score comes from the");
    println!("model recognising patients it has already seen — a caveat for deployment.");
}
