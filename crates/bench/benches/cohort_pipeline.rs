//! Data-pipeline benches: cohort generation throughput and the QA /
//! aggregation / sample-construction stages, at the paper's scale.

use criterion::{criterion_group, criterion_main, Criterion};
use msaw_cohort::{generate, CohortConfig};
use msaw_preprocess::{build_samples, FeaturePanel, OutcomeKind, PipelineConfig};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cohort_generate");
    group.sample_size(10);
    group.bench_function("paper_261_patients", |b| {
        b.iter(|| black_box(generate(black_box(&CohortConfig::paper(42)))))
    });
    group.bench_function("small_cohort", |b| {
        b.iter(|| black_box(generate(black_box(&CohortConfig::small(42)))))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let data = generate(&CohortConfig::paper(42));
    let cfg = PipelineConfig::default();
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    group.bench_function("feature_panel_261", |b| {
        b.iter(|| black_box(FeaturePanel::build(black_box(&data), black_box(&cfg))))
    });
    let panel = FeaturePanel::build(&data, &cfg);
    group.bench_function("build_samples_qol", |b| {
        b.iter(|| {
            black_box(build_samples(
                black_box(&data),
                black_box(&panel),
                OutcomeKind::Qol,
                black_box(&cfg),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_pipeline);
criterion_main!(benches);
