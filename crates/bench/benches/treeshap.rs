//! TreeSHAP cost benches: per-row explanation cost as tree count and
//! depth grow (TreeSHAP is O(trees · leaves · depth²) per instance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msaw_gbdt::{Booster, Params};
use msaw_shap::TreeExplainer;
use msaw_tabular::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

fn synth(nrows: usize, ncols: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f64; nrows * ncols];
    let mut y = Vec::with_capacity(nrows);
    for i in 0..nrows {
        for j in 0..ncols {
            data[i * ncols + j] = rng.random_range(0.0..5.0);
        }
        y.push(data[i * ncols] * 2.0 + data[i * ncols + 1]);
    }
    (Matrix::from_vec(data, nrows, ncols), y)
}

fn bench_by_trees(c: &mut Criterion) {
    let (x, y) = synth(600, 59, 3);
    let mut group = c.benchmark_group("treeshap_row_by_trees");
    for n_trees in [50usize, 150, 250] {
        let model = Booster::train(
            &Params { n_estimators: n_trees, max_depth: 4, ..Params::regression() },
            &x,
            &y,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &model, |b, m| {
            let explainer = TreeExplainer::new(m);
            b.iter(|| black_box(explainer.shap_values_row(black_box(x.row(0)))))
        });
    }
    group.finish();
}

fn bench_by_depth(c: &mut Criterion) {
    let (x, y) = synth(600, 59, 5);
    let mut group = c.benchmark_group("treeshap_row_by_depth");
    for depth in [2usize, 4, 6] {
        let model = Booster::train(
            &Params { n_estimators: 50, max_depth: depth, ..Params::regression() },
            &x,
            &y,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &model, |b, m| {
            let explainer = TreeExplainer::new(m);
            b.iter(|| black_box(explainer.shap_values_row(black_box(x.row(0)))))
        });
    }
    group.finish();
}

fn bench_full_matrix(c: &mut Criterion) {
    let (x, y) = synth(600, 59, 7);
    let model =
        Booster::train(&Params { n_estimators: 100, max_depth: 4, ..Params::regression() }, &x, &y)
            .unwrap();
    let mut group = c.benchmark_group("treeshap_matrix");
    group.sample_size(10);
    group.bench_function("600rows_100trees", |b| {
        let explainer = TreeExplainer::new(&model);
        b.iter(|| black_box(explainer.shap_values(black_box(&x))))
    });
    group.finish();
}

criterion_group!(benches, bench_by_trees, bench_by_depth, bench_full_matrix);
criterion_main!(benches);
