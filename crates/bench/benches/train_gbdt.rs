//! Training-cost benches: exact vs histogram split finding at the
//! paper's data scale (≈2.3k rows × 59 features), plus a depth sweep.
//! These back the DESIGN.md ablation on split-finder choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msaw_gbdt::{Booster, Params, TreeMethod};
use msaw_tabular::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

/// Synthetic paper-scale matrix: 59 features, 10% missing, noisy linear
/// + threshold target.
fn synth(nrows: usize, ncols: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f64; nrows * ncols];
    let mut y = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let mut target = 0.0;
        for j in 0..ncols {
            let v: f64 =
                if rng.random::<f64>() < 0.1 { f64::NAN } else { rng.random_range(0.0..5.0) };
            data[i * ncols + j] = v;
            if !v.is_nan() && j < 8 {
                target += v * (j + 1) as f64 * 0.1;
            }
        }
        y.push(target + rng.random_range(-0.5..0.5));
    }
    (Matrix::from_vec(data, nrows, ncols), y)
}

fn bench_split_methods(c: &mut Criterion) {
    let (x, y) = synth(2300, 59, 7);
    let mut group = c.benchmark_group("train_2300x59_50trees");
    group.sample_size(10);
    for (label, method) in [
        ("exact", TreeMethod::Exact),
        ("hist_256", TreeMethod::Hist { max_bins: 256 }),
        ("hist_32", TreeMethod::Hist { max_bins: 32 }),
    ] {
        let params =
            Params { n_estimators: 50, max_depth: 4, tree_method: method, ..Params::regression() };
        group.bench_function(label, |b| {
            b.iter(|| Booster::train(black_box(&params), black_box(&x), black_box(&y)).unwrap())
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let (x, y) = synth(1000, 59, 9);
    let mut group = c.benchmark_group("train_depth_sweep");
    group.sample_size(10);
    for depth in [2usize, 4, 6] {
        let params = Params { n_estimators: 20, max_depth: depth, ..Params::regression() };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &params, |b, p| {
            b.iter(|| Booster::train(black_box(p), black_box(&x), black_box(&y)).unwrap())
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synth(2300, 59, 11);
    let model =
        Booster::train(&Params { n_estimators: 250, max_depth: 4, ..Params::regression() }, &x, &y)
            .unwrap();
    c.bench_function("predict_2300_rows_250trees", |b| {
        b.iter(|| black_box(model.predict(black_box(&x))))
    });
}

criterion_group!(benches, bench_split_methods, bench_depth, bench_predict);
criterion_main!(benches);
