//! # msaw-serve
//!
//! The serving front-end over persisted model artifacts: a
//! [`PredictionService`] owns a loaded [`ModelArtifact`] and accepts
//! concurrent prediction requests from any number of client threads,
//! coalescing them into large batches so the flat-forest block kernel
//! runs at batch throughput even when every caller submits a handful
//! of rows.
//!
//! ## Architecture
//!
//! No async runtime is available (dependencies are vendored), so the
//! service is built on threads and channels — the same shape an async
//! executor would reduce to for a CPU-bound model server:
//!
//! ```text
//! client threads          batcher thread             worker pool
//! ServiceHandle ─┐
//! ServiceHandle ─┼─ mpsc ─► coalesce ≤ max_batch ─► try_predict_batch_on
//! ServiceHandle ─┘          split per request        (256-row blocks)
//!      ▲                        │
//!      └── Ticket::wait ◄───────┘  (per-request reply channel)
//! ```
//!
//! * [`ServiceHandle::submit`] validates the request's feature count,
//!   enqueues it, and returns a [`Ticket`] immediately — submission
//!   never blocks on inference.
//! * The batcher drains whatever is queued (up to
//!   [`ServeConfig::max_batch_rows`]), stacks the rows into one
//!   matrix, and predicts through
//!   [`FlatForest::try_predict_batch_on`], which runs 256-row blocks
//!   on the panic-containing worker pool — a poisoned row yields a
//!   typed [`ServeError`], never a crashed server.
//! * Results are split back per request and delivered on each ticket's
//!   private channel; a request with [`explain`](RequestOptions)
//!   set also carries exact TreeSHAP attributions for each row.
//!
//! Determinism: predictions go through the same block kernel as the
//! offline path, so served scores are bit-identical to
//! `FlatForest::predict_batch` at any worker count and any request
//! interleaving — batching changes latency, never values.

use msaw_gbdt::{FlatForest, ModelArtifact, PredictError};
use msaw_shap::{Explanation, PathArena, TreeExplainer};
use msaw_tabular::Matrix;
use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Tuning knobs for a [`PredictionService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads for the prediction pool (0 = the pool default).
    pub workers: usize,
    /// Coalescing ceiling: the batcher stops draining the queue once
    /// this many rows are pending. One flat-forest block is 256 rows,
    /// so multiples of 256 keep the kernel's lanes full.
    pub max_batch_rows: usize,
    /// Admission ceiling: how many requests may wait in the queue
    /// before [`ServiceHandle::submit`] starts rejecting with
    /// [`ServeError::Overloaded`]. Bounding the queue keeps a stalled
    /// batcher from letting submissions grow memory without limit;
    /// clamped to at least 1 at spawn.
    pub max_queued_requests: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 0, max_batch_rows: 4096, max_queued_requests: 1024 }
    }
}

/// Per-request options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Attach an exact TreeSHAP [`Explanation`] to every row of the
    /// response (slower; runs over the booster trees, not the flat
    /// forest).
    pub explain: bool,
}

/// Failures a serving client can observe.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submitted rows have the wrong width for the model.
    FeatureCount { expected: usize, actual: usize },
    /// The submitted batch was empty.
    EmptyRequest,
    /// Inference failed (a contained panic in the worker pool).
    Predict(PredictError),
    /// The admission queue is full; the request was rejected without
    /// being enqueued. Retry after draining, or raise
    /// [`ServeConfig::max_queued_requests`].
    Overloaded,
    /// The service shut down before answering.
    Closed,
    /// The batcher thread could not be started.
    Spawn {
        /// The OS error from [`std::thread::Builder::spawn`].
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::FeatureCount { expected, actual } => {
                write!(f, "model expects {expected} features, request rows have {actual}")
            }
            ServeError::EmptyRequest => write!(f, "request contains no rows"),
            ServeError::Predict(e) => write!(f, "inference failed: {e}"),
            ServeError::Overloaded => write!(f, "prediction queue is full, request rejected"),
            ServeError::Closed => write!(f, "prediction service is shut down"),
            ServeError::Spawn { message } => {
                write!(f, "could not start batcher thread: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// One request's answer: a prediction per submitted row, in submission
/// order, plus per-row explanations when asked for.
#[derive(Debug, Clone)]
pub struct PredictionOutput {
    /// Objective-transformed predictions (probabilities for logistic
    /// models), one per row.
    pub predictions: Vec<f64>,
    /// Exact TreeSHAP attributions per row, present iff the request
    /// set [`RequestOptions::explain`].
    pub explanations: Option<Vec<Explanation>>,
}

/// A queued request travelling to the batcher thread.
struct Request {
    /// Row-major feature values, `nrows × n_features`.
    values: Vec<f64>,
    nrows: usize,
    explain: bool,
    reply: mpsc::Sender<Result<PredictionOutput, ServeError>>,
}

/// What travels over the service queue. `Shutdown` is enqueued by
/// [`PredictionService::shutdown`]; FIFO order means every request
/// accepted before it is still answered.
enum Message {
    Predict(Request),
    Shutdown,
}

/// A pending response. Obtain with [`ServiceHandle::submit`], redeem
/// with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<PredictionOutput, ServeError>>,
}

impl Ticket {
    /// Block until the service answers.
    pub fn wait(self) -> Result<PredictionOutput, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// A cloneable client endpoint; every clone feeds the same batcher.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: mpsc::SyncSender<Message>,
    n_features: usize,
}

impl ServiceHandle {
    /// Feature width the model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Enqueue `rows` for prediction. Validates the width up front and
    /// returns immediately; the returned [`Ticket`] resolves once the
    /// batcher has run the rows through the model.
    ///
    /// Admission is non-blocking: when
    /// [`ServeConfig::max_queued_requests`] requests are already
    /// waiting, the submit is rejected with [`ServeError::Overloaded`]
    /// instead of queueing (or blocking) — load-shedding happens at the
    /// door, not after memory has grown.
    pub fn submit(&self, rows: &Matrix, options: RequestOptions) -> Result<Ticket, ServeError> {
        if rows.ncols() != self.n_features {
            return Err(ServeError::FeatureCount {
                expected: self.n_features,
                actual: rows.ncols(),
            });
        }
        if rows.nrows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let (reply, rx) = mpsc::channel();
        let request = Request {
            values: rows.as_slice().to_vec(),
            nrows: rows.nrows(),
            explain: options.explain,
            reply,
        };
        self.tx.try_send(Message::Predict(request)).map_err(|e| match e {
            mpsc::TrySendError::Full(_) => ServeError::Overloaded,
            mpsc::TrySendError::Disconnected(_) => ServeError::Closed,
        })?;
        Ok(Ticket { rx })
    }

    /// Convenience: submit one row and wait for its prediction.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, ServeError> {
        let matrix = Matrix::from_rows(std::slice::from_ref(&row.to_vec()));
        let out = self.submit(&matrix, RequestOptions::default())?.wait()?;
        Ok(out.predictions[0])
    }
}

/// The serving process: a loaded model plus its batcher thread.
///
/// Dropping the service (or calling [`shutdown`](Self::shutdown))
/// closes the queue; requests already accepted are answered first.
#[derive(Debug)]
pub struct PredictionService {
    handle: ServiceHandle,
    batcher: Option<JoinHandle<()>>,
}

impl PredictionService {
    /// Start serving `artifact` with the given configuration.
    ///
    /// The admission queue is bounded at
    /// [`ServeConfig::max_queued_requests`] (clamped to at least 1). A
    /// batcher thread that cannot be started — resource exhaustion at
    /// the OS level — surfaces as [`ServeError::Spawn`] instead of a
    /// panic, so an embedding server can degrade gracefully.
    pub fn spawn(
        artifact: ModelArtifact,
        config: ServeConfig,
    ) -> Result<PredictionService, ServeError> {
        let n_features = artifact.forest.n_features();
        let (tx, rx) = mpsc::sync_channel::<Message>(config.max_queued_requests.max(1));
        let batcher = std::thread::Builder::new()
            .name("msaw-serve-batcher".into())
            .spawn(move || batcher_loop(artifact, config, rx))
            .map_err(|e| ServeError::Spawn { message: e.to_string() })?;
        Ok(PredictionService { handle: ServiceHandle { tx, n_features }, batcher: Some(batcher) })
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stop accepting requests, answer everything already queued, and
    /// join the batcher thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // A shutdown message (rather than dropping senders) lets
        // cloned handles outlive the service without wedging the join:
        // the batcher exits as soon as it dequeues the marker, having
        // answered everything enqueued before it.
        if let Some(thread) = self.batcher.take() {
            let _ = self.handle.tx.send(Message::Shutdown);
            let _ = thread.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The batcher: block on the first request, drain whatever else is
/// queued up to the row ceiling, predict once, split the answers.
fn batcher_loop(artifact: ModelArtifact, config: ServeConfig, rx: mpsc::Receiver<Message>) {
    let forest = &artifact.forest;
    let explainer = TreeExplainer::new(&artifact.booster);
    let mut arena = PathArena::new();
    while let Ok(first) = rx.recv() {
        let first = match first {
            Message::Predict(request) => request,
            Message::Shutdown => return,
        };
        let mut batch = vec![first];
        let mut total_rows = batch[0].nrows;
        let mut stop = false;
        while total_rows < config.max_batch_rows {
            match rx.try_recv() {
                Ok(Message::Predict(request)) => {
                    total_rows += request.nrows;
                    batch.push(request);
                }
                Ok(Message::Shutdown) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        run_batch(forest, &explainer, &mut arena, config, batch, total_rows);
        if stop {
            return;
        }
    }
}

/// Predict one coalesced batch and deliver each request's slice.
fn run_batch(
    forest: &FlatForest,
    explainer: &TreeExplainer<'_>,
    arena: &mut PathArena,
    config: ServeConfig,
    batch: Vec<Request>,
    total_rows: usize,
) {
    let n_features = forest.n_features();
    let mut values = Vec::with_capacity(total_rows * n_features);
    for request in &batch {
        values.extend_from_slice(&request.values);
    }
    let matrix = Matrix::from_vec(values, total_rows, n_features);
    let workers = if config.workers == 0 {
        msaw_parallel::default_workers(total_rows.div_ceil(256))
    } else {
        config.workers
    };
    let predictions = match forest.try_predict_batch_on(workers, &matrix) {
        Ok(p) => p,
        Err(e) => {
            // A contained panic poisons only this coalesced batch;
            // every caller in it learns which block failed, and the
            // service keeps running for the next batch.
            for request in &batch {
                let _ = request.reply.send(Err(ServeError::Predict(e.clone())));
            }
            return;
        }
    };
    let mut offset = 0;
    for request in batch {
        let slice = &predictions[offset..offset + request.nrows];
        let explanations = request.explain.then(|| {
            (0..request.nrows)
                .map(|i| {
                    let row = &request.values[i * n_features..(i + 1) * n_features];
                    explainer.shap_values_row_with(row, arena)
                })
                .collect()
        });
        let _ =
            request.reply.send(Ok(PredictionOutput { predictions: slice.to_vec(), explanations }));
        offset += request.nrows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::{Booster, Params};

    fn artifact() -> ModelArtifact {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64, if i % 9 == 0 { f64::NAN } else { (i % 6) as f64 }])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| r[0] - if r[1].is_nan() { 3.0 } else { r[1].clamp(0.0, 3.0) })
            .collect();
        let params = Params { n_estimators: 8, ..Params::regression() };
        let model = Booster::train(&params, &Matrix::from_rows(&rows), &labels).unwrap();
        ModelArtifact::from_booster(model, None)
    }

    fn query_rows(n: usize) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|i| vec![(i % 13) as f64, if i % 5 == 0 { f64::NAN } else { i as f64 }])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn served_predictions_match_the_offline_batch_path() {
        let a = artifact();
        let expected = a.forest.predict_batch(&query_rows(700));
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let out = service
            .handle()
            .submit(&query_rows(700), RequestOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.predictions.len(), 700);
        for (got, want) in out.predictions.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        service.shutdown();
    }

    #[test]
    fn concurrent_clients_each_get_their_own_rows_back() {
        let a = artifact();
        let forest = a.forest.clone();
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let mut clients = Vec::new();
        for c in 0..8usize {
            let handle = service.handle();
            clients.push(std::thread::spawn(move || {
                let rows = query_rows(40 + c * 7);
                let out = handle.submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
                (rows, out)
            }));
        }
        for client in clients {
            let (rows, out) = client.join().unwrap();
            let expected = forest.predict_batch(&rows);
            assert_eq!(out.predictions.len(), rows.nrows());
            for (got, want) in out.predictions.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        service.shutdown();
    }

    #[test]
    fn explanations_reconstruct_the_raw_prediction() {
        let a = artifact();
        let forest = a.forest.clone();
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let rows = query_rows(5);
        let out = service
            .handle()
            .submit(&rows, RequestOptions { explain: true })
            .unwrap()
            .wait()
            .unwrap();
        let explanations = out.explanations.expect("asked for explanations");
        assert_eq!(explanations.len(), 5);
        for (i, e) in explanations.iter().enumerate() {
            let raw = forest.predict_raw_row(rows.row(i));
            let reconstructed = e.base_value + e.values.iter().sum::<f64>();
            assert!((reconstructed - raw).abs() < 1e-9);
        }
        service.shutdown();
    }

    #[test]
    fn wrong_width_and_empty_requests_are_rejected_at_submit() {
        let service = PredictionService::spawn(artifact(), ServeConfig::default()).unwrap();
        let handle = service.handle();
        let wide = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(
            handle.submit(&wide, RequestOptions::default()).unwrap_err(),
            ServeError::FeatureCount { expected: 2, actual: 3 }
        );
        let empty = Matrix::zeros(0, 2);
        assert_eq!(
            handle.submit(&empty, RequestOptions::default()).unwrap_err(),
            ServeError::EmptyRequest
        );
        service.shutdown();
    }

    #[test]
    fn handles_outliving_the_service_observe_closed() {
        let service = PredictionService::spawn(artifact(), ServeConfig::default()).unwrap();
        let handle = service.handle();
        service.shutdown();
        let rows = query_rows(1);
        match handle.submit(&rows, RequestOptions::default()) {
            Err(ServeError::Closed) => {}
            Ok(ticket) => assert_eq!(ticket.wait().unwrap_err(), ServeError::Closed),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tiny_batch_ceiling_still_answers_everyone() {
        // Force many small coalesced batches to exercise the split path.
        let a = artifact();
        let forest = a.forest.clone();
        let config = ServeConfig { workers: 2, max_batch_rows: 8, ..ServeConfig::default() };
        let service = PredictionService::spawn(a, config).unwrap();
        let handle = service.handle();
        let rows = query_rows(30);
        let tickets: Vec<Ticket> =
            (0..6).map(|_| handle.submit(&rows, RequestOptions::default()).unwrap()).collect();
        let expected = forest.predict_batch(&rows);
        for ticket in tickets {
            let out = ticket.wait().unwrap();
            for (got, want) in out.predictions.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        service.shutdown();
    }

    #[test]
    fn full_admission_queue_rejects_with_overloaded() {
        // Drive the admission path directly: a handle over a held
        // 2-slot queue with no batcher draining it. The first two
        // submissions are admitted, the third is shed at the door.
        let (tx, rx) = mpsc::sync_channel::<Message>(2);
        let handle = ServiceHandle { tx, n_features: 2 };
        let rows = query_rows(1);
        let t1 = handle.submit(&rows, RequestOptions::default());
        let t2 = handle.submit(&rows, RequestOptions::default());
        assert!(t1.is_ok() && t2.is_ok(), "submissions within capacity are admitted");
        assert_eq!(
            handle.submit(&rows, RequestOptions::default()).unwrap_err(),
            ServeError::Overloaded
        );
        // Draining one slot re-opens admission.
        assert!(matches!(rx.try_recv(), Ok(Message::Predict(_))));
        assert!(handle.submit(&rows, RequestOptions::default()).is_ok());
    }

    #[test]
    fn overload_recovers_once_the_batcher_catches_up() {
        // End-to-end: a 1-slot queue against a live batcher sheds load
        // under a burst but keeps answering, and admits again later.
        let a = artifact();
        let config = ServeConfig { max_queued_requests: 1, ..ServeConfig::default() };
        let service = PredictionService::spawn(a, config).unwrap();
        let handle = service.handle();
        let rows = query_rows(4);
        let mut answered = 0;
        let mut shed = 0;
        for _ in 0..200 {
            match handle.submit(&rows, RequestOptions::default()) {
                Ok(ticket) => {
                    assert_eq!(ticket.wait().unwrap().predictions.len(), 4);
                    answered += 1;
                }
                Err(ServeError::Overloaded) => shed += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(answered > 0, "a live service must answer admitted requests");
        let _ = shed; // bursty schedulers may or may not trigger shedding
        service.shutdown();
    }

    #[test]
    fn spawn_reports_errors_as_values() {
        // The happy path returns Ok; the point of the signature is that
        // thread-spawn failure would arrive as ServeError::Spawn rather
        // than a panic. Exercise the error's Display while we're here.
        let service = PredictionService::spawn(artifact(), ServeConfig::default());
        assert!(service.is_ok());
        let e = ServeError::Spawn { message: "out of threads".into() };
        assert!(e.to_string().contains("out of threads"));
    }
}
