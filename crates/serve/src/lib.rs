//! # msaw-serve
//!
//! The serving front-end over persisted model artifacts: a
//! [`PredictionService`] owns a loaded [`ModelArtifact`] and accepts
//! concurrent prediction requests from any number of client threads,
//! coalescing them into large batches so the flat-forest block kernel
//! runs at batch throughput even when every caller submits a handful
//! of rows.
//!
//! ## Architecture
//!
//! No async runtime is available (dependencies are vendored), so the
//! service is built on threads and channels — the same shape an async
//! executor would reduce to for a CPU-bound model server:
//!
//! ```text
//! client threads           supervisor ▸ batcher            worker pool
//! ServiceHandle ─┐
//! ServiceHandle ─┼─ mpsc ─► coalesce ≤ max_batch ───────► try_predict_batch_on
//! ServiceHandle ─┘          split per request              (256-row blocks)
//!      ▲                        │               ▲
//!      └── Ticket::wait ◄───────┘               │ Arc-swap between batches
//!          (per-request reply channel)     ReloadWatcher ◄─ registry poll
//! ```
//!
//! * [`ServiceHandle::submit`] validates the request's feature count,
//!   checks the submitting client's in-flight quota, enqueues, and
//!   returns a [`Ticket`] immediately — submission never blocks on
//!   inference.
//! * The batcher drains whatever is queued (up to
//!   [`ServeConfig::max_batch_rows`]), sheds requests whose deadline
//!   already expired, stacks the surviving rows into one matrix, and
//!   predicts through [`FlatForest::try_predict_batch_on`], which runs
//!   256-row blocks on the panic-containing worker pool — a poisoned
//!   row yields a typed [`ServeError`], never a crashed server.
//! * Results are split back per request and delivered on each ticket's
//!   private channel; a request with [`explain`](RequestOptions) set
//!   also carries exact TreeSHAP attributions for each row — unless
//!   the queue is past [`ServeConfig::degrade_queue_depth`], in which
//!   case the SHAP work is shed first and the output is flagged
//!   [`degraded`](PredictionOutput::degraded) so predictions stay
//!   available under load that would otherwise mean
//!   [`ServeError::Overloaded`].
//!
//! ## Robustness contract
//!
//! Four failure modes the service survives by construction:
//!
//! * **Slow clients** — a per-request deadline
//!   ([`RequestOptions::deadline`]) is checked when the batcher
//!   dequeues the request: work that nobody is waiting for any more is
//!   shed with [`ServeError::DeadlineExceeded`] instead of burning
//!   batch capacity. [`Ticket::wait_timeout`] bounds the caller side,
//!   so no client ever hangs on a wedged service.
//! * **Greedy clients** — every submit carries a [`ClientId`]; a
//!   client with [`ServeConfig::max_in_flight_per_client`] requests
//!   already unanswered is rejected with [`ServeError::QuotaExceeded`]
//!   while other clients keep their full share of the queue.
//! * **Model republish** — a [`ReloadWatcher`] polls the registry and
//!   atomically swaps the loaded artifact *between* batches: in-flight
//!   requests finish on the model they were admitted under, the next
//!   batch runs on the new one, and a corrupt or truncated republished
//!   artifact keeps the old model serving (surfaced as a typed
//!   [`ReloadError`] and counted in [`ServiceStats`]).
//! * **Batcher panics** — a supervisor thread wraps the batcher loop
//!   in `catch_unwind` with bounded exponential-backoff restarts. Only
//!   the in-flight batch fails (each of its tickets resolves to
//!   [`ServeError::BatcherPanic`] — the reply is sent from the request
//!   guard's `Drop` while the panic unwinds); queued requests survive
//!   the restart and the next batch serves normally.
//!
//! Shutdown is never silent: requests accepted before
//! [`PredictionService::shutdown`] are answered in full, and anything
//! still queued after the shutdown marker resolves to a typed
//! [`ServeError::ShuttingDown`] — every ticket issued by the service
//! resolves, always.
//!
//! Determinism: predictions go through the same block kernel as the
//! offline path, so served scores are bit-identical to
//! `FlatForest::predict_batch` at any worker count and any request
//! interleaving — batching, degradation, and reload change latency and
//! explanation availability, never prediction values.

use msaw_gbdt::{FlatForest, ModelArtifact, PredictError};
use msaw_shap::{Explanation, PathArena, TreeExplainer};
use msaw_tabular::Matrix;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod reload;

pub use reload::{ReloadError, ReloadWatcher};

/// Tuning knobs for a [`PredictionService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads for the prediction pool (0 = the pool default).
    pub workers: usize,
    /// Coalescing ceiling: the batcher stops draining the queue once
    /// this many rows are pending. One flat-forest block is 256 rows,
    /// so multiples of 256 keep the kernel's lanes full.
    pub max_batch_rows: usize,
    /// Admission ceiling: how many requests may wait in the queue
    /// before [`ServiceHandle::submit`] starts rejecting with
    /// [`ServeError::Overloaded`]. Bounding the queue keeps a stalled
    /// batcher from letting submissions grow memory without limit;
    /// clamped to at least 1 at spawn.
    pub max_queued_requests: usize,
    /// Per-client fairness cap: how many requests one [`ClientId`] may
    /// have in flight (submitted, not yet answered) before its submits
    /// are rejected with [`ServeError::QuotaExceeded`]. A single greedy
    /// client saturating the queue starves everyone; this cap keeps the
    /// shared queue shared. Clamped to at least 1 at spawn; use
    /// `usize::MAX` to disable.
    pub max_in_flight_per_client: usize,
    /// Degradation watermark: once this many requests are still queued
    /// *after* a batch has been assembled, the batch is served without
    /// optional per-row SHAP (outputs flagged
    /// [`degraded`](PredictionOutput::degraded)). Shedding the
    /// explanation work — easily 10× the prediction cost — keeps
    /// predictions flowing under load that would otherwise escalate to
    /// whole-request shedding. `usize::MAX` disables the tier.
    pub degrade_queue_depth: usize,
    /// Supervisor budget: how many times the batcher loop may be
    /// restarted after a panic before the service gives up and drains
    /// the queue with [`ServeError::ShuttingDown`].
    pub max_batcher_restarts: usize,
    /// Base delay of the supervisor's exponential backoff: restart `k`
    /// waits `restart_backoff << min(k, 6)` before the batcher runs
    /// again, so a deterministically-crashing model cannot spin the
    /// supervisor hot.
    pub restart_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            max_batch_rows: 4096,
            max_queued_requests: 1024,
            max_in_flight_per_client: 64,
            degrade_queue_depth: 512,
            max_batcher_restarts: 8,
            restart_backoff: Duration::from_millis(10),
        }
    }
}

impl ServeConfig {
    /// The config actually enforced: zero-valued knobs that would wedge
    /// the service are clamped to their minimum useful value.
    fn normalised(mut self) -> Self {
        self.max_batch_rows = self.max_batch_rows.max(1);
        self.max_queued_requests = self.max_queued_requests.max(1);
        self.max_in_flight_per_client = self.max_in_flight_per_client.max(1);
        self
    }
}

/// Identifies the submitting client for per-client quota accounting.
///
/// Any scheme works — one id per connection, per tenant, per thread —
/// as long as callers that should be throttled *together* share an id.
/// [`RequestOptions::default`] uses `ClientId(0)`, so untagged callers
/// share one anonymous budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClientId(pub u64);

/// Per-request options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Attach an exact TreeSHAP [`Explanation`] to every row of the
    /// response (slower; runs over the booster trees, not the flat
    /// forest). Under queue pressure the service may shed this work —
    /// see [`ServeConfig::degrade_queue_depth`].
    pub explain: bool,
    /// Server-side freshness bound, relative to submission: a request
    /// still queued when its deadline passes is shed at dequeue with
    /// [`ServeError::DeadlineExceeded`] instead of being predicted for
    /// a caller who has moved on. `None` means wait forever.
    pub deadline: Option<Duration>,
    /// Who is asking — the unit of quota accounting.
    pub client: ClientId,
}

/// Failures a serving client can observe.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submitted rows have the wrong width for the model.
    FeatureCount { expected: usize, actual: usize },
    /// The submitted batch was empty.
    EmptyRequest,
    /// Inference failed (a contained panic in the worker pool).
    Predict(PredictError),
    /// The admission queue is full; the request was rejected without
    /// being enqueued. Retry after draining, or raise
    /// [`ServeConfig::max_queued_requests`].
    Overloaded,
    /// The submitting [`ClientId`] already has
    /// [`ServeConfig::max_in_flight_per_client`] requests in flight;
    /// this one was rejected so other clients keep their share.
    QuotaExceeded {
        /// The configured per-client in-flight cap.
        limit: usize,
    },
    /// The request's [`deadline`](RequestOptions::deadline) passed
    /// while it was still queued; it was shed without being predicted.
    DeadlineExceeded,
    /// [`Ticket::wait_timeout`] elapsed before the service answered.
    /// The request may still complete server-side; its answer is
    /// discarded.
    WaitTimeout,
    /// The batcher panicked while this request was in its in-flight
    /// batch. Only that batch failed; the service restarts and later
    /// requests are served normally.
    BatcherPanic,
    /// The service is shutting down; the request was answered without
    /// being predicted.
    ShuttingDown,
    /// The service shut down before answering.
    Closed,
    /// The batcher thread could not be started.
    Spawn {
        /// The OS error from [`std::thread::Builder::spawn`].
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::FeatureCount { expected, actual } => {
                write!(f, "model expects {expected} features, request rows have {actual}")
            }
            ServeError::EmptyRequest => write!(f, "request contains no rows"),
            ServeError::Predict(e) => write!(f, "inference failed: {e}"),
            ServeError::Overloaded => write!(f, "prediction queue is full, request rejected"),
            ServeError::QuotaExceeded { limit } => {
                write!(f, "client already has {limit} requests in flight, request rejected")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired while queued, request shed")
            }
            ServeError::WaitTimeout => {
                write!(f, "timed out waiting for the service to answer")
            }
            ServeError::BatcherPanic => {
                write!(f, "batcher panicked while this request was in flight")
            }
            ServeError::ShuttingDown => {
                write!(f, "prediction service is shutting down, request not predicted")
            }
            ServeError::Closed => write!(f, "prediction service is shut down"),
            ServeError::Spawn { message } => {
                write!(f, "could not start batcher thread: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// One request's answer: a prediction per submitted row, in submission
/// order, plus per-row explanations when asked for.
#[derive(Debug, Clone)]
pub struct PredictionOutput {
    /// Objective-transformed predictions (probabilities for logistic
    /// models), one per row.
    pub predictions: Vec<f64>,
    /// Exact TreeSHAP attributions per row, present iff the request
    /// set [`RequestOptions::explain`] *and* the service was not
    /// degrading when the batch ran.
    pub explanations: Option<Vec<Explanation>>,
    /// `true` when requested explanations were shed because the queue
    /// was past [`ServeConfig::degrade_queue_depth`] — the predictions
    /// themselves are exact and bit-identical to the undegraded path.
    pub degraded: bool,
}

/// A point-in-time operational snapshot of a [`PredictionService`].
///
/// Counters are cumulative since spawn; `queue_depth` is the current
/// admission-queue backlog. Obtain with [`PredictionService::stats`] or
/// [`ServiceHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests currently queued, awaiting the batcher.
    pub queue_depth: usize,
    /// Requests answered with predictions.
    pub answered: u64,
    /// Requests rejected at submit because the queue was full.
    pub shed_overloaded: u64,
    /// Requests rejected at submit by the per-client in-flight cap.
    pub shed_quota: u64,
    /// Requests shed at dequeue because their deadline had passed.
    pub shed_deadline: u64,
    /// Requests answered [`ServeError::ShuttingDown`] during drain.
    pub shed_shutdown: u64,
    /// Responses whose requested explanations were shed under queue
    /// pressure (the degradation tier).
    pub degraded: u64,
    /// Successful artifact swaps (watcher-driven or manual
    /// [`PredictionService::install`]).
    pub reloads: u64,
    /// Failed reload attempts (corrupt artifact, feature mismatch,
    /// registry I/O); the previous model kept serving through each.
    pub reload_failures: u64,
    /// Times the supervisor restarted the batcher after a panic.
    pub batcher_restarts: u64,
}

impl ServiceStats {
    /// Requests shed for any reason (overload, quota, deadline,
    /// shutdown) — the "work refused" headline next to `answered`.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded + self.shed_quota + self.shed_deadline + self.shed_shutdown
    }
}

/// Lock a mutex, ignoring poisoning: every critical section below is a
/// handful of pointer/counter operations that cannot leave the guarded
/// state inconsistent, and the service must keep operating after a
/// panicked batcher iteration (that is the supervisor's whole job).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Cumulative event counters backing [`ServiceStats`].
#[derive(Debug, Default)]
struct Counters {
    answered: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_quota: AtomicU64,
    shed_deadline: AtomicU64,
    shed_shutdown: AtomicU64,
    degraded: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    batcher_restarts: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by every handle, the batcher, its supervisor, and any
/// reload watcher.
#[derive(Debug)]
pub(crate) struct Shared {
    /// The artifact batches predict through. Swapped atomically (under
    /// the mutex) by [`Shared::install`]; the batcher clones the `Arc`
    /// once per batch, so a swap never affects a batch already running.
    model: Mutex<Arc<ModelArtifact>>,
    /// Feature width the service was spawned with; every installed
    /// artifact must match (handles validated against it at submit).
    n_features: usize,
    /// The enforced (normalised) configuration.
    config: ServeConfig,
    /// Requests currently sitting in the admission queue.
    queue_depth: AtomicUsize,
    /// Dequeue cycles the batcher has started — the failpoint job
    /// index for `serve::batch`/`serve::predict` sites, and a monotonic
    /// progress marker across supervisor restarts.
    batch_seq: AtomicU64,
    /// Set once shutdown begins (or the restart budget is exhausted):
    /// submits are rejected at the door and drained requests resolve to
    /// [`ServeError::ShuttingDown`].
    shutting_down: AtomicBool,
    /// In-flight request count per [`ClientId`].
    in_flight: Mutex<HashMap<u64, usize>>,
    counters: Counters,
}

impl Shared {
    fn new(artifact: ModelArtifact, config: ServeConfig) -> Self {
        Shared {
            n_features: artifact.forest.n_features(),
            model: Mutex::new(Arc::new(artifact)),
            config,
            queue_depth: AtomicUsize::new(0),
            batch_seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            in_flight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// Current model for the next batch.
    fn current_model(&self) -> Arc<ModelArtifact> {
        lock_unpoisoned(&self.model).clone()
    }

    /// Swap in a freshly loaded artifact; in-flight batches finish on
    /// the model they started with. A width mismatch is rejected —
    /// handles have already validated requests against the spawn-time
    /// width, so installing a differently-shaped model would turn
    /// admitted requests into prediction errors.
    pub(crate) fn install(&self, artifact: ModelArtifact) -> Result<(), ReloadError> {
        let actual = artifact.forest.n_features();
        if actual != self.n_features {
            Counters::bump(&self.counters.reload_failures);
            return Err(ReloadError::FeatureMismatch { expected: self.n_features, actual });
        }
        *lock_unpoisoned(&self.model) = Arc::new(artifact);
        Counters::bump(&self.counters.reloads);
        Ok(())
    }

    /// Record a reload attempt that failed before an artifact could be
    /// installed (corrupt file, registry I/O).
    pub(crate) fn note_reload_failure(&self) {
        Counters::bump(&self.counters.reload_failures);
    }

    fn snapshot(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            answered: c.answered.load(Ordering::Relaxed),
            shed_overloaded: c.shed_overloaded.load(Ordering::Relaxed),
            shed_quota: c.shed_quota.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            shed_shutdown: c.shed_shutdown.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            reloads: c.reloads.load(Ordering::Relaxed),
            reload_failures: c.reload_failures.load(Ordering::Relaxed),
            batcher_restarts: c.batcher_restarts.load(Ordering::Relaxed),
        }
    }

    /// Try to reserve one in-flight slot for `client`.
    fn acquire_quota(&self, client: ClientId) -> Result<(), ServeError> {
        let limit = self.config.max_in_flight_per_client;
        let mut in_flight = lock_unpoisoned(&self.in_flight);
        let count = in_flight.entry(client.0).or_insert(0);
        if *count >= limit {
            drop(in_flight);
            Counters::bump(&self.counters.shed_quota);
            return Err(ServeError::QuotaExceeded { limit });
        }
        *count += 1;
        Ok(())
    }

    /// Release `client`'s in-flight slot (called exactly once per
    /// admitted request, from the responder's drop).
    fn release_quota(&self, client: ClientId) {
        let mut in_flight = lock_unpoisoned(&self.in_flight);
        if let Some(count) = in_flight.get_mut(&client.0) {
            *count -= 1;
            if *count == 0 {
                in_flight.remove(&client.0);
            }
        }
    }

    /// Attribute a delivered outcome to its stats counter.
    fn count_outcome(&self, result: &Result<PredictionOutput, ServeError>) {
        let c = &self.counters;
        match result {
            Ok(out) => {
                Counters::bump(&c.answered);
                if out.degraded {
                    Counters::bump(&c.degraded);
                }
            }
            Err(ServeError::DeadlineExceeded) => Counters::bump(&c.shed_deadline),
            Err(ServeError::ShuttingDown) => Counters::bump(&c.shed_shutdown),
            Err(_) => {}
        }
    }
}

/// The delivery guard for one admitted request: owns the reply channel
/// and the client's quota slot.
///
/// The invariant that makes shutdown and panics non-silent lives here:
/// however an admitted request's life ends — answered, shed, dropped
/// mid-batch by an unwinding panic, or still queued when the receiver
/// is torn down — this guard's `Drop` runs, releases the quota slot,
/// and (if no reply was sent yet) resolves the ticket with a typed
/// error instead of letting it dangle.
struct Responder {
    reply: Option<mpsc::Sender<Result<PredictionOutput, ServeError>>>,
    /// The quota slot held on the client's behalf; `Some` until
    /// released exactly once.
    slot: Option<ClientId>,
    shared: Arc<Shared>,
}

impl Responder {
    fn send(mut self, result: Result<PredictionOutput, ServeError>) {
        self.shared.count_outcome(&result);
        // Release the quota slot *before* delivering the reply: a
        // caller that alternates wait-then-submit strictly must never
        // see QuotaExceeded for a request it has already been answered
        // for.
        if let Some(client) = self.slot.take() {
            self.shared.release_quota(client);
        }
        if let Some(tx) = self.reply.take() {
            let _ = tx.send(result);
        }
    }

    /// Disarm the guard without answering — only for requests that were
    /// never admitted (their rejection is returned to the caller
    /// directly, so no ticket exists to resolve).
    fn defuse(&mut self) {
        self.reply = None;
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some(tx) = self.reply.take() {
            // Reached only when the request was dropped instead of
            // answered: the batcher panicked with it in flight, or the
            // service tore down the queue. Resolve the ticket typed.
            let error = if self.shared.shutting_down.load(Ordering::SeqCst) {
                ServeError::ShuttingDown
            } else {
                ServeError::BatcherPanic
            };
            self.shared.count_outcome(&Err(error.clone()));
            if let Some(client) = self.slot.take() {
                self.shared.release_quota(client);
            }
            let _ = tx.send(Err(error));
        } else if let Some(client) = self.slot.take() {
            self.shared.release_quota(client);
        }
    }
}

/// A queued request travelling to the batcher thread.
struct Request {
    /// Row-major feature values, `nrows × n_features`.
    values: Vec<f64>,
    nrows: usize,
    explain: bool,
    /// Absolute shed point, resolved from the relative
    /// [`RequestOptions::deadline`] at submit.
    deadline: Option<Instant>,
    responder: Responder,
}

/// What travels over the service queue. `Shutdown` is enqueued by
/// [`PredictionService::shutdown`]; FIFO order means every request
/// accepted before it is still answered, and everything after it is
/// drained with [`ServeError::ShuttingDown`].
enum Message {
    Predict(Request),
    Shutdown,
}

/// A pending response. Obtain with [`ServiceHandle::submit`], redeem
/// with [`Ticket::wait`] or [`Ticket::wait_timeout`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<PredictionOutput, ServeError>>,
}

impl Ticket {
    /// Block until the service answers.
    pub fn wait(self) -> Result<PredictionOutput, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Block until the service answers or `timeout` elapses — the
    /// caller-side bound that guarantees no client ever hangs on a
    /// wedged service. On [`ServeError::WaitTimeout`] the ticket is
    /// consumed; a late answer is computed and discarded server-side.
    pub fn wait_timeout(self, timeout: Duration) -> Result<PredictionOutput, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }
}

/// A cloneable client endpoint; every clone feeds the same batcher.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: mpsc::SyncSender<Message>,
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Feature width the model expects.
    pub fn n_features(&self) -> usize {
        self.shared.n_features
    }

    /// A point-in-time operational snapshot (queue depth, sheds by
    /// reason, reloads, restarts).
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }

    /// Enqueue `rows` for prediction. Validates the width up front and
    /// returns immediately; the returned [`Ticket`] resolves once the
    /// batcher has run the rows through the model.
    ///
    /// Admission is non-blocking and layered — each rejection is typed
    /// so callers can react differently:
    ///
    /// 1. [`ServeError::ShuttingDown`] once shutdown has begun;
    /// 2. [`ServeError::QuotaExceeded`] when this [`ClientId`] already
    ///    has its configured share of requests in flight;
    /// 3. [`ServeError::Overloaded`] when the shared queue is full —
    ///    load-shedding happens at the door, not after memory has
    ///    grown.
    pub fn submit(&self, rows: &Matrix, options: RequestOptions) -> Result<Ticket, ServeError> {
        if rows.ncols() != self.shared.n_features {
            return Err(ServeError::FeatureCount {
                expected: self.shared.n_features,
                actual: rows.ncols(),
            });
        }
        if rows.nrows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            Counters::bump(&self.shared.counters.shed_shutdown);
            return Err(ServeError::ShuttingDown);
        }
        self.shared.acquire_quota(options.client)?;
        let (reply, rx) = mpsc::channel();
        let responder = Responder {
            reply: Some(reply),
            slot: Some(options.client),
            shared: self.shared.clone(),
        };
        let request = Request {
            values: rows.as_slice().to_vec(),
            nrows: rows.nrows(),
            explain: options.explain,
            deadline: options.deadline.map(|d| Instant::now() + d),
            responder,
        };
        self.shared.queue_depth.fetch_add(1, Ordering::SeqCst);
        match self.tx.try_send(Message::Predict(request)) {
            Ok(()) => Ok(Ticket { rx }),
            Err(e) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let (rejection, message) = match e {
                    mpsc::TrySendError::Full(m) => {
                        Counters::bump(&self.shared.counters.shed_overloaded);
                        (ServeError::Overloaded, m)
                    }
                    mpsc::TrySendError::Disconnected(m) => (ServeError::Closed, m),
                };
                if let Message::Predict(mut request) = message {
                    // The rejection goes back to the caller directly;
                    // the guard must not also answer the dead ticket.
                    request.responder.defuse();
                }
                Err(rejection)
            }
        }
    }

    /// Convenience: submit one row and wait for its prediction.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, ServeError> {
        let matrix = Matrix::from_rows(std::slice::from_ref(&row.to_vec()));
        let out = self.submit(&matrix, RequestOptions::default())?.wait()?;
        Ok(out.predictions[0])
    }
}

/// The serving process: a loaded model plus its supervised batcher
/// thread.
///
/// Dropping the service (or calling [`shutdown`](Self::shutdown))
/// closes the queue; requests already accepted are answered first, and
/// anything admitted after the shutdown marker resolves to
/// [`ServeError::ShuttingDown`].
#[derive(Debug)]
pub struct PredictionService {
    handle: ServiceHandle,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl PredictionService {
    /// Start serving `artifact` with the given configuration.
    ///
    /// The admission queue is bounded at
    /// [`ServeConfig::max_queued_requests`] (clamped to at least 1). A
    /// batcher thread that cannot be started — resource exhaustion at
    /// the OS level — surfaces as [`ServeError::Spawn`] instead of a
    /// panic, so an embedding server can degrade gracefully.
    pub fn spawn(
        artifact: ModelArtifact,
        config: ServeConfig,
    ) -> Result<PredictionService, ServeError> {
        let config = config.normalised();
        let shared = Arc::new(Shared::new(artifact, config));
        let (tx, rx) = mpsc::sync_channel::<Message>(config.max_queued_requests);
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("msaw-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, rx))
                .map_err(|e| ServeError::Spawn { message: e.to_string() })?
        };
        Ok(PredictionService {
            handle: ServiceHandle { tx, shared: shared.clone() },
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// A point-in-time operational snapshot (queue depth, sheds by
    /// reason, reloads, restarts).
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }

    /// Atomically swap in a freshly loaded artifact. In-flight batches
    /// finish on the model they started with; the next batch predicts
    /// through the new one. The artifact must have the same feature
    /// width the service was spawned with.
    pub fn install(&self, artifact: ModelArtifact) -> Result<(), ReloadError> {
        self.shared.install(artifact)
    }

    /// Start a [`ReloadWatcher`] that polls `registry` every `poll`
    /// interval for a new generation in `group` (see
    /// `ModelKey::group_name`) and installs it on change. Corrupt or
    /// vanished artifacts never interrupt serving — see the watcher
    /// docs for the full policy.
    pub fn watch_registry(
        &self,
        registry: msaw_core::ModelRegistry,
        group: impl Into<String>,
        poll: Duration,
    ) -> Result<ReloadWatcher, ServeError> {
        ReloadWatcher::spawn(self.shared.clone(), registry, group.into(), poll)
    }

    /// Begin a graceful shutdown without waiting for it to finish: new
    /// submits are rejected with [`ServeError::ShuttingDown`] from this
    /// call on, while everything already queued ahead of the marker is
    /// still answered. Call [`shutdown`](Self::shutdown) (or drop the
    /// service) to join the batcher.
    pub fn begin_shutdown(&self) {
        if !self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            // Blocking send: on a full queue the batcher is mid-drain
            // and a slot frees up; if the batcher is already gone the
            // send fails, which is equally final.
            let _ = self.handle.tx.send(Message::Shutdown);
        }
    }

    /// Stop accepting requests, answer everything already queued, and
    /// join the batcher thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(thread) = self.supervisor.take() {
            self.begin_shutdown();
            let _ = thread.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The batcher's keeper: runs [`batcher_loop`] under `catch_unwind`,
/// restarting it with bounded exponential backoff after a panic. The
/// admission queue lives outside the protected region, so queued
/// requests survive a restart — only the batch that was in flight
/// resolves to [`ServeError::BatcherPanic`] (sent by each request's
/// responder as the panic unwinds). When the loop exits normally or
/// the restart budget runs out, whatever is still queued is drained
/// with a typed [`ServeError::ShuttingDown`] — no ticket is ever left
/// to dangle.
fn supervisor_loop(shared: &Arc<Shared>, rx: mpsc::Receiver<Message>) {
    let config = shared.config;
    let mut restarts = 0usize;
    loop {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher_loop(shared, &rx);
        }));
        match run {
            Ok(()) => break,
            Err(_panic) => {
                if restarts >= config.max_batcher_restarts {
                    break;
                }
                Counters::bump(&shared.counters.batcher_restarts);
                let exponent = restarts.min(6) as u32;
                std::thread::sleep(config.restart_backoff.saturating_mul(1 << exponent));
                restarts += 1;
            }
        }
    }
    // From here on the service is over, whichever exit was taken:
    // answer every still-queued request typed instead of letting the
    // receiver's teardown void the tickets silently.
    shared.shutting_down.store(true, Ordering::SeqCst);
    while let Ok(message) = rx.try_recv() {
        if let Message::Predict(request) = message {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            request.responder.send(Err(ServeError::ShuttingDown));
        }
    }
}

/// The batcher: block on the first request, drain whatever else is
/// queued up to the row ceiling (shedding expired deadlines at
/// dequeue), predict once on the current model, split the answers.
fn batcher_loop(shared: &Arc<Shared>, rx: &mpsc::Receiver<Message>) {
    let config = shared.config;
    let mut arena = PathArena::new();
    while let Ok(first) = rx.recv() {
        let first = match first {
            Message::Predict(request) => request,
            Message::Shutdown => return,
        };
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        #[cfg_attr(not(feature = "failpoint"), allow(unused_variables))]
        let seq = shared.batch_seq.fetch_add(1, Ordering::SeqCst);
        // Fault-injection seam before coalescing: a panic here has
        // exactly one request in flight; a stall here piles queue
        // pressure deterministically. Disarmed sites are free.
        #[cfg(feature = "failpoint")]
        msaw_parallel::failpoint::hit("serve::batch", seq as usize);
        let mut batch: Vec<Request> = Vec::new();
        let mut total_rows = 0usize;
        admit(shared, first, &mut batch, &mut total_rows);
        let mut stop = false;
        while total_rows < config.max_batch_rows {
            match rx.try_recv() {
                Ok(Message::Predict(request)) => {
                    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    admit(shared, request, &mut batch, &mut total_rows);
                }
                Ok(Message::Shutdown) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            // Backlog still waiting after this batch filled up: the
            // degradation signal. Past the watermark, optional SHAP is
            // shed (outputs flagged) before any whole request is.
            let pressure = shared.queue_depth.load(Ordering::SeqCst);
            let degrade = pressure >= config.degrade_queue_depth;
            // Fault-injection seam after coalescing: a panic here takes
            // down a whole assembled batch — every one of its tickets
            // must still resolve typed.
            #[cfg(feature = "failpoint")]
            msaw_parallel::failpoint::hit("serve::predict", seq as usize);
            let model = shared.current_model();
            run_batch(&model, config, &mut arena, batch, total_rows, degrade);
        }
        if stop {
            return;
        }
    }
}

/// Deadline gate at dequeue: an expired request is shed typed instead
/// of occupying batch capacity nobody is waiting on.
fn admit(shared: &Arc<Shared>, request: Request, batch: &mut Vec<Request>, total_rows: &mut usize) {
    let _ = shared;
    if request.deadline.is_some_and(|d| d <= Instant::now()) {
        request.responder.send(Err(ServeError::DeadlineExceeded));
        return;
    }
    *total_rows += request.nrows;
    batch.push(request);
}

/// Predict one coalesced batch and deliver each request's slice.
fn run_batch(
    model: &ModelArtifact,
    config: ServeConfig,
    arena: &mut PathArena,
    batch: Vec<Request>,
    total_rows: usize,
    degrade: bool,
) {
    let forest: &FlatForest = &model.forest;
    let n_features = forest.n_features();
    let mut values = Vec::with_capacity(total_rows * n_features);
    for request in &batch {
        values.extend_from_slice(&request.values);
    }
    let matrix = Matrix::from_vec(values, total_rows, n_features);
    let workers = if config.workers == 0 {
        msaw_parallel::default_workers(total_rows.div_ceil(256))
    } else {
        config.workers
    };
    let predictions = match forest.try_predict_batch_on(workers, &matrix) {
        Ok(p) => p,
        Err(e) => {
            // A contained panic poisons only this coalesced batch;
            // every caller in it learns which block failed, and the
            // service keeps running for the next batch.
            for request in batch {
                request.responder.send(Err(ServeError::Predict(e.clone())));
            }
            return;
        }
    };
    // The explainer is rebuilt per explaining batch because the model
    // can change between batches (hot reload); construction is one
    // cover-weighted pass over the trees, trivial next to TreeSHAP
    // itself.
    let explainer =
        (!degrade && batch.iter().any(|r| r.explain)).then(|| TreeExplainer::new(&model.booster));
    let mut offset = 0;
    for request in batch {
        let slice = &predictions[offset..offset + request.nrows];
        offset += request.nrows;
        let degraded = request.explain && degrade;
        let explanations = (request.explain && !degrade).then(|| {
            let explainer = explainer.as_ref().expect("explainer built for explaining batch");
            (0..request.nrows)
                .map(|i| {
                    let row = &request.values[i * n_features..(i + 1) * n_features];
                    explainer.shap_values_row_with(row, arena)
                })
                .collect()
        });
        request.responder.send(Ok(PredictionOutput {
            predictions: slice.to_vec(),
            explanations,
            degraded,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::{Booster, Params};

    fn artifact() -> ModelArtifact {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64, if i % 9 == 0 { f64::NAN } else { (i % 6) as f64 }])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| r[0] - if r[1].is_nan() { 3.0 } else { r[1].clamp(0.0, 3.0) })
            .collect();
        let params = Params { n_estimators: 8, ..Params::regression() };
        let model = Booster::train(&params, &Matrix::from_rows(&rows), &labels).unwrap();
        ModelArtifact::from_booster(model, None)
    }

    fn query_rows(n: usize) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|i| vec![(i % 13) as f64, if i % 5 == 0 { f64::NAN } else { i as f64 }])
                .collect::<Vec<_>>(),
        )
    }

    /// A handle over a raw queue with no batcher draining it — the
    /// fixture for deterministic admission-path tests (overload,
    /// quota, shutdown drain).
    fn direct_handle(
        queue: usize,
        config: ServeConfig,
    ) -> (ServiceHandle, mpsc::Receiver<Message>, Arc<Shared>) {
        let shared = Arc::new(Shared::new(artifact(), config.normalised()));
        let (tx, rx) = mpsc::sync_channel::<Message>(queue);
        (ServiceHandle { tx, shared: shared.clone() }, rx, shared)
    }

    #[test]
    fn served_predictions_match_the_offline_batch_path() {
        let a = artifact();
        let expected = a.forest.predict_batch(&query_rows(700));
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let out = service
            .handle()
            .submit(&query_rows(700), RequestOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.predictions.len(), 700);
        assert!(!out.degraded);
        for (got, want) in out.predictions.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let stats = service.stats();
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.shed_total(), 0);
        service.shutdown();
    }

    #[test]
    fn concurrent_clients_each_get_their_own_rows_back() {
        let a = artifact();
        let forest = a.forest.clone();
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let mut clients = Vec::new();
        for c in 0..8usize {
            let handle = service.handle();
            clients.push(std::thread::spawn(move || {
                let rows = query_rows(40 + c * 7);
                let options =
                    RequestOptions { client: ClientId(c as u64), ..RequestOptions::default() };
                let out = handle.submit(&rows, options).unwrap().wait().unwrap();
                (rows, out)
            }));
        }
        for client in clients {
            let (rows, out) = client.join().unwrap();
            let expected = forest.predict_batch(&rows);
            assert_eq!(out.predictions.len(), rows.nrows());
            for (got, want) in out.predictions.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        assert_eq!(service.stats().answered, 8);
        service.shutdown();
    }

    #[test]
    fn explanations_reconstruct_the_raw_prediction() {
        let a = artifact();
        let forest = a.forest.clone();
        let service = PredictionService::spawn(a, ServeConfig::default()).unwrap();
        let rows = query_rows(5);
        let out = service
            .handle()
            .submit(&rows, RequestOptions { explain: true, ..RequestOptions::default() })
            .unwrap()
            .wait()
            .unwrap();
        assert!(!out.degraded);
        let explanations = out.explanations.expect("asked for explanations");
        assert_eq!(explanations.len(), 5);
        for (i, e) in explanations.iter().enumerate() {
            let raw = forest.predict_raw_row(rows.row(i));
            let reconstructed = e.base_value + e.values.iter().sum::<f64>();
            assert!((reconstructed - raw).abs() < 1e-9);
        }
        service.shutdown();
    }

    #[test]
    fn wrong_width_and_empty_requests_are_rejected_at_submit() {
        let service = PredictionService::spawn(artifact(), ServeConfig::default()).unwrap();
        let handle = service.handle();
        let wide = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(
            handle.submit(&wide, RequestOptions::default()).unwrap_err(),
            ServeError::FeatureCount { expected: 2, actual: 3 }
        );
        let empty = Matrix::zeros(0, 2);
        assert_eq!(
            handle.submit(&empty, RequestOptions::default()).unwrap_err(),
            ServeError::EmptyRequest
        );
        service.shutdown();
    }

    #[test]
    fn handles_outliving_the_service_observe_shutdown() {
        let service = PredictionService::spawn(artifact(), ServeConfig::default()).unwrap();
        let handle = service.handle();
        service.shutdown();
        let rows = query_rows(1);
        match handle.submit(&rows, RequestOptions::default()) {
            Err(ServeError::ShuttingDown) | Err(ServeError::Closed) => {}
            Ok(ticket) => {
                let err = ticket.wait().unwrap_err();
                assert!(matches!(err, ServeError::ShuttingDown | ServeError::Closed));
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tiny_batch_ceiling_still_answers_everyone() {
        // Force many small coalesced batches to exercise the split path.
        let a = artifact();
        let forest = a.forest.clone();
        let config = ServeConfig { workers: 2, max_batch_rows: 8, ..ServeConfig::default() };
        let service = PredictionService::spawn(a, config).unwrap();
        let handle = service.handle();
        let rows = query_rows(30);
        let tickets: Vec<Ticket> =
            (0..6).map(|_| handle.submit(&rows, RequestOptions::default()).unwrap()).collect();
        let expected = forest.predict_batch(&rows);
        for ticket in tickets {
            let out = ticket.wait().unwrap();
            for (got, want) in out.predictions.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        service.shutdown();
    }

    #[test]
    fn full_admission_queue_rejects_with_overloaded() {
        // Drive the admission path directly: a handle over a held
        // 2-slot queue with no batcher draining it. The first two
        // submissions are admitted, the third is shed at the door.
        let (handle, rx, shared) = direct_handle(2, ServeConfig::default());
        let rows = query_rows(1);
        let t1 = handle.submit(&rows, RequestOptions::default());
        let t2 = handle.submit(&rows, RequestOptions::default());
        assert!(t1.is_ok() && t2.is_ok(), "submissions within capacity are admitted");
        assert_eq!(
            handle.submit(&rows, RequestOptions::default()).unwrap_err(),
            ServeError::Overloaded
        );
        assert_eq!(shared.snapshot().shed_overloaded, 1);
        assert_eq!(shared.snapshot().queue_depth, 2);
        // Draining one slot re-opens admission.
        assert!(matches!(rx.try_recv(), Ok(Message::Predict(_))));
        assert!(handle.submit(&rows, RequestOptions::default()).is_ok());
    }

    #[test]
    fn per_client_quota_rejects_the_greedy_client_only() {
        // Deterministic fixture: nothing drains the queue, so in-flight
        // counts are exactly what was submitted.
        let config = ServeConfig { max_in_flight_per_client: 2, ..ServeConfig::default() };
        let (handle, rx, shared) = direct_handle(64, config);
        let rows = query_rows(1);
        let greedy = RequestOptions { client: ClientId(7), ..RequestOptions::default() };
        let polite = RequestOptions { client: ClientId(8), ..RequestOptions::default() };
        let _g1 = handle.submit(&rows, greedy).unwrap();
        let _g2 = handle.submit(&rows, greedy).unwrap();
        assert_eq!(
            handle.submit(&rows, greedy).unwrap_err(),
            ServeError::QuotaExceeded { limit: 2 },
            "the greedy client's third in-flight request is rejected"
        );
        // The polite client is untouched by the greedy client's cap.
        let _p1 = handle.submit(&rows, polite).unwrap();
        assert_eq!(shared.snapshot().shed_quota, 1);

        // Answering (here: dropping) one greedy request frees its slot.
        match rx.try_recv() {
            Ok(Message::Predict(request)) => request.responder.send(Err(ServeError::Closed)),
            other => panic!("expected a queued request, got recv result {:?}", other.is_ok()),
        }
        assert!(handle.submit(&rows, greedy).is_ok());
    }

    #[test]
    fn shutdown_marker_drains_later_requests_with_typed_error() {
        // Regression: requests enqueued after the shutdown marker used
        // to vanish when the receiver was torn down — their tickets
        // resolved to an untyped Closed at best. The supervisor must
        // drain them with ShuttingDown.
        let (handle, rx, shared) = direct_handle(8, ServeConfig::default());
        let rows = query_rows(3);
        let before = handle.submit(&rows, RequestOptions::default()).unwrap();
        handle.tx.send(Message::Shutdown).unwrap();
        let after = handle.submit(&rows, RequestOptions::default()).unwrap();
        supervisor_loop(&shared, rx);
        let out = before.wait().expect("request ahead of the marker is answered");
        assert_eq!(out.predictions.len(), 3);
        assert_eq!(after.wait().unwrap_err(), ServeError::ShuttingDown);
        let stats = shared.snapshot();
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.shed_shutdown, 1);
        assert_eq!(stats.queue_depth, 0);
        // Quota slots were released by both paths.
        assert!(lock_unpoisoned(&shared.in_flight).is_empty());
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue() {
        let (handle, rx, shared) = direct_handle(8, ServeConfig::default());
        let rows = query_rows(2);
        let expired = handle
            .submit(
                &rows,
                RequestOptions { deadline: Some(Duration::ZERO), ..RequestOptions::default() },
            )
            .unwrap();
        let fresh = handle
            .submit(
                &rows,
                RequestOptions {
                    deadline: Some(Duration::from_secs(3600)),
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        handle.tx.send(Message::Shutdown).unwrap();
        supervisor_loop(&shared, rx);
        assert_eq!(expired.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(fresh.wait().unwrap().predictions.len(), 2);
        let stats = shared.snapshot();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.answered, 1);
    }

    #[test]
    fn degradation_watermark_sheds_shap_but_not_predictions() {
        // degrade_queue_depth = 0 degrades every batch: the pure-logic
        // path for the tier (the pressure-driven path is exercised
        // end-to-end in tests/serve_robustness.rs).
        let a = artifact();
        let forest = a.forest.clone();
        let config = ServeConfig { degrade_queue_depth: 0, ..ServeConfig::default() };
        let service = PredictionService::spawn(a, config).unwrap();
        let rows = query_rows(6);
        let out = service
            .handle()
            .submit(&rows, RequestOptions { explain: true, ..RequestOptions::default() })
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.degraded, "explain request under degradation is flagged");
        assert!(out.explanations.is_none(), "SHAP was shed");
        let expected = forest.predict_batch(&rows);
        for (got, want) in out.predictions.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits(), "degraded predictions stay bit-identical");
        }
        // A request that never asked for SHAP is not "degraded".
        let plain =
            service.handle().submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
        assert!(!plain.degraded);
        assert_eq!(service.stats().degraded, 1);
        service.shutdown();
    }

    #[test]
    fn wait_timeout_bounds_a_wedged_wait() {
        // No batcher drains the direct queue, so the wait can only end
        // by timeout — previously the caller would hang forever.
        let (handle, rx, _shared) = direct_handle(4, ServeConfig::default());
        let ticket = handle.submit(&query_rows(1), RequestOptions::default()).unwrap();
        let start = Instant::now();
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(30)).unwrap_err(),
            ServeError::WaitTimeout
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        drop(rx);
    }

    #[test]
    fn install_swaps_models_and_rejects_mismatched_width() {
        let a = artifact();
        let service = PredictionService::spawn(a.clone(), ServeConfig::default()).unwrap();
        // Same artifact re-installed: outputs stay bit-identical.
        let rows = query_rows(40);
        let before =
            service.handle().submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
        service.install(a).unwrap();
        let after =
            service.handle().submit(&rows, RequestOptions::default()).unwrap().wait().unwrap();
        for (b, c) in before.predictions.iter().zip(&after.predictions) {
            assert_eq!(b.to_bits(), c.to_bits());
        }
        // A model with a different feature width is refused, typed.
        let wide_rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![i as f64, (i % 5) as f64, (i % 3) as f64]).collect();
        let labels: Vec<f64> = wide_rows.iter().map(|r| r[0] + r[2]).collect();
        let params = Params { n_estimators: 3, ..Params::regression() };
        let wide = Booster::train(&params, &Matrix::from_rows(&wide_rows), &labels).unwrap();
        let err = service.install(ModelArtifact::from_booster(wide, None)).unwrap_err();
        assert_eq!(err, ReloadError::FeatureMismatch { expected: 2, actual: 3 });
        let stats = service.stats();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.reload_failures, 1);
        service.shutdown();
    }

    #[test]
    fn overload_recovers_once_the_batcher_catches_up() {
        // End-to-end: a 1-slot queue against a live batcher sheds load
        // under a burst but keeps answering, and admits again later.
        let a = artifact();
        let config = ServeConfig { max_queued_requests: 1, ..ServeConfig::default() };
        let service = PredictionService::spawn(a, config).unwrap();
        let handle = service.handle();
        let rows = query_rows(4);
        let mut answered = 0;
        let mut shed = 0;
        for _ in 0..200 {
            match handle.submit(&rows, RequestOptions::default()) {
                Ok(ticket) => {
                    assert_eq!(ticket.wait().unwrap().predictions.len(), 4);
                    answered += 1;
                }
                Err(ServeError::Overloaded) => shed += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(answered > 0, "a live service must answer admitted requests");
        let stats = service.stats();
        assert_eq!(stats.answered, answered);
        assert_eq!(stats.shed_overloaded, shed); // bursty schedulers may or may not shed
        service.shutdown();
    }

    #[test]
    fn spawn_reports_errors_as_values() {
        // The happy path returns Ok; the point of the signature is that
        // thread-spawn failure would arrive as ServeError::Spawn rather
        // than a panic. Exercise the new errors' Display while here.
        let service = PredictionService::spawn(artifact(), ServeConfig::default());
        assert!(service.is_ok());
        let e = ServeError::Spawn { message: "out of threads".into() };
        assert!(e.to_string().contains("out of threads"));
        assert!(ServeError::QuotaExceeded { limit: 4 }.to_string().contains('4'));
        for e in [
            ServeError::DeadlineExceeded,
            ServeError::WaitTimeout,
            ServeError::BatcherPanic,
            ServeError::ShuttingDown,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn stats_snapshot_starts_clean_and_sheds_sum() {
        let stats = ServiceStats {
            shed_overloaded: 1,
            shed_quota: 2,
            shed_deadline: 3,
            shed_shutdown: 4,
            ..ServiceStats::default()
        };
        assert_eq!(stats.shed_total(), 10);
        let service = PredictionService::spawn(artifact(), ServeConfig::default()).unwrap();
        assert_eq!(service.stats(), ServiceStats::default());
        service.shutdown();
    }
}
