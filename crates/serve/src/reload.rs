//! Hot model reload: a background watcher that polls a
//! [`ModelRegistry`] group for a new artifact generation and installs
//! it into a running service between batches.
//!
//! The watcher leans on two properties established elsewhere:
//!
//! * the registry's atomic publish (`.tmp` + rename) means a file that
//!   exists under its final name is complete — the watcher never sees a
//!   half-written artifact *by name*; and
//! * [`Shared::install`](crate) swaps the model `Arc` under a mutex the
//!   batcher only touches between batches, so in-flight requests always
//!   finish on the model they were admitted under.
//!
//! What can still go wrong, and the policy for each:
//!
//! * **Corrupt republish** (bad magic, truncation, checksum mismatch —
//!   exactly what the serialisation fuzz suite generates): the load
//!   fails typed, the failure is counted in
//!   [`ServiceStats::reload_failures`](crate::ServiceStats), and the
//!   previous model keeps serving. The watcher re-attempts only when
//!   the generation stamp changes again, so a permanently-bad artifact
//!   does not busy-loop the poll thread through repeated parses.
//! * **Prune race**: `ModelRegistry::prune` may delete the very
//!   generation the watcher picked between listing and reading. The
//!   watcher falls back to `load_latest`, which retries the
//!   list-then-load internally and lands on whichever generation
//!   survived.
//! * **Feature-width change**: a republished model with a different
//!   width than the service was spawned with is rejected
//!   ([`ReloadError::FeatureMismatch`]) — admitted requests were
//!   validated against the old width and must stay servable.

use crate::Shared;
use msaw_core::registry::{ArtifactGeneration, ModelRegistry, RegistryError};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a model swap was refused or failed. The service keeps serving
/// the previous model through every variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The candidate artifact's feature width does not match the width
    /// the service was spawned with.
    FeatureMismatch { expected: usize, actual: usize },
    /// The registry could not produce the candidate artifact (missing
    /// file, I/O error, corrupt bytes).
    Registry(RegistryError),
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::FeatureMismatch { expected, actual } => write!(
                f,
                "refusing reload: service expects {expected} features, artifact has {actual}"
            ),
            ReloadError::Registry(e) => write!(f, "reload failed in the registry: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Registry(e) => Some(e),
            ReloadError::FeatureMismatch { .. } => None,
        }
    }
}

impl From<RegistryError> for ReloadError {
    fn from(e: RegistryError) -> Self {
        ReloadError::Registry(e)
    }
}

/// Handle on the background reload thread started by
/// [`PredictionService::watch_registry`](crate::PredictionService::watch_registry).
///
/// Dropping the watcher (or calling [`stop`](Self::stop)) stops the
/// polling; the service keeps serving whatever model is currently
/// installed. Successes and failures are visible in
/// [`ServiceStats`](crate::ServiceStats) (`reloads`,
/// `reload_failures`).
#[derive(Debug)]
pub struct ReloadWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReloadWatcher {
    pub(crate) fn spawn(
        shared: Arc<Shared>,
        registry: ModelRegistry,
        group: String,
        poll: Duration,
    ) -> Result<ReloadWatcher, crate::ServeError> {
        let stop = Arc::new(AtomicBool::new(false));
        // Seed the change detector *before* the thread starts: the
        // service was spawned with a model the caller chose, so exactly
        // the publishes that happen after this call returns trigger a
        // reload — no startup race where a publish lands between spawn
        // and the watcher's first look.
        let seed = registry.latest_generation(&group).ok().flatten();
        let thread = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("msaw-serve-reload".into())
                .spawn(move || watch_loop(&shared, &registry, &group, poll, &stop, seed))
                .map_err(|e| crate::ServeError::Spawn { message: e.to_string() })?
        };
        Ok(ReloadWatcher { stop, thread: Some(thread) })
    }

    /// Stop polling and join the watcher thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReloadWatcher {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Sleep `total` in short slices so a stop request takes effect within
/// ~25 ms rather than a full poll interval.
fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(25);
    let mut remaining = total;
    while !stop.load(Ordering::SeqCst) && remaining > Duration::ZERO {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn watch_loop(
    shared: &Arc<Shared>,
    registry: &ModelRegistry,
    group: &str,
    poll: Duration,
    stop: &AtomicBool,
    seed: Option<ArtifactGeneration>,
) {
    let mut last = seed;
    while !stop.load(Ordering::SeqCst) {
        interruptible_sleep(poll, stop);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let latest = match registry.latest_generation(group) {
            Ok(latest) => latest,
            Err(_) => continue, // transient listing error; poll again
        };
        let Some(generation) = latest else { continue };
        if last.as_ref() == Some(&generation) {
            continue;
        }
        match registry.load_named(&generation.file_name) {
            Ok(artifact) => {
                if shared.install(artifact).is_err() {
                    // Width mismatch — counted inside install. Remember
                    // the stamp so a bad publish is parsed once, not
                    // every poll tick.
                }
                last = Some(generation);
            }
            Err(RegistryError::NotFound { .. }) => {
                // Prune race: the chosen generation vanished between
                // listing and reading. load_latest retries internally
                // and lands on a surviving generation (possibly the one
                // already installed, in which case install it anyway —
                // idempotent by bit-identity of the artifact bytes).
                match registry.load_latest(group) {
                    Ok(Some((survivor, artifact))) => {
                        let _ = shared.install(artifact);
                        last = Some(survivor);
                    }
                    Ok(None) => {
                        // Every generation pruned away: keep serving
                        // the in-memory model.
                        last = None;
                    }
                    Err(_) => {
                        shared.note_reload_failure();
                        last = Some(generation);
                    }
                }
            }
            Err(_) => {
                // Corrupt or unreadable republish: keep the old model,
                // count the failure, and wait for the next stamp change
                // before re-parsing.
                shared.note_reload_failure();
                last = Some(generation);
            }
        }
    }
}
