//! # msaw-shap
//!
//! Post-hoc model interpretation via Shapley values, reimplementing the
//! method the paper uses (SHAP, Lundberg & Lee 2017) for the tree
//! ensembles trained by `msaw-gbdt`:
//!
//! * [`TreeExplainer`] — exact polynomial-time *path-dependent TreeSHAP*
//!   (Lundberg et al. 2018, Algorithm 2), attributing each prediction to
//!   the input features so that the attributions sum to the difference
//!   between the prediction and the model's expected output
//!   ("local accuracy" — enforced by tests against a brute-force
//!   enumeration of all feature subsets);
//! * [`global`] — population-level summaries (mean |SHAP| rankings),
//!   the basis of the paper's global explanations;
//! * [`dependence`] — per-feature dependence curves and automatic
//!   threshold extraction (the paper's Fig. 7 shows SHAP recovering the
//!   expert's cutoff of ≥3 for a PRO answer, data-driven);
//! * [`interaction`] — SHAP interaction values via conditional TreeSHAP
//!   (Lundberg et al. Algorithm 3): pairwise effect matrices whose rows
//!   sum back to the ordinary SHAP values (also verified brute-force).
//!
//! Attributions are computed in *raw score* space (log-odds for logistic
//! models), matching the `shap` package's default for XGBoost.

pub mod dependence;
pub mod explainer;
pub mod global;
pub mod interaction;
pub mod reference;

pub use dependence::{dependence_curve, sign_change_threshold, DependencePoint};
pub use explainer::{Explanation, PathArena, TreeExplainer};
pub use global::GlobalSummary;
pub use interaction::{
    shap_interaction_values, shap_interaction_values_with_workers, InteractionValues,
};

#[cfg(test)]
pub(crate) mod brute;
