//! SHAP interaction values (Lundberg, Erion & Lee 2018, §4.2 /
//! Algorithm 3): a matrix `Φ` whose off-diagonal `Φ[i][j]` captures the
//! interaction effect between features `i` and `j` on one prediction and
//! whose diagonal holds each feature's main effect, such that every row
//! sums to the feature's ordinary SHAP value and the whole matrix sums
//! to `f(x) − E[f(X)]`.
//!
//! Computed via *conditional* TreeSHAP: `Φ[i][j] = (φ_i(x | j follows
//! the instance's branch) − φ_i(x | j follows the background)) / 2`.

use crate::explainer::{tree_shap_conditional_with, Condition, PathArena};
use msaw_gbdt::Booster;

/// The interaction matrix for one explained row.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionValues {
    /// Row-major `n_features × n_features` matrix.
    pub values: Vec<f64>,
    /// Feature count (matrix side length).
    pub n_features: usize,
}

impl InteractionValues {
    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n_features + j]
    }

    /// Row sums — by construction the ordinary SHAP values.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_features).map(|i| (0..self.n_features).map(|j| self.get(i, j)).sum()).collect()
    }

    /// The `k` strongest off-diagonal pairs by |interaction|, each pair
    /// reported once (`i < j`), descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..self.n_features {
            for j in i + 1..self.n_features {
                pairs.push((i, j, self.get(i, j)));
            }
        }
        pairs.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("finite values"));
        pairs.truncate(k);
        pairs
    }
}

/// Compute SHAP interaction values for one row (raw-score space).
///
/// Cost is `n_features + 1` full TreeSHAP passes; they are mutually
/// independent, so the passes fan across the shared bounded worker
/// pool. Reassembly is keyed by conditioned feature, making the matrix
/// byte-identical at any worker count.
pub fn shap_interaction_values(model: &Booster, row: &[f64]) -> InteractionValues {
    shap_interaction_values_with_workers(
        model,
        row,
        msaw_parallel::default_workers(model.n_features() + 1),
    )
}

/// One conditional pass's accumulators: either the unconditional φ, or
/// a feature's (fixed-present, fixed-absent) pair.
enum Pass {
    Phi(Vec<f64>),
    OnOff(Vec<f64>, Vec<f64>),
}

/// [`shap_interaction_values`] with an explicit worker count — the hook
/// the equivalence suite uses to pin determinism across pool sizes.
pub fn shap_interaction_values_with_workers(
    model: &Booster,
    row: &[f64],
    workers: usize,
) -> InteractionValues {
    let m = model.n_features();
    assert_eq!(row.len(), m, "feature count mismatch");
    // Jobs 0..m: feature j's FixedPresent/FixedAbsent pair. Job m: the
    // ordinary (unconditional) pass for the diagonal.
    let passes = msaw_parallel::run_scratch_on(workers, m + 1, PathArena::new, |arena, j| {
        if j == m {
            let mut phi = vec![0.0; m];
            for tree in model.trees() {
                tree_shap_conditional_with(tree, row, &mut phi, Condition::None, 0, arena);
            }
            Pass::Phi(phi)
        } else {
            let mut on = vec![0.0; m];
            let mut off = vec![0.0; m];
            for tree in model.trees() {
                tree_shap_conditional_with(tree, row, &mut on, Condition::FixedPresent, j, arena);
                tree_shap_conditional_with(tree, row, &mut off, Condition::FixedAbsent, j, arena);
            }
            Pass::OnOff(on, off)
        }
    });

    let mut values = vec![0.0; m * m];
    let mut phi = Vec::new();
    for (j, pass) in passes.into_iter().enumerate() {
        match pass {
            Pass::Phi(p) => phi = p,
            Pass::OnOff(on, off) => {
                for i in 0..m {
                    if i == j {
                        continue;
                    }
                    let v = (on[i] - off[i]) / 2.0;
                    values[i * m + j] = v;
                }
            }
        }
    }
    // Diagonal: the main effect is what remains of φ_i after all
    // pairwise interactions are attributed.
    for i in 0..m {
        let off_sum: f64 = (0..m).filter(|&j| j != i).map(|j| values[i * m + j]).sum();
        values[i * m + i] = phi[i] - off_sum;
    }
    InteractionValues { values, n_features: m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::explainer::TreeExplainer;
    use msaw_gbdt::Params;
    use msaw_tabular::Matrix;

    /// y has a strong x0·x1 interaction plus additive x2.
    fn interacting_model() -> (Booster, Matrix) {
        let rows: Vec<Vec<f64>> = (0..160)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64, ((i / 4) % 5) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] * r[1] + 0.5 * r[2]).collect();
        let x = Matrix::from_rows(&rows);
        let model = Booster::train(
            &Params { n_estimators: 20, max_depth: 3, ..Params::regression() },
            &x,
            &y,
        )
        .unwrap();
        (model, x)
    }

    #[test]
    fn rows_sum_to_ordinary_shap_values() {
        let (model, x) = interacting_model();
        let explainer = TreeExplainer::new(&model);
        for i in [0usize, 7, 33] {
            let inter = shap_interaction_values(&model, x.row(i));
            let phi = explainer.shap_values_row(x.row(i));
            for (a, b) in inter.row_sums().iter().zip(&phi.values) {
                assert!((a - b).abs() < 1e-7, "row sum {a} vs shap {b}");
            }
        }
    }

    #[test]
    fn matrix_total_equals_prediction_gap() {
        let (model, x) = interacting_model();
        let explainer = TreeExplainer::new(&model);
        let row = x.row(3);
        let inter = shap_interaction_values(&model, row);
        let total: f64 = inter.values.iter().sum();
        let expected = model.predict_raw_row(row) - explainer.expected_value();
        assert!((total - expected).abs() < 1e-7, "{total} vs {expected}");
    }

    #[test]
    fn matrix_is_symmetric() {
        let (model, x) = interacting_model();
        let inter = shap_interaction_values(&model, x.row(1));
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (inter.get(i, j) - inter.get(j, i)).abs() < 1e-7,
                    "Φ[{i}][{j}] != Φ[{j}][{i}]"
                );
            }
        }
    }

    #[test]
    fn interacting_pair_dominates() {
        let (model, x) = interacting_model();
        // Pick a row where the x0·x1 term is active.
        let active = (0..x.nrows()).find(|&i| x.get(i, 0) == 1.0 && x.get(i, 1) == 1.0).unwrap();
        let inter = shap_interaction_values(&model, x.row(active));
        let top = inter.top_pairs(1);
        assert_eq!((top[0].0, top[0].1), (0, 1), "x0–x1 must be the top pair");
        assert!(top[0].2.abs() > 0.1);
        // x2 enters the target additively, so its interactions reflect
        // only the trained trees' incidental feature mixing — they must
        // be far smaller than the real x0–x1 interaction.
        assert!(inter.get(0, 2).abs() < top[0].2.abs() * 0.25, "{}", inter.get(0, 2));
        assert!(inter.get(1, 2).abs() < top[0].2.abs() * 0.25);
    }

    #[test]
    fn matches_brute_force_interactions() {
        let (model, x) = interacting_model();
        for i in [0usize, 5, 21] {
            let row = x.row(i);
            let fast = shap_interaction_values(&model, row);
            let slow = brute::brute_force_interactions(&model, row);
            for a in 0..3 {
                for b in 0..3 {
                    assert!(
                        (fast.get(a, b) - slow[a * 3 + b]).abs() < 1e-7,
                        "row {i} Φ[{a}][{b}]: fast {} vs brute {}",
                        fast.get(a, b),
                        slow[a * 3 + b]
                    );
                }
            }
        }
    }
}
