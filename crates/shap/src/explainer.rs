//! Exact path-dependent TreeSHAP (Lundberg, Erion & Lee 2018, Alg. 2).
//!
//! For each tree the algorithm walks every root-to-leaf path once while
//! maintaining, for the set of *unique* features on the path, the
//! proportion of feature-subset permutations that would send the instance
//! down the path ("one fraction") versus the proportion of background
//! mass that flows down it ("zero fraction", derived from training
//! covers). The bookkeeping makes the Shapley summation over all 2^M
//! feature subsets collapse into an O(L·D²) scan per tree.
//!
//! The traversal runs inside a [`PathArena`]: one preallocated buffer
//! holding every recursion level's unique-feature path as a contiguous
//! segment, so descending into a branch is a `copy_within` instead of a
//! fresh `Vec` allocation per split node. The arithmetic is untouched —
//! output is bit-identical to the clone-per-branch recursion retained in
//! [`crate::reference`], and batch entry points fan rows across the
//! shared `msaw-parallel` pool with slot-indexed reassembly, so results
//! are byte-identical at any worker count.

use msaw_gbdt::{Booster, Node, Tree};
use msaw_tabular::Matrix;

/// The attribution of one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Per-feature Shapley values (raw-score space).
    pub values: Vec<f64>,
    /// The model's expected raw output over the training distribution
    /// (the attribution baseline).
    pub base_value: f64,
    /// The raw prediction for the explained row; equals
    /// `base_value + values.iter().sum()` up to float error.
    pub prediction: f64,
}

impl Explanation {
    /// Features ranked by descending |SHAP|, ties broken by index.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_by(|&a, &b| {
            self.values[b]
                .abs()
                .partial_cmp(&self.values[a].abs())
                .expect("finite SHAP values")
                .then(a.cmp(&b))
        });
        order
    }

    /// The `k` most influential `(feature, shap_value)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        self.ranking().into_iter().take(k).map(|f| (f, self.values[f])).collect()
    }
}

/// SHAP explainer bound to a trained booster.
#[derive(Debug, Clone)]
pub struct TreeExplainer<'m> {
    model: &'m Booster,
    expected_value: f64,
}

impl<'m> TreeExplainer<'m> {
    /// Build an explainer; precomputes the cover-weighted expected value.
    pub fn new(model: &'m Booster) -> Self {
        let expected_value =
            model.base_score() + model.trees().iter().map(tree_expected_value).sum::<f64>();
        TreeExplainer { model, expected_value }
    }

    /// The attribution baseline `E[f(X)]` in raw-score space.
    pub fn expected_value(&self) -> f64 {
        self.expected_value
    }

    /// SHAP values for one row (raw-score space).
    pub fn shap_values_row(&self, row: &[f64]) -> Explanation {
        self.shap_values_row_with(row, &mut PathArena::new())
    }

    /// [`Self::shap_values_row`] reusing a caller-owned traversal arena —
    /// the allocation-free path for callers explaining many rows.
    pub fn shap_values_row_with(&self, row: &[f64], arena: &mut PathArena) -> Explanation {
        Explanation {
            values: self.shap_row_values(row, arena),
            base_value: self.expected_value,
            prediction: self.model.predict_raw_row(row),
        }
    }

    /// Just the per-feature attributions for one row, into a fresh vec.
    fn shap_row_values(&self, row: &[f64], arena: &mut PathArena) -> Vec<f64> {
        assert_eq!(row.len(), self.model.n_features(), "feature count mismatch");
        let mut values = vec![0.0; row.len()];
        for tree in self.model.trees() {
            tree_shap_conditional_with(tree, row, &mut values, Condition::None, 0, arena);
        }
        values
    }

    /// SHAP values for every row of a matrix; returns a matrix of the
    /// same shape.
    ///
    /// Rows are fanned across the shared bounded worker pool (each
    /// worker reusing one traversal arena) and reassembled by row
    /// index, so the matrix is byte-identical at any worker count.
    pub fn shap_values(&self, data: &Matrix) -> Matrix {
        self.shap_values_with_workers(data, msaw_parallel::default_workers(data.nrows()))
    }

    /// [`Self::shap_values`] with an explicit worker count — the hook the
    /// equivalence suite uses to pin determinism across pool sizes.
    pub fn shap_values_with_workers(&self, data: &Matrix, workers: usize) -> Matrix {
        let rows =
            msaw_parallel::run_scratch_on(workers, data.nrows(), PathArena::new, |arena, i| {
                self.shap_row_values(data.row(i), arena)
            });
        let mut out = Matrix::zeros(data.nrows(), data.ncols());
        for (i, values) in rows.iter().enumerate() {
            for (j, v) in values.iter().enumerate() {
                out.set(i, j, *v);
            }
        }
        out
    }
}

/// Cover-weighted mean leaf value of a tree — its expected raw output
/// under the training distribution the covers encode.
pub fn tree_expected_value(tree: &Tree) -> f64 {
    fn rec(tree: &Tree, idx: usize) -> f64 {
        match &tree.nodes()[idx] {
            Node::Leaf { weight, .. } => *weight,
            Node::Split { left, right, cover, .. } => {
                let cl = tree.nodes()[*left].cover();
                let cr = tree.nodes()[*right].cover();
                debug_assert!(*cover > 0.0);
                (cl * rec(tree, *left) + cr * rec(tree, *right)) / cover
            }
        }
    }
    if tree.is_empty() {
        0.0
    } else {
        rec(tree, 0)
    }
}

/// One element of the unique-feature path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PathElement {
    /// Feature index; `usize::MAX` marks the artificial root element.
    pub(crate) feature: usize,
    /// Fraction of background (cover) mass flowing down this branch.
    pub(crate) zero_fraction: f64,
    /// 1 when the instance follows the branch, 0 otherwise.
    pub(crate) one_fraction: f64,
    /// Permutation-weight accumulator.
    pub(crate) pweight: f64,
}

pub(crate) const ROOT_FEATURE: usize = usize::MAX;

/// A reusable traversal arena: every recursion level's unique-feature
/// path lives as a contiguous segment of one flat buffer.
///
/// Level `d`'s segment starts where level `d-1`'s ends, so descending
/// into a branch copies the parent segment forward (`copy_within`)
/// instead of cloning a `Vec` — the buffer peaks at the
/// `(depth+1)(depth+2)/2` triangular bound once and is then reused for
/// every subsequent tree and row. The element values and the order of
/// operations on them are exactly those of the clone-based recursion
/// (see [`crate::reference`]), so attributions are bit-identical.
#[derive(Debug, Default)]
pub struct PathArena {
    elements: Vec<PathElement>,
}

impl PathArena {
    /// An empty arena; it grows to a tree's triangular bound on first
    /// use and is reused across trees and rows thereafter.
    pub fn new() -> Self {
        PathArena { elements: Vec::new() }
    }

    /// Make room for a traversal of a tree of the given depth.
    fn prepare(&mut self, depth: usize) {
        let cap = (depth + 2) * (depth + 3) / 2;
        if self.elements.len() < cap {
            self.elements.resize(cap, PathElement::default());
        }
    }
}

/// Grow the path by one split (EXTEND). `path` holds the previous
/// elements plus one uninitialised slot at the end, which this writes.
fn extend_path(path: &mut [PathElement], zero_fraction: f64, one_fraction: f64, feature: usize) {
    let depth = path.len() - 1;
    path[depth] = PathElement {
        feature,
        zero_fraction,
        one_fraction,
        pweight: if depth == 0 { 1.0 } else { 0.0 },
    };
    for i in (0..depth).rev() {
        path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) as f64 / (depth + 1) as f64;
        path[i].pweight = zero_fraction * path[i].pweight * (depth - i) as f64 / (depth + 1) as f64;
    }
}

/// Remove element `index` from the path, undoing its EXTEND (UNWIND).
/// The caller shrinks its length bookkeeping by one afterwards.
fn unwind_path(path: &mut [PathElement], index: usize) {
    let depth = path.len() - 1;
    let one_fraction = path[index].one_fraction;
    let zero_fraction = path[index].zero_fraction;
    let mut next_one_portion = path[depth].pweight;
    for i in (0..depth).rev() {
        if one_fraction != 0.0 {
            let tmp = path[i].pweight;
            path[i].pweight =
                next_one_portion * (depth + 1) as f64 / ((i + 1) as f64 * one_fraction);
            next_one_portion =
                tmp - path[i].pweight * zero_fraction * (depth - i) as f64 / (depth + 1) as f64;
        } else {
            path[i].pweight =
                path[i].pweight * (depth + 1) as f64 / (zero_fraction * (depth - i) as f64);
        }
    }
    for i in index..depth {
        path[i].feature = path[i + 1].feature;
        path[i].zero_fraction = path[i + 1].zero_fraction;
        path[i].one_fraction = path[i + 1].one_fraction;
    }
}

/// Total permutation weight if element `index` were unwound, without
/// mutating the path.
fn unwound_path_sum(path: &[PathElement], index: usize) -> f64 {
    let depth = path.len() - 1;
    let one_fraction = path[index].one_fraction;
    let zero_fraction = path[index].zero_fraction;
    let mut next_one_portion = path[depth].pweight;
    let mut total = 0.0;
    for i in (0..depth).rev() {
        if one_fraction != 0.0 {
            let tmp = next_one_portion * (depth + 1) as f64 / ((i + 1) as f64 * one_fraction);
            total += tmp;
            next_one_portion =
                path[i].pweight - tmp * zero_fraction * (depth - i) as f64 / (depth + 1) as f64;
        } else {
            total += path[i].pweight / zero_fraction * (depth + 1) as f64 / (depth - i) as f64;
        }
    }
    total
}

/// How conditional TreeSHAP treats one designated feature — the
/// machinery behind SHAP interaction values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Ordinary (unconditional) TreeSHAP.
    None,
    /// The conditioned feature always follows the instance's branch and
    /// receives no attribution itself.
    FixedPresent,
    /// The conditioned feature always follows the background (cover)
    /// distribution and receives no attribution itself.
    FixedAbsent,
}

/// Accumulate one tree's SHAP values for `row` into `phi`.
pub fn tree_shap(tree: &Tree, row: &[f64], phi: &mut [f64]) {
    tree_shap_conditional(tree, row, phi, Condition::None, 0);
}

/// Accumulate one tree's *conditional* SHAP values for `row` into `phi`
/// (`condition_feature` is ignored when `condition` is [`Condition::None`]).
pub fn tree_shap_conditional(
    tree: &Tree,
    row: &[f64],
    phi: &mut [f64],
    condition: Condition,
    condition_feature: usize,
) {
    tree_shap_conditional_with(tree, row, phi, condition, condition_feature, &mut PathArena::new());
}

/// [`tree_shap_conditional`] reusing a caller-owned traversal arena.
pub fn tree_shap_conditional_with(
    tree: &Tree,
    row: &[f64],
    phi: &mut [f64],
    condition: Condition,
    condition_feature: usize,
    arena: &mut PathArena,
) {
    arena.prepare(tree.depth());
    recurse(
        tree,
        row,
        phi,
        0,
        &mut arena.elements,
        Segment { start: 0, len: 0 },
        1.0,
        1.0,
        ROOT_FEATURE,
        condition,
        condition_feature,
        1.0,
    );
}

/// One recursion level's live path: `len` elements at `arena[start..]`.
#[derive(Clone, Copy)]
struct Segment {
    start: usize,
    len: usize,
}

impl Segment {
    /// The next free arena index — where a child level's copy begins.
    fn end(self) -> usize {
        self.start + self.len
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    tree: &Tree,
    row: &[f64],
    phi: &mut [f64],
    node_idx: usize,
    arena: &mut [PathElement],
    mut seg: Segment,
    parent_zero_fraction: f64,
    parent_one_fraction: f64,
    parent_feature: usize,
    condition: Condition,
    condition_feature: usize,
    condition_fraction: f64,
) {
    if condition_fraction == 0.0 {
        return;
    }
    // The conditioned feature never joins the path: it is fixed, not
    // attributed.
    if condition == Condition::None || parent_feature != condition_feature {
        seg.len += 1;
        extend_path(
            &mut arena[seg.start..seg.end()],
            parent_zero_fraction,
            parent_one_fraction,
            parent_feature,
        );
    }
    match &tree.nodes()[node_idx] {
        Node::Leaf { weight, .. } => {
            let path = &arena[seg.start..seg.end()];
            for i in 1..path.len() {
                let w = unwound_path_sum(path, i);
                let el = path[i];
                phi[el.feature] +=
                    w * (el.one_fraction - el.zero_fraction) * weight * condition_fraction;
            }
        }
        Node::Split { feature, threshold, default_left, left, right, cover, .. } => {
            let v = row[*feature];
            let goes_left = if v.is_nan() { *default_left } else { v < *threshold };
            let (hot, cold) = if goes_left { (*left, *right) } else { (*right, *left) };
            let hot_zero = tree.nodes()[hot].cover() / cover;
            let cold_zero = tree.nodes()[cold].cover() / cover;

            // If this feature already appeared on the path, its previous
            // fractions are consumed and the old element removed.
            let mut incoming_zero = 1.0;
            let mut incoming_one = 1.0;
            if let Some(k) =
                arena[seg.start..seg.end()].iter().position(|el| el.feature == *feature)
            {
                incoming_zero = arena[seg.start + k].zero_fraction;
                incoming_one = arena[seg.start + k].one_fraction;
                unwind_path(&mut arena[seg.start..seg.end()], k);
                seg.len -= 1;
            }

            // Split the condition mass between the branches.
            let mut hot_fraction = condition_fraction;
            let mut cold_fraction = condition_fraction;
            if condition != Condition::None && *feature == condition_feature {
                match condition {
                    Condition::FixedPresent => cold_fraction = 0.0,
                    Condition::FixedAbsent => {
                        hot_fraction *= hot_zero;
                        cold_fraction *= cold_zero;
                    }
                    Condition::None => unreachable!(),
                }
            }

            // Hot branch (the one the instance follows) then cold branch,
            // each on its own forward copy of this level's path. A child
            // only writes at or beyond `seg.end()`, so the parent segment
            // is intact when the cold branch re-copies it.
            let child = Segment { start: seg.end(), len: seg.len };
            arena.copy_within(seg.start..seg.end(), child.start);
            recurse(
                tree,
                row,
                phi,
                hot,
                arena,
                child,
                incoming_zero * hot_zero,
                incoming_one,
                *feature,
                condition,
                condition_feature,
                hot_fraction,
            );
            arena.copy_within(seg.start..seg.end(), child.start);
            recurse(
                tree,
                row,
                phi,
                cold,
                arena,
                child,
                incoming_zero * cold_zero,
                0.0,
                *feature,
                condition,
                condition_feature,
                cold_fraction,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use msaw_gbdt::Params;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn train_toy(n_features: usize, n_rows: usize, seed: u64) -> (Booster, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| {
                (0..n_features)
                    .map(|_| {
                        if rng.random::<f64>() < 0.1 {
                            f64::NAN
                        } else {
                            rng.random_range(0.0..10.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let a = if r[0].is_nan() { 5.0 } else { r[0] };
                let b = if n_features > 1 && !r[1].is_nan() { r[1] } else { 0.0 };
                2.0 * a - b + if n_features > 2 && !r[2].is_nan() && r[2] > 5.0 { 3.0 } else { 0.0 }
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let params = Params { n_estimators: 10, max_depth: 3, ..Params::regression() };
        (Booster::train(&params, &x, &y).unwrap(), x)
    }

    #[test]
    fn local_accuracy_holds_for_every_row() {
        let (model, x) = train_toy(4, 120, 1);
        let explainer = TreeExplainer::new(&model);
        for i in 0..x.nrows() {
            let exp = explainer.shap_values_row(x.row(i));
            let reconstructed = exp.base_value + exp.values.iter().sum::<f64>();
            assert!(
                (reconstructed - exp.prediction).abs() < 1e-8,
                "row {i}: {} vs {}",
                reconstructed,
                exp.prediction
            );
        }
    }

    #[test]
    fn matches_brute_force_shapley_on_small_trees() {
        // 3 features → 8 subsets: brute force is exact and cheap.
        let (model, x) = train_toy(3, 80, 2);
        let explainer = TreeExplainer::new(&model);
        for i in (0..x.nrows()).step_by(7) {
            let fast = explainer.shap_values_row(x.row(i));
            let slow = brute::brute_force_shap(&model, x.row(i));
            for (f, (a, b)) in fast.values.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-8, "row {i} feature {f}: treeshap {a} vs brute {b}");
            }
        }
    }

    #[test]
    fn matches_brute_force_with_missing_values() {
        let (model, _) = train_toy(3, 100, 3);
        let explainer = TreeExplainer::new(&model);
        let rows = [
            vec![f64::NAN, 2.0, 8.0],
            vec![1.0, f64::NAN, f64::NAN],
            vec![f64::NAN, f64::NAN, f64::NAN],
        ];
        for row in &rows {
            let fast = explainer.shap_values_row(row);
            let slow = brute::brute_force_shap(&model, row);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn expected_value_is_cover_weighted_leaf_mean() {
        let (model, x) = train_toy(2, 60, 4);
        let explainer = TreeExplainer::new(&model);
        // Squared-error trees trained on the full data have covers equal
        // to row counts, so the expected value equals the mean prediction.
        let preds = model.predict_raw(&x);
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(
            (explainer.expected_value() - mean).abs() < 1e-6,
            "{} vs {}",
            explainer.expected_value(),
            mean
        );
    }

    #[test]
    fn uninformative_feature_gets_zero_attribution() {
        // Feature 1 is constant: it can never split, so φ₁ must be 0.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 10) as f64, 7.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model =
            Booster::train(&Params { n_estimators: 10, ..Params::regression() }, &x, &y).unwrap();
        let explainer = TreeExplainer::new(&model);
        let exp = explainer.shap_values_row(&[3.0, 7.0]);
        assert_eq!(exp.values[1], 0.0);
        assert!(exp.values[0].abs() > 0.0);
    }

    #[test]
    fn ranking_orders_by_absolute_value() {
        let exp = Explanation { values: vec![0.1, -0.9, 0.5], base_value: 0.0, prediction: -0.3 };
        assert_eq!(exp.ranking(), vec![1, 2, 0]);
        assert_eq!(exp.top_k(2), vec![(1, -0.9), (2, 0.5)]);
    }

    #[test]
    fn shap_matrix_matches_rowwise_calls() {
        let (model, x) = train_toy(3, 30, 5);
        let explainer = TreeExplainer::new(&model);
        let m = explainer.shap_values(&x);
        for i in 0..x.nrows() {
            let exp = explainer.shap_values_row(x.row(i));
            for j in 0..x.ncols() {
                assert_eq!(m.get(i, j), exp.values[j]);
            }
        }
    }

    #[test]
    fn repeated_feature_on_path_is_handled() {
        // Deep trees on one feature force the same feature to appear
        // multiple times on a path, exercising the UNWIND branch.
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] / 8.0).floor()).collect();
        let x = Matrix::from_rows(&rows);
        let model = Booster::train(
            &Params { n_estimators: 5, max_depth: 5, ..Params::regression() },
            &x,
            &y,
        )
        .unwrap();
        let explainer = TreeExplainer::new(&model);
        for i in [0usize, 17, 42, 63] {
            let exp = explainer.shap_values_row(x.row(i));
            let reconstructed = exp.base_value + exp.values.iter().sum::<f64>();
            assert!((reconstructed - exp.prediction).abs() < 1e-8);
        }
    }
}
