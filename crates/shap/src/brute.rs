//! Brute-force Shapley reference used only in tests.
//!
//! Computes φ_i = Σ_{S ⊆ F\{i}} |S|!(M−|S|−1)!/M! · (v(S∪{i}) − v(S))
//! by enumerating all 2^M feature subsets, with the coalition value
//! v(S) = E[f(x) | x_S] estimated by the same cover-weighted tree
//! traversal path-dependent TreeSHAP uses (Lundberg et al., Alg. 1).
//! Exponential in features — keep M small in tests.

use msaw_gbdt::{Booster, Node, Tree};

/// Expected value of one tree given that features in `mask` are fixed to
/// the instance's values and the rest follow the training distribution.
fn exp_value(tree: &Tree, row: &[f64], mask: u32, idx: usize) -> f64 {
    match &tree.nodes()[idx] {
        Node::Leaf { weight, .. } => *weight,
        Node::Split { feature, threshold, default_left, left, right, cover, .. } => {
            if mask & (1 << feature) != 0 {
                let v = row[*feature];
                let goes_left = if v.is_nan() { *default_left } else { v < *threshold };
                exp_value(tree, row, mask, if goes_left { *left } else { *right })
            } else {
                let cl = tree.nodes()[*left].cover();
                let cr = tree.nodes()[*right].cover();
                (cl * exp_value(tree, row, mask, *left) + cr * exp_value(tree, row, mask, *right))
                    / cover
            }
        }
    }
}

/// Coalition value of the whole model for feature subset `mask`.
fn coalition_value(model: &Booster, row: &[f64], mask: u32) -> f64 {
    model.base_score() + model.trees().iter().map(|t| exp_value(t, row, mask, 0)).sum::<f64>()
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

/// Exact Shapley values by subset enumeration (raw-score space).
pub fn brute_force_shap(model: &Booster, row: &[f64]) -> Vec<f64> {
    let m = model.n_features();
    assert!(m <= 20, "brute force is exponential; use few features");
    let m_fact = factorial(m);
    let mut phi = vec![0.0; m];
    for (i, slot) in phi.iter_mut().enumerate() {
        let bit = 1u32 << i;
        for mask in 0u32..(1 << m) {
            if mask & bit != 0 {
                continue;
            }
            let s = mask.count_ones() as usize;
            let weight = factorial(s) * factorial(m - s - 1) / m_fact;
            let with_i = coalition_value(model, row, mask | bit);
            let without_i = coalition_value(model, row, mask);
            *slot += weight * (with_i - without_i);
        }
    }
    phi
}

/// Exact SHAP *interaction* values by subset enumeration (Fujimoto's
/// Shapley interaction index, as used by Lundberg et al. §4.2):
/// `Φ_ij = Σ_{S ⊆ F\{i,j}} |S|!(M−|S|−2)!/(2(M−1)!) · Δ_ij(S)` for
/// `i ≠ j`, with `Δ_ij(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)`,
/// and diagonal `Φ_ii = φ_i − Σ_{j≠i} Φ_ij`. Returns a row-major M×M
/// matrix. Exponential — tests only.
pub fn brute_force_interactions(model: &Booster, row: &[f64]) -> Vec<f64> {
    let m = model.n_features();
    assert!((2..=16).contains(&m), "brute force interactions need 2..=16 features");
    let denom = 2.0 * factorial(m - 1);
    let mut out = vec![0.0; m * m];
    for i in 0..m {
        for j in (i + 1)..m {
            let bi = 1u32 << i;
            let bj = 1u32 << j;
            let mut phi = 0.0;
            for mask in 0u32..(1 << m) {
                if mask & (bi | bj) != 0 {
                    continue;
                }
                let s = mask.count_ones() as usize;
                let weight = factorial(s) * factorial(m - s - 2) / denom;
                let delta = coalition_value(model, row, mask | bi | bj)
                    - coalition_value(model, row, mask | bi)
                    - coalition_value(model, row, mask | bj)
                    + coalition_value(model, row, mask);
                phi += weight * delta;
            }
            out[i * m + j] = phi;
            out[j * m + i] = phi;
        }
    }
    let shap = brute_force_shap(model, row);
    for i in 0..m {
        let off: f64 = (0..m).filter(|&j| j != i).map(|j| out[i * m + j]).sum();
        out[i * m + i] = shap[i] - off;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::Params;
    use msaw_tabular::Matrix;

    #[test]
    fn efficiency_axiom_holds() {
        // Σφ = f(x) − v(∅) for the brute-force reference itself.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 8) as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let model =
            Booster::train(&Params { n_estimators: 5, ..Params::regression() }, &x, &y).unwrap();
        let row = x.row(11);
        let phi = brute_force_shap(&model, row);
        let fx = model.predict_raw_row(row);
        let v_empty = coalition_value(&model, row, 0);
        assert!((phi.iter().sum::<f64>() - (fx - v_empty)).abs() < 1e-9);
    }

    #[test]
    fn full_mask_reproduces_prediction() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model =
            Booster::train(&Params { n_estimators: 3, ..Params::regression() }, &x, &y).unwrap();
        let row = x.row(7);
        assert!((coalition_value(&model, row, 1) - model.predict_raw_row(row)).abs() < 1e-12);
    }
}
