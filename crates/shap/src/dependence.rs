//! SHAP dependence curves and data-driven threshold extraction (Fig. 7).
//!
//! The paper's key interpretability observation is that plotting a PRO
//! feature's SHAP values against its answer values reveals a cutoff
//! (e.g. "answers ≥ 3 push the prediction up") that *mimics the expert's
//! manually chosen KD cutoff* but is identified from data. This module
//! produces that scatter and extracts the crossing point.

use msaw_tabular::Matrix;

/// One point of a dependence plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DependencePoint {
    /// The feature's value in the instance.
    pub feature_value: f64,
    /// The feature's SHAP value for that instance.
    pub shap_value: f64,
}

/// Build the `(feature value, SHAP value)` scatter for one feature.
/// Rows where the feature is missing are skipped. Points are sorted by
/// feature value so the curve reads left to right.
pub fn dependence_curve(data: &Matrix, shap: &Matrix, feature: usize) -> Vec<DependencePoint> {
    assert_eq!(data.nrows(), shap.nrows(), "row count mismatch");
    assert_eq!(data.ncols(), shap.ncols(), "feature count mismatch");
    let mut points: Vec<DependencePoint> = (0..data.nrows())
        .filter_map(|i| {
            let v = data.get(i, feature);
            if v.is_nan() {
                None
            } else {
                Some(DependencePoint { feature_value: v, shap_value: shap.get(i, feature) })
            }
        })
        .collect();
    points.sort_by(|a, b| a.feature_value.partial_cmp(&b.feature_value).expect("NaNs filtered"));
    points
}

/// Find the feature value at which the *mean* SHAP value crosses zero:
/// the data-driven analogue of a KD cutoff.
///
/// Groups points by distinct feature value, computes each group's mean
/// SHAP value, and returns the first value whose mean is on the opposite
/// sign of the first group's mean. Returns `None` when the curve never
/// changes sign (no threshold behaviour).
pub fn sign_change_threshold(points: &[DependencePoint]) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    // Group by distinct feature value (points are sorted).
    let mut groups: Vec<(f64, f64, usize)> = Vec::new(); // (value, shap sum, count)
    for p in points {
        match groups.last_mut() {
            Some((v, sum, n)) if *v == p.feature_value => {
                *sum += p.shap_value;
                *n += 1;
            }
            _ => groups.push((p.feature_value, p.shap_value, 1)),
        }
    }
    let mean = |(v, sum, n): &(f64, f64, usize)| (*v, *sum / *n as f64);
    let (_, first_mean) = mean(&groups[0]);
    if first_mean == 0.0 {
        return None;
    }
    let start_sign = first_mean > 0.0;
    for g in &groups[1..] {
        let (v, m) = mean(g);
        if m != 0.0 && (m > 0.0) != start_sign {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(v: f64, s: f64) -> DependencePoint {
        DependencePoint { feature_value: v, shap_value: s }
    }

    #[test]
    fn curve_is_sorted_and_skips_missing() {
        let data = Matrix::from_rows(&[vec![3.0], vec![f64::NAN], vec![1.0]]);
        let shap = Matrix::from_rows(&[vec![0.5], vec![0.1], vec![-0.5]]);
        let curve = dependence_curve(&data, &shap, 0);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], pt(1.0, -0.5));
        assert_eq!(curve[1], pt(3.0, 0.5));
    }

    #[test]
    fn threshold_found_at_sign_change() {
        // Negative below 3, positive from 3 on — the paper's Fig. 7 shape.
        let points = vec![
            pt(1.0, -0.4),
            pt(1.0, -0.3),
            pt(2.0, -0.1),
            pt(3.0, 0.2),
            pt(4.0, 0.5),
            pt(5.0, 0.6),
        ];
        assert_eq!(sign_change_threshold(&points), Some(3.0));
    }

    #[test]
    fn no_threshold_for_monotone_same_sign() {
        let points = vec![pt(1.0, 0.1), pt(2.0, 0.2), pt(3.0, 0.5)];
        assert_eq!(sign_change_threshold(&points), None);
    }

    #[test]
    fn noisy_group_means_decide() {
        // Individual points cross zero but the group means do not.
        let points = vec![pt(1.0, -0.5), pt(1.0, 0.1), pt(2.0, -0.6), pt(2.0, 0.2)];
        assert_eq!(sign_change_threshold(&points), None);
    }

    #[test]
    fn empty_curve_has_no_threshold() {
        assert_eq!(sign_change_threshold(&[]), None);
    }

    #[test]
    fn positive_to_negative_also_detected() {
        let points = vec![pt(1.0, 0.4), pt(2.0, -0.3)];
        assert_eq!(sign_change_threshold(&points), Some(2.0));
    }
}
