//! The pre-arena TreeSHAP recursion, kept verbatim as an oracle.
//!
//! This is the clone-per-branch implementation the arena traversal in
//! [`crate::explainer`] replaced: every split node clones the live
//! unique-feature path for each of its two branches. It is O(nodes ×
//! depth) in heap allocations and single-threaded — exactly why it was
//! retired from the hot path — but it is the most direct transcription
//! of Lundberg et al.'s Algorithm 2, which makes it the right reference
//! for (a) the arena-vs-clone equivalence suite and (b) the `bench_shap`
//! binary's pre-refactor baseline timings. Not for production use.

use crate::explainer::Condition;
use msaw_gbdt::{Booster, Node, Tree};
use msaw_tabular::Matrix;

/// One element of the unique-feature path (clone-based twin).
#[derive(Debug, Clone, Copy)]
struct PathElement {
    feature: usize,
    zero_fraction: f64,
    one_fraction: f64,
    pweight: f64,
}

const ROOT_FEATURE: usize = usize::MAX;

fn extend_path(path: &mut Vec<PathElement>, zero_fraction: f64, one_fraction: f64, feature: usize) {
    let depth = path.len();
    path.push(PathElement {
        feature,
        zero_fraction,
        one_fraction,
        pweight: if depth == 0 { 1.0 } else { 0.0 },
    });
    for i in (0..depth).rev() {
        path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) as f64 / (depth + 1) as f64;
        path[i].pweight = zero_fraction * path[i].pweight * (depth - i) as f64 / (depth + 1) as f64;
    }
}

fn unwind_path(path: &mut Vec<PathElement>, index: usize) {
    let depth = path.len() - 1;
    let one_fraction = path[index].one_fraction;
    let zero_fraction = path[index].zero_fraction;
    let mut next_one_portion = path[depth].pweight;
    for i in (0..depth).rev() {
        if one_fraction != 0.0 {
            let tmp = path[i].pweight;
            path[i].pweight =
                next_one_portion * (depth + 1) as f64 / ((i + 1) as f64 * one_fraction);
            next_one_portion =
                tmp - path[i].pweight * zero_fraction * (depth - i) as f64 / (depth + 1) as f64;
        } else {
            path[i].pweight =
                path[i].pweight * (depth + 1) as f64 / (zero_fraction * (depth - i) as f64);
        }
    }
    for i in index..depth {
        path[i].feature = path[i + 1].feature;
        path[i].zero_fraction = path[i + 1].zero_fraction;
        path[i].one_fraction = path[i + 1].one_fraction;
    }
    path.pop();
}

fn unwound_path_sum(path: &[PathElement], index: usize) -> f64 {
    let depth = path.len() - 1;
    let one_fraction = path[index].one_fraction;
    let zero_fraction = path[index].zero_fraction;
    let mut next_one_portion = path[depth].pweight;
    let mut total = 0.0;
    for i in (0..depth).rev() {
        if one_fraction != 0.0 {
            let tmp = next_one_portion * (depth + 1) as f64 / ((i + 1) as f64 * one_fraction);
            total += tmp;
            next_one_portion =
                path[i].pweight - tmp * zero_fraction * (depth - i) as f64 / (depth + 1) as f64;
        } else {
            total += path[i].pweight / zero_fraction * (depth + 1) as f64 / (depth - i) as f64;
        }
    }
    total
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    tree: &Tree,
    row: &[f64],
    phi: &mut [f64],
    node_idx: usize,
    path: &mut Vec<PathElement>,
    parent_zero_fraction: f64,
    parent_one_fraction: f64,
    parent_feature: usize,
    condition: Condition,
    condition_feature: usize,
    condition_fraction: f64,
) {
    if condition_fraction == 0.0 {
        return;
    }
    if condition == Condition::None || parent_feature != condition_feature {
        extend_path(path, parent_zero_fraction, parent_one_fraction, parent_feature);
    }
    match &tree.nodes()[node_idx] {
        Node::Leaf { weight, .. } => {
            for i in 1..path.len() {
                let w = unwound_path_sum(path, i);
                let el = path[i];
                phi[el.feature] +=
                    w * (el.one_fraction - el.zero_fraction) * weight * condition_fraction;
            }
        }
        Node::Split { feature, threshold, default_left, left, right, cover, .. } => {
            let v = row[*feature];
            let goes_left = if v.is_nan() { *default_left } else { v < *threshold };
            let (hot, cold) = if goes_left { (*left, *right) } else { (*right, *left) };
            let hot_zero = tree.nodes()[hot].cover() / cover;
            let cold_zero = tree.nodes()[cold].cover() / cover;

            let mut incoming_zero = 1.0;
            let mut incoming_one = 1.0;
            if let Some(k) = path.iter().position(|el| el.feature == *feature) {
                incoming_zero = path[k].zero_fraction;
                incoming_one = path[k].one_fraction;
                unwind_path(path, k);
            }

            let mut hot_fraction = condition_fraction;
            let mut cold_fraction = condition_fraction;
            if condition != Condition::None && *feature == condition_feature {
                match condition {
                    Condition::FixedPresent => cold_fraction = 0.0,
                    Condition::FixedAbsent => {
                        hot_fraction *= hot_zero;
                        cold_fraction *= cold_zero;
                    }
                    Condition::None => unreachable!(),
                }
            }

            let mut hot_path = path.clone();
            recurse(
                tree,
                row,
                phi,
                hot,
                &mut hot_path,
                incoming_zero * hot_zero,
                incoming_one,
                *feature,
                condition,
                condition_feature,
                hot_fraction,
            );
            let mut cold_path = path.clone();
            recurse(
                tree,
                row,
                phi,
                cold,
                &mut cold_path,
                incoming_zero * cold_zero,
                0.0,
                *feature,
                condition,
                condition_feature,
                cold_fraction,
            );
        }
    }
}

/// Accumulate one tree's conditional SHAP values for `row` into `phi`
/// with the clone-per-branch recursion.
pub fn tree_shap_conditional_clone(
    tree: &Tree,
    row: &[f64],
    phi: &mut [f64],
    condition: Condition,
    condition_feature: usize,
) {
    let mut path = Vec::with_capacity(tree.depth() + 2);
    recurse(
        tree,
        row,
        phi,
        0,
        &mut path,
        1.0,
        1.0,
        ROOT_FEATURE,
        condition,
        condition_feature,
        1.0,
    );
}

/// Accumulate one tree's (unconditional) SHAP values for `row` into
/// `phi` with the clone-per-branch recursion.
pub fn tree_shap_clone(tree: &Tree, row: &[f64], phi: &mut [f64]) {
    tree_shap_conditional_clone(tree, row, phi, Condition::None, 0);
}

/// One row's attributions via the clone-based recursion.
pub fn shap_values_row_clone(model: &Booster, row: &[f64]) -> Vec<f64> {
    assert_eq!(row.len(), model.n_features(), "feature count mismatch");
    let mut values = vec![0.0; row.len()];
    for tree in model.trees() {
        tree_shap_clone(tree, row, &mut values);
    }
    values
}

/// The full pre-refactor batch path: a serial row loop over the
/// clone-based recursion, computing each row's raw prediction alongside
/// just as `TreeExplainer::shap_values` used to. The `bench_shap`
/// baseline times exactly this.
pub fn shap_values_serial_clone(model: &Booster, data: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(data.nrows(), data.ncols());
    for i in 0..data.nrows() {
        let values = shap_values_row_clone(model, data.row(i));
        std::hint::black_box(model.predict_raw_row(data.row(i)));
        for (j, v) in values.iter().enumerate() {
            out.set(i, j, *v);
        }
    }
    out
}

/// The pre-refactor interaction path: `n_features + 1` serial
/// conditional passes per row, clone-based recursion throughout.
pub fn shap_interaction_values_clone(model: &Booster, row: &[f64]) -> crate::InteractionValues {
    let m = model.n_features();
    assert_eq!(row.len(), m, "feature count mismatch");
    let mut phi = vec![0.0; m];
    for tree in model.trees() {
        tree_shap_conditional_clone(tree, row, &mut phi, Condition::None, 0);
    }
    let mut values = vec![0.0; m * m];
    for j in 0..m {
        let mut on = vec![0.0; m];
        let mut off = vec![0.0; m];
        for tree in model.trees() {
            tree_shap_conditional_clone(tree, row, &mut on, Condition::FixedPresent, j);
            tree_shap_conditional_clone(tree, row, &mut off, Condition::FixedAbsent, j);
        }
        for i in 0..m {
            if i == j {
                continue;
            }
            values[i * m + j] = (on[i] - off[i]) / 2.0;
        }
    }
    for i in 0..m {
        let off_sum: f64 = (0..m).filter(|&j| j != i).map(|j| values[i * m + j]).sum();
        values[i * m + i] = phi[i] - off_sum;
    }
    crate::InteractionValues { values, n_features: m }
}
