//! Global (population-level) SHAP summaries.

use crate::explainer::TreeExplainer;
use msaw_tabular::Matrix;

/// Population-level importance: mean |SHAP| per feature over a dataset.
/// This is the statistic behind the `shap.summary_plot` bar view the
/// paper's global explanations rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalSummary {
    /// `mean_abs[f]` = mean over rows of |φ_f|.
    pub mean_abs: Vec<f64>,
    /// Mean signed SHAP value per feature (direction of influence).
    pub mean_signed: Vec<f64>,
    /// Number of rows summarised.
    pub n_rows: usize,
}

impl GlobalSummary {
    /// Summarise SHAP values over every row of `data`.
    pub fn compute(explainer: &TreeExplainer<'_>, data: &Matrix) -> GlobalSummary {
        let shap = explainer.shap_values(data);
        Self::from_shap_matrix(&shap)
    }

    /// Summarise a precomputed SHAP matrix (rows × features).
    pub fn from_shap_matrix(shap: &Matrix) -> GlobalSummary {
        let n = shap.nrows().max(1) as f64;
        let mut mean_abs = vec![0.0; shap.ncols()];
        let mut mean_signed = vec![0.0; shap.ncols()];
        for row in shap.rows() {
            for (j, &v) in row.iter().enumerate() {
                mean_abs[j] += v.abs();
                mean_signed[j] += v;
            }
        }
        for j in 0..shap.ncols() {
            mean_abs[j] /= n;
            mean_signed[j] /= n;
        }
        GlobalSummary { mean_abs, mean_signed, n_rows: shap.nrows() }
    }

    /// Features ranked by descending mean |SHAP|.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.mean_abs.len()).collect();
        order.sort_by(|&a, &b| {
            self.mean_abs[b]
                .partial_cmp(&self.mean_abs[a])
                .expect("finite summaries")
                .then(a.cmp(&b))
        });
        order
    }

    /// Top `k` `(feature, mean_abs_shap)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        self.ranking().into_iter().take(k).map(|f| (f, self.mean_abs[f])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_gbdt::{Booster, Params};

    #[test]
    fn informative_feature_ranks_first_globally() {
        // y depends strongly on x0, weakly on x1, never on x2.
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i % 10) as f64, (i % 4) as f64, 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0] + 0.5 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let model =
            Booster::train(&Params { n_estimators: 30, ..Params::regression() }, &x, &y).unwrap();
        let explainer = TreeExplainer::new(&model);
        let summary = GlobalSummary::compute(&explainer, &x);
        assert_eq!(summary.ranking()[0], 0);
        assert_eq!(summary.ranking()[2], 2);
        assert_eq!(summary.mean_abs[2], 0.0);
        assert_eq!(summary.n_rows, 200);
    }

    #[test]
    fn from_shap_matrix_averages_correctly() {
        let shap = Matrix::from_rows(&[vec![1.0, -2.0], vec![-1.0, 2.0]]);
        let s = GlobalSummary::from_shap_matrix(&shap);
        assert_eq!(s.mean_abs, vec![1.0, 2.0]);
        assert_eq!(s.mean_signed, vec![0.0, 0.0]);
    }

    #[test]
    fn top_k_truncates() {
        let shap = Matrix::from_rows(&[vec![1.0, 3.0, 2.0]]);
        let s = GlobalSummary::from_shap_matrix(&shap);
        assert_eq!(s.top_k(2), vec![(1, 3.0), (2, 2.0)]);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let shap = Matrix::zeros(0, 3);
        let s = GlobalSummary::from_shap_matrix(&shap);
        assert_eq!(s.mean_abs, vec![0.0; 3]);
        assert_eq!(s.n_rows, 0);
    }
}
