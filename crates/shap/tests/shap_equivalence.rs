//! Equivalence suite for the batch-parallel SHAP engine.
//!
//! Locks the two refactor invariants: (1) the arena traversal is
//! *bit-identical* to the retired clone-per-branch recursion kept in
//! `msaw_shap::reference`, on models with NaNs and repeated features on
//! a path; (2) the pooled batch entry points are *byte-identical* at
//! any worker count, including the interaction matrix's fanned
//! conditional passes.

use msaw_gbdt::{Booster, Params};
use msaw_shap::{reference, shap_interaction_values_with_workers, PathArena, TreeExplainer};
use msaw_tabular::Matrix;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A toy model over data with ~10% missing values.
fn train_toy(n_features: usize, n_rows: usize, seed: u64) -> (Booster, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> =
        (0..n_rows)
            .map(|_| {
                (0..n_features)
                    .map(|_| {
                        if rng.random::<f64>() < 0.1 {
                            f64::NAN
                        } else {
                            rng.random_range(0.0..10.0)
                        }
                    })
                    .collect()
            })
            .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| {
            let a = if r[0].is_nan() { 5.0 } else { r[0] };
            let b = if n_features > 1 && !r[1].is_nan() { r[1] } else { 0.0 };
            2.0 * a - b
        })
        .collect();
    let x = Matrix::from_rows(&rows);
    let params = Params { n_estimators: 12, max_depth: 4, ..Params::regression() };
    (Booster::train(&params, &x, &y).unwrap(), x)
}

/// A deep single-feature model, forcing the same feature to repeat on
/// root-to-leaf paths (the UNWIND branch of the algorithm).
fn train_repeated_feature() -> (Booster, Matrix) {
    let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, (i % 4) as f64]).collect();
    let y: Vec<f64> = rows.iter().map(|r| (r[0] / 8.0).floor() + r[1]).collect();
    let x = Matrix::from_rows(&rows);
    let params = Params { n_estimators: 6, max_depth: 6, ..Params::regression() };
    (Booster::train(&params, &x, &y).unwrap(), x)
}

/// Exact (bitwise) comparison of two attribution vectors.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: feature {i}: {x} vs {y}");
    }
}

#[test]
fn arena_matches_clone_recursion_with_nans() {
    let (model, x) = train_toy(5, 150, 7);
    let explainer = TreeExplainer::new(&model);
    for i in 0..x.nrows() {
        let arena = explainer.shap_values_row(x.row(i));
        let clone = reference::shap_values_row_clone(&model, x.row(i));
        assert_bits_eq(&arena.values, &clone, &format!("row {i}"));
    }
}

#[test]
fn arena_matches_clone_recursion_on_repeated_feature_paths() {
    let (model, x) = train_repeated_feature();
    let explainer = TreeExplainer::new(&model);
    for i in 0..x.nrows() {
        let arena = explainer.shap_values_row(x.row(i));
        let clone = reference::shap_values_row_clone(&model, x.row(i));
        assert_bits_eq(&arena.values, &clone, &format!("row {i}"));
    }
}

#[test]
fn arena_matches_clone_on_all_missing_rows() {
    let (model, _) = train_toy(4, 120, 11);
    let rows =
        [vec![f64::NAN; 4], vec![f64::NAN, 3.0, f64::NAN, 9.5], vec![0.0, f64::NAN, 5.0, 1.0]];
    let explainer = TreeExplainer::new(&model);
    for row in &rows {
        let arena = explainer.shap_values_row(row);
        let clone = reference::shap_values_row_clone(&model, row);
        assert_bits_eq(&arena.values, &clone, "missing-value row");
    }
}

#[test]
fn one_arena_reused_across_rows_changes_nothing() {
    // The worker-pool path hands each worker one long-lived arena; its
    // state after row k must not leak into row k+1.
    let (model, x) = train_toy(4, 60, 13);
    let explainer = TreeExplainer::new(&model);
    let mut arena = PathArena::new();
    for i in 0..x.nrows() {
        let reused = explainer.shap_values_row_with(x.row(i), &mut arena);
        let fresh = explainer.shap_values_row(x.row(i));
        assert_bits_eq(&reused.values, &fresh.values, &format!("row {i}"));
    }
}

#[test]
fn shap_matrix_is_byte_identical_at_any_worker_count() {
    let (model, x) = train_toy(6, 200, 3);
    let explainer = TreeExplainer::new(&model);
    // Serial reference: a plain row loop.
    let serial = explainer.shap_values_with_workers(&x, 1);
    for workers in [2, 8] {
        let pooled = explainer.shap_values_with_workers(&x, workers);
        assert_bits_eq(serial.as_slice(), pooled.as_slice(), &format!("workers={workers}"));
    }
    // And the default entry point agrees too.
    assert_bits_eq(serial.as_slice(), explainer.shap_values(&x).as_slice(), "default workers");
}

#[test]
fn shap_matrix_matches_pre_refactor_serial_path() {
    let (model, x) = train_toy(5, 120, 19);
    let explainer = TreeExplainer::new(&model);
    let new = explainer.shap_values(&x);
    let old = reference::shap_values_serial_clone(&model, &x);
    assert_bits_eq(new.as_slice(), old.as_slice(), "matrix vs pre-refactor serial");
}

#[test]
fn interaction_matrix_is_unchanged_and_worker_count_independent() {
    let (model, x) = train_toy(4, 160, 5);
    for i in [0usize, 17, 59] {
        let row = x.row(i);
        let old = reference::shap_interaction_values_clone(&model, row);
        for workers in [1, 2, 8] {
            let new = shap_interaction_values_with_workers(&model, row, workers);
            assert_eq!(new.n_features, old.n_features);
            assert_bits_eq(&new.values, &old.values, &format!("row {i} workers={workers}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena-vs-clone equality on random data (with NaNs), random
    /// depth, and every row of the dataset.
    #[test]
    fn arena_equals_clone_on_random_models(
        (rows, depth) in (
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![5 => -10.0..10.0f64, 1 => Just(f64::NAN)],
                    3,
                ),
                10..50,
            ),
            2usize..6,
        )
    ) {
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().filter(|v| v.is_finite()).sum::<f64>())
            .collect();
        let x = Matrix::from_rows(&rows);
        let params = Params { n_estimators: 5, max_depth: depth, ..Params::regression() };
        let model = Booster::train(&params, &x, &y).unwrap();
        let explainer = TreeExplainer::new(&model);
        for i in 0..x.nrows() {
            let arena = explainer.shap_values_row(x.row(i));
            let clone = reference::shap_values_row_clone(&model, x.row(i));
            for (a, b) in arena.values.iter().zip(&clone) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "row {}: {} vs {}", i, a, b);
            }
        }
    }
}
