//! # msaw-preprocess
//!
//! The paper's §3 data pipeline, from raw cohort observations to the
//! sample sets the learners train on:
//!
//! 1. **Quality assurance** — weekly PRO series contain gaps (unanswered
//!    app prompts). Gaps up to a configurable length are filled by
//!    linear interpolation; longer gaps are left missing because
//!    interpolating them "produces spurious data" (the paper determined
//!    the safe maximum, five consecutive missing observations,
//!    experimentally — our `qa_gap_sweep` experiment reproduces that
//!    sweep).
//! 2. **Aggregation** — interpolated weekly PRO answers and daily
//!    activity traces are averaged into monthly values.
//! 3. **Sample construction** — for each outcome `o ∈ {QoL, SPPB,
//!    Falls}` and each patient, every month `m = i + (j−1)·9` (`i ∈
//!    1..8`, window `j ∈ {1,2}`) yields one sample: the 59 monthly
//!    feature values (56 PRO + steps, sleep, calories) paired with the
//!    outcome measured at the visit ending the window (month 9 or 18).
//!    Samples with too many still-missing features are dropped,
//!    thinning the 4,176 potential records to ≈2,250 usable ones as in
//!    the paper.
//!
//! The FI-augmented variants (`Sample^FI_o`) are built by appending the
//! baseline Frailty Index column via [`SampleSet::with_extra_feature`] —
//! the index itself is computed by `msaw-kd`.

pub mod aggregate;
pub mod error;
pub mod ingest;
pub mod interpolate;
pub mod samples;
pub mod stream;

pub use aggregate::monthly_means;
pub use error::SampleError;
pub use ingest::{frame_to_samples, ingest_frame, read_sample_csv, IngestMode, Ingested};
pub use interpolate::interpolate;
pub use samples::{
    build_samples, label_of, FeaturePanel, OutcomeKind, PatientFeatures, PipelineConfig,
    SampleMeta, SampleSet,
};
pub use stream::{collect_samples, patient_samples, range_samples, SampleBlock, SampleStream};
