//! Temporal aggregation: weekly/daily series into monthly values.

/// Average a regular series into blocks of `block_len` (e.g. 4 weeks →
/// 1 month), skipping `NaN`s. A block with no present values is `NaN`.
/// The series length must be a multiple of `block_len`.
pub fn monthly_means(series: &[f64], block_len: usize) -> Vec<f64> {
    assert!(block_len > 0, "block length must be positive");
    assert_eq!(
        series.len() % block_len,
        0,
        "series length {} not a multiple of block {}",
        series.len(),
        block_len
    );
    series
        .chunks_exact(block_len)
        .map(|chunk| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &v in chunk {
                if !v.is_nan() {
                    sum += v;
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_complete_blocks() {
        let out = monthly_means(&[1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], 4);
        assert_eq!(out, vec![2.5, 10.0]);
    }

    #[test]
    fn skips_nans_within_block() {
        let out = monthly_means(&[2.0, f64::NAN, 4.0, f64::NAN], 4);
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn all_missing_block_is_nan() {
        let out = monthly_means(&[f64::NAN, f64::NAN, 1.0, 1.0], 2);
        assert!(out[0].is_nan());
        assert_eq!(out[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_series_panics() {
        monthly_means(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn empty_series_gives_no_blocks() {
        assert!(monthly_means(&[], 4).is_empty());
    }
}
