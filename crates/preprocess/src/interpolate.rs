//! Bounded linear interpolation of observation series.

/// Fill gaps of up to `max_gap` consecutive missing values by linear
/// interpolation between the flanking observations. Longer gaps, and
/// gaps touching either end of the series (no flanking value), stay
/// missing. Returns an `f64` series with `NaN` for still-missing slots.
pub fn interpolate(series: &[Option<f64>], max_gap: usize) -> Vec<f64> {
    let mut out: Vec<f64> = series.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
    let mut i = 0usize;
    while i < out.len() {
        if !out[i].is_nan() {
            i += 1;
            continue;
        }
        // Find the end of this missing run.
        let start = i;
        while i < out.len() && out[i].is_nan() {
            i += 1;
        }
        let len = i - start;
        // Interior gap with both endpoints present, short enough?
        if start > 0 && i < out.len() && len <= max_gap {
            let left = out[start - 1];
            let right = out[i];
            for (k, slot) in out[start..i].iter_mut().enumerate() {
                let t = (k + 1) as f64 / (len + 1) as f64;
                *slot = left + (right - left) * t;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[f64]) -> Vec<Option<f64>> {
        values.iter().map(|&v| if v.is_nan() { None } else { Some(v) }).collect()
    }

    #[test]
    fn short_gap_is_linearly_filled() {
        let input = s(&[1.0, f64::NAN, f64::NAN, 4.0]);
        let out = interpolate(&input, 5);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gap_longer_than_max_stays_missing() {
        let input = s(&[1.0, f64::NAN, f64::NAN, f64::NAN, 5.0]);
        let out = interpolate(&input, 2);
        assert_eq!(out[0], 1.0);
        assert!(out[1].is_nan() && out[2].is_nan() && out[3].is_nan());
        assert_eq!(out[4], 5.0);
    }

    #[test]
    fn gap_exactly_max_is_filled() {
        let input = s(&[0.0, f64::NAN, f64::NAN, f64::NAN, 4.0]);
        let out = interpolate(&input, 3);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn leading_and_trailing_gaps_stay_missing() {
        let input = s(&[f64::NAN, 2.0, 3.0, f64::NAN]);
        let out = interpolate(&input, 5);
        assert!(out[0].is_nan());
        assert_eq!(out[1], 2.0);
        assert_eq!(out[2], 3.0);
        assert!(out[3].is_nan());
    }

    #[test]
    fn zero_max_gap_disables_interpolation() {
        let input = s(&[1.0, f64::NAN, 3.0]);
        let out = interpolate(&input, 0);
        assert!(out[1].is_nan());
    }

    #[test]
    fn all_missing_stays_all_missing() {
        let input = s(&[f64::NAN, f64::NAN]);
        let out = interpolate(&input, 10);
        assert!(out.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn complete_series_is_untouched() {
        let input = s(&[1.0, 2.0, 3.0]);
        assert_eq!(interpolate(&input, 5), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn multiple_gaps_handled_independently() {
        let input = s(&[1.0, f64::NAN, 3.0, f64::NAN, f64::NAN, f64::NAN, 7.0]);
        let out = interpolate(&input, 2);
        assert_eq!(out[1], 2.0);
        // Second gap has length 3 > 2 → untouched.
        assert!(out[3].is_nan() && out[4].is_nan() && out[5].is_nan());
    }

    #[test]
    fn empty_series_is_fine() {
        assert!(interpolate(&[], 5).is_empty());
    }

    #[test]
    fn interpolation_is_monotone_within_gap() {
        let input = s(&[0.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN, 10.0]);
        let out = interpolate(&input, 5);
        for w in out.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
