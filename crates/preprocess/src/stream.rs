//! Streaming featurization: turn a [`CohortStream`] into blocks of
//! ready-to-train samples without ever materialising the cohort or the
//! full feature matrix.
//!
//! Each patient is featurized independently ([`PatientFeatures::build`]
//! on their own raw series) and their QA-passing samples are emitted
//! through the same [`emit_patient_samples`] the materialised
//! [`build_samples`] path uses, in the same patient order — so
//! concatenating the streamed blocks reproduces the in-memory
//! [`SampleSet`] byte for byte (pinned by the tests below).

use crate::samples::{
    emit_patient_samples, label_of, FeaturePanel, OutcomeKind, PatientFeatures, PipelineConfig,
    SampleMeta, SampleSet,
};
use msaw_cohort::stream::{CohortChunks, CohortStream};
use msaw_cohort::{CohortConfig, PatientRecord};
use msaw_tabular::Matrix;

/// A block of assembled samples — the streamed counterpart of a
/// [`SampleSet`] slice. `rows` is row-major with
/// `FeaturePanel::feature_names().len()` columns per row.
#[derive(Debug, Clone)]
pub struct SampleBlock {
    /// Row-major feature values, `n_rows × n_features`.
    pub rows: Vec<f64>,
    /// One label per row.
    pub labels: Vec<f64>,
    /// Per-row provenance.
    pub meta: Vec<SampleMeta>,
    /// Columns per row.
    pub n_features: usize,
}

impl SampleBlock {
    /// Number of samples in the block.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// One row's feature values.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.n_features..(i + 1) * self.n_features]
    }
}

/// Featurize one generated patient into QA-passing samples. Mirrors
/// the per-patient step of [`build_samples`] exactly: same
/// featurization, same emission, with the window label read off the
/// record's own outcome visits.
pub fn patient_samples(
    record: &PatientRecord,
    outcome: OutcomeKind,
    cfg: &PipelineConfig,
) -> SampleBlock {
    let features = PatientFeatures::build(&record.pro, &record.activity, cfg);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();
    emit_patient_samples(
        record.patient.id,
        record.patient.clinic,
        &features.pro,
        &features.activity,
        |visit_month| {
            record.outcomes.iter().find(|o| o.month == visit_month).map(|r| label_of(r, outcome))
        },
        cfg,
        &mut rows,
        &mut labels,
        &mut meta,
    );
    let n_features = FeaturePanel::feature_names().len();
    let mut flat = Vec::with_capacity(rows.len() * n_features);
    for row in rows {
        flat.extend_from_slice(&row);
    }
    SampleBlock { rows: flat, labels, meta, n_features }
}

/// Featurize the patients with ids `start..end` into one
/// [`SampleBlock`] — the unit of work parallel pipelines fan across
/// workers. Generation is pure in `(config, id)`, so this block is
/// bit-identical to the same id range of a serial [`SampleStream`]
/// pass, whatever chunking either side uses.
pub fn range_samples(
    config: &CohortConfig,
    outcome: OutcomeKind,
    cfg: &PipelineConfig,
    start: u32,
    end: u32,
) -> SampleBlock {
    let n_features = FeaturePanel::feature_names().len();
    let mut block =
        SampleBlock { rows: Vec::new(), labels: Vec::new(), meta: Vec::new(), n_features };
    for record in CohortStream::range(config, start, end) {
        let part = patient_samples(&record, outcome, cfg);
        block.rows.extend_from_slice(&part.rows);
        block.labels.extend(part.labels);
        block.meta.extend(part.meta);
    }
    block
}

/// Streaming generate→featurize pipeline: yields one [`SampleBlock`]
/// per chunk of `chunk_patients` patients, holding only that chunk in
/// memory. Patient order (and therefore row order under concatenation)
/// is identical to the materialised path for every chunk size.
pub struct SampleStream<'a> {
    chunks: CohortChunks<'a>,
    outcome: OutcomeKind,
    cfg: PipelineConfig,
}

impl<'a> SampleStream<'a> {
    /// Stream samples for `outcome` over the whole cohort of `config`.
    pub fn new(
        config: &'a CohortConfig,
        outcome: OutcomeKind,
        cfg: PipelineConfig,
        chunk_patients: usize,
    ) -> SampleStream<'a> {
        SampleStream { chunks: CohortStream::new(config).chunks(chunk_patients), outcome, cfg }
    }
}

impl Iterator for SampleStream<'_> {
    type Item = SampleBlock;

    fn next(&mut self) -> Option<SampleBlock> {
        let records = self.chunks.next()?;
        let n_features = FeaturePanel::feature_names().len();
        let mut block =
            SampleBlock { rows: Vec::new(), labels: Vec::new(), meta: Vec::new(), n_features };
        for record in &records {
            let part = patient_samples(record, self.outcome, &self.cfg);
            block.rows.extend_from_slice(&part.rows);
            block.labels.extend(part.labels);
            block.meta.extend(part.meta);
        }
        Some(block)
    }
}

/// Collect a streamed run back into a [`SampleSet`] — the convenience
/// used by equivalence tests and small-scale callers; at population
/// scale, consume the blocks instead.
pub fn collect_samples(
    config: &CohortConfig,
    outcome: OutcomeKind,
    cfg: &PipelineConfig,
    chunk_patients: usize,
) -> SampleSet {
    let n_features = FeaturePanel::feature_names().len();
    let mut rows: Vec<f64> = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();
    for block in SampleStream::new(config, outcome, cfg.clone(), chunk_patients) {
        rows.extend_from_slice(&block.rows);
        labels.extend(block.labels);
        meta.extend(block.meta);
    }
    let nrows = labels.len();
    SampleSet {
        features: Matrix::from_vec(rows, nrows, n_features),
        feature_names: FeaturePanel::feature_names(),
        labels,
        meta,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::build_samples;
    use msaw_cohort::generate;

    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    fn assert_equivalent(config: &CohortConfig, outcome: OutcomeKind, chunk: usize) {
        let cfg = PipelineConfig::default();
        let data = generate(config);
        let panel = FeaturePanel::build(&data, &cfg);
        let full = build_samples(&data, &panel, outcome, &cfg);
        let streamed = collect_samples(config, outcome, &cfg, chunk);
        assert_eq!(streamed.len(), full.len());
        assert!(
            bits_eq(streamed.features.as_slice(), full.features.as_slice()),
            "features diverge at chunk {chunk}"
        );
        assert!(bits_eq(&streamed.labels, &full.labels));
        assert_eq!(streamed.meta, full.meta);
        assert_eq!(streamed.feature_names, full.feature_names);
    }

    #[test]
    fn streamed_samples_equal_materialised_for_every_outcome() {
        let config = CohortConfig::small(42);
        for outcome in OutcomeKind::ALL {
            assert_equivalent(&config, outcome, 16);
        }
    }

    #[test]
    fn chunk_size_never_changes_the_samples() {
        let config = CohortConfig::small(42);
        let n = config.total_patients();
        for chunk in [1usize, 7, n, n + 50] {
            assert_equivalent(&config, OutcomeKind::Qol, chunk);
        }
    }

    #[test]
    fn block_rows_are_feature_width() {
        let config = CohortConfig::small(42);
        let blocks: Vec<SampleBlock> =
            SampleStream::new(&config, OutcomeKind::Qol, PipelineConfig::default(), 8).collect();
        assert!(!blocks.is_empty());
        for block in &blocks {
            assert_eq!(block.n_features, 59);
            assert_eq!(block.rows.len(), block.n_rows() * 59);
            if block.n_rows() > 0 {
                assert_eq!(block.row(0).len(), 59);
            }
        }
    }
}
