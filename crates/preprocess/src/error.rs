//! Typed errors for sample construction and ingest.

use msaw_cohort::validate::ValidateError;
use msaw_tabular::TabularError;
use std::fmt;

/// Errors reachable while building or ingesting a [`crate::SampleSet`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleError {
    /// The underlying CSV/frame layer failed (parse error, unknown
    /// column, length mismatch).
    Tabular(TabularError),
    /// The validating ingest rejected the frame (strict mode) or its
    /// schema (either mode).
    Validation(ValidateError),
    /// An appended feature column's length disagrees with the set.
    FeatureLength { name: String, expected: usize, actual: usize },
    /// The ingested frame carries no recognised `label_*` column.
    NoLabelColumn,
    /// A clinic cell survived validation but names no known clinic
    /// (defensive: reachable only when conversion is run unvalidated).
    UnknownClinic { row: usize, name: String },
    /// A provenance value survived validation but is missing
    /// (defensive, as above).
    MissingProvenance { row: usize, column: &'static str },
    /// Lenient ingest quarantined every row: nothing left to train on.
    NoCleanRows,
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Tabular(e) => write!(f, "tabular layer failed: {e}"),
            SampleError::Validation(e) => write!(f, "ingest validation failed: {e}"),
            SampleError::FeatureLength { name, expected, actual } => write!(
                f,
                "extra feature `{name}` has {actual} values but the set has {expected} samples"
            ),
            SampleError::NoLabelColumn => {
                write!(f, "frame has no label_QoL / label_SPPB / label_Falls column")
            }
            SampleError::UnknownClinic { row, name } => {
                write!(f, "row {row}: unknown clinic `{name}`")
            }
            SampleError::MissingProvenance { row, column } => {
                write!(f, "row {row}: missing `{column}` value")
            }
            SampleError::NoCleanRows => {
                write!(f, "every row was quarantined; no clean samples remain")
            }
        }
    }
}

impl std::error::Error for SampleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleError::Tabular(e) => Some(e),
            SampleError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TabularError> for SampleError {
    fn from(e: TabularError) -> Self {
        SampleError::Tabular(e)
    }
}

impl From<ValidateError> for SampleError {
    fn from(e: ValidateError) -> Self {
        SampleError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn tabular_errors_chain_as_source() {
        let inner = TabularError::UnknownColumn("qol".into());
        let e = SampleError::from(inner.clone());
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn messages_carry_context() {
        let e = SampleError::FeatureLength { name: "fi_baseline".into(), expected: 10, actual: 7 };
        let s = e.to_string();
        assert!(s.contains("fi_baseline") && s.contains("10") && s.contains('7'));
    }
}
