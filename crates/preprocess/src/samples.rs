//! Sample-set construction (the paper's §3 "Observational data and
//! feature space").

use crate::aggregate::monthly_means;
use crate::interpolate::interpolate;
use msaw_cohort::activity::ActivityTrace;
use msaw_cohort::{
    Clinic, CohortData, OutcomeRecord, PatientId, N_PRO, QUESTION_BANK, STUDY_MONTHS,
    WEEKS_PER_MONTH,
};
use msaw_tabular::Matrix;
use serde::{Deserialize, Serialize};

/// Which outcome a sample set targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Quality of Life — regression on `[0,1]`.
    Qol,
    /// Short Physical Performance Battery — regression on 0–12.
    Sppb,
    /// Falls — binary classification.
    Falls,
}

impl OutcomeKind {
    /// All outcomes in the paper's order.
    pub const ALL: [OutcomeKind; 3] = [OutcomeKind::Qol, OutcomeKind::Sppb, OutcomeKind::Falls];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Qol => "QoL",
            OutcomeKind::Sppb => "SPPB",
            OutcomeKind::Falls => "Falls",
        }
    }

    /// Whether this outcome is a classification task.
    pub fn is_classification(self) -> bool {
        matches!(self, OutcomeKind::Falls)
    }
}

/// Pipeline knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Longest gap (consecutive missing weekly observations) filled by
    /// interpolation. The paper's experimentally determined value is 5.
    pub max_interpolation_gap: usize,
    /// A sample is dropped when more than this many of its 59 features
    /// are still missing after interpolation and aggregation.
    pub max_missing_features: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { max_interpolation_gap: 5, max_missing_features: 3 }
    }
}

/// Provenance of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// The patient the sample describes.
    pub patient: PatientId,
    /// The patient's clinic (for stratified experiments).
    pub clinic: Clinic,
    /// Observation month `m = i + (j-1)*9`.
    pub month: usize,
    /// Window `j ∈ {1, 2}`; the label is the visit at month `9·j`.
    pub window: u8,
}

/// A ready-to-train sample set.
#[derive(Debug, Clone)]
pub struct SampleSet {
    /// Dense feature matrix (`NaN` = missing).
    pub features: Matrix,
    /// Column names, aligned with `features`.
    pub feature_names: Vec<String>,
    /// One label per row (Falls encoded as 0.0/1.0).
    pub labels: Vec<f64>,
    /// Per-row provenance.
    pub meta: Vec<SampleMeta>,
    /// The outcome the labels measure.
    pub outcome: OutcomeKind,
}

impl SampleSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Append one extra feature column (e.g. the baseline FI), returning
    /// a new set. `values` must have one entry per sample.
    pub fn with_extra_feature(&self, name: &str, values: &[f64]) -> SampleSet {
        self.try_with_extra_feature(name, values).expect("one value per sample required")
    }

    /// Fallible [`Self::with_extra_feature`]: a length mismatch is a
    /// typed [`crate::SampleError`] instead of a panic.
    pub fn try_with_extra_feature(
        &self,
        name: &str,
        values: &[f64],
    ) -> Result<SampleSet, crate::SampleError> {
        if values.len() != self.len() {
            return Err(crate::SampleError::FeatureLength {
                name: name.to_string(),
                expected: self.len(),
                actual: values.len(),
            });
        }
        let mut names = self.feature_names.clone();
        names.push(name.to_string());
        Ok(SampleSet {
            features: self.features.hstack_column(values),
            feature_names: names,
            labels: self.labels.clone(),
            meta: self.meta.clone(),
            outcome: self.outcome,
        })
    }

    /// Restrict to the samples of one clinic.
    pub fn filter_clinic(&self, clinic: Clinic) -> SampleSet {
        let keep: Vec<usize> = self
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.clinic == clinic)
            .map(|(i, _)| i)
            .collect();
        self.take(&keep)
    }

    /// Restrict to a subset of rows.
    pub fn take(&self, indices: &[usize]) -> SampleSet {
        SampleSet {
            features: self.features.take_rows(indices),
            feature_names: self.feature_names.clone(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            meta: indices.iter().map(|&i| self.meta[i]).collect(),
            outcome: self.outcome,
        }
    }

    /// Per-row group keys (patient ids) for leakage-free splitting.
    pub fn patient_groups(&self) -> Vec<u64> {
        self.meta.iter().map(|m| m.patient.0 as u64).collect()
    }

    /// Build a shared training context over the full feature matrix:
    /// the matrix is indexed and quantised exactly once, after which any
    /// number of row views (CV folds, the final 80% fit, OOF rotations)
    /// can be trained via [`msaw_gbdt::Booster::train_on_rows`] without
    /// re-binning or copying rows.
    pub fn training_context(&self) -> msaw_gbdt::TrainingContext<'_> {
        msaw_gbdt::TrainingContext::new(&self.features)
    }

    /// Export as a [`msaw_tabular::Frame`] — provenance columns
    /// (patient, clinic, month, window), every feature, and the label —
    /// so a sample set can be inspected or dumped to CSV with
    /// `msaw_tabular::csv::write_csv`.
    pub fn to_frame(&self) -> msaw_tabular::Frame {
        use msaw_tabular::Column;
        let mut frame = msaw_tabular::Frame::new();
        frame
            .push_column(
                "patient",
                Column::from_i64(self.meta.iter().map(|m| Some(m.patient.0 as i64)).collect()),
            )
            .expect("fresh frame");
        let clinics: Vec<Option<&str>> = self.meta.iter().map(|m| Some(m.clinic.name())).collect();
        frame.push_column("clinic", Column::from_labels(&clinics)).expect("row counts match");
        frame
            .push_column(
                "month",
                Column::from_i64(self.meta.iter().map(|m| Some(m.month as i64)).collect()),
            )
            .expect("row counts match");
        frame
            .push_column(
                "window",
                Column::from_i64(self.meta.iter().map(|m| Some(m.window as i64)).collect()),
            )
            .expect("row counts match");
        for (j, name) in self.feature_names.iter().enumerate() {
            frame
                .push_column(name.clone(), Column::from_f64(self.features.column(j)))
                .expect("feature names are unique");
        }
        frame
            .push_column(
                format!("label_{}", self.outcome.name()),
                Column::from_f64(self.labels.clone()),
            )
            .expect("label name cannot collide with features");
        frame
    }
}

/// Monthly feature values for the whole cohort: the shared stage the
/// three per-outcome sample sets are cut from.
#[derive(Debug, Clone)]
pub struct FeaturePanel {
    /// `pro[patient][question][month-1]`, `NaN` = missing after QA.
    pub pro: Vec<Vec<Vec<f64>>>,
    /// `activity[patient][channel][month-1]`, channels = steps, sleep,
    /// calories.
    pub activity: Vec<[Vec<f64>; 3]>,
}

/// Monthly feature values for one patient: the per-patient slice of
/// [`FeaturePanel`], computable from that patient's raw series alone —
/// the unit of work the streaming featurizer operates on.
#[derive(Debug, Clone)]
pub struct PatientFeatures {
    /// `pro[question][month-1]`, `NaN` = missing after QA.
    pub pro: Vec<Vec<f64>>,
    /// `activity[channel][month-1]`, channels = steps, sleep, calories.
    pub activity: [Vec<f64>; 3],
}

impl PatientFeatures {
    /// Interpolate + aggregate one patient's weekly PRO series and
    /// daily activity trace into monthly features. This is *the*
    /// featurization — [`FeaturePanel::build`] is a per-patient loop
    /// over it, so the streamed and materialised paths cannot diverge.
    pub fn build(
        pro_series: &[Vec<Option<u8>>],
        trace: &ActivityTrace,
        cfg: &PipelineConfig,
    ) -> PatientFeatures {
        let mut per_question = Vec::with_capacity(N_PRO);
        for series in pro_series.iter().take(N_PRO) {
            let weekly: Vec<Option<f64>> = series.iter().map(|a| a.map(|v| v as f64)).collect();
            let filled = interpolate(&weekly, cfg.max_interpolation_gap);
            per_question.push(monthly_means(&filled, WEEKS_PER_MONTH));
        }
        let activity = [
            (1..=STUDY_MONTHS).map(|m| trace.monthly_mean(&trace.steps, m)).collect::<Vec<f64>>(),
            (1..=STUDY_MONTHS).map(|m| trace.monthly_mean(&trace.sleep_hours, m)).collect(),
            (1..=STUDY_MONTHS).map(|m| trace.monthly_mean(&trace.calories, m)).collect(),
        ];
        PatientFeatures { pro: per_question, activity }
    }
}

impl FeaturePanel {
    /// Run interpolation + aggregation over the cohort.
    pub fn build(data: &CohortData, cfg: &PipelineConfig) -> FeaturePanel {
        let n = data.patients.len();
        let mut pro = Vec::with_capacity(n);
        let mut activity = Vec::with_capacity(n);
        for p in 0..n {
            let pf = PatientFeatures::build(&data.pro.series[p], &data.activity[p], cfg);
            pro.push(pf.pro);
            activity.push(pf.activity);
        }
        FeaturePanel { pro, activity }
    }

    /// The canonical 59 feature names: the 56 PRO items in bank order,
    /// then the activity aggregates.
    pub fn feature_names() -> Vec<String> {
        let mut names: Vec<String> = QUESTION_BANK.iter().map(|q| q.name.clone()).collect();
        names.push("steps_monthly_mean".to_string());
        names.push("sleep_hours_monthly_mean".to_string());
        names.push("calories_monthly_mean".to_string());
        names
    }
}

/// The label an outcome record yields for one task.
pub fn label_of(record: &OutcomeRecord, outcome: OutcomeKind) -> f64 {
    match outcome {
        OutcomeKind::Qol => record.qol,
        OutcomeKind::Sppb => record.sppb as f64,
        OutcomeKind::Falls => f64::from(record.falls),
    }
}

/// Append every QA-passing sample of one patient — both windows, all
/// eight candidate months each — to `rows`/`labels`/`meta`.
/// `label_for_visit(9·window)` supplies the window's label (or `None`
/// to skip that window). Both [`build_samples`] and the streaming
/// featurizer in [`crate::stream`] funnel through this, which is what
/// makes the two paths byte-identical.
// A sink per output stream plus the per-patient inputs: the arity is
// the fan-in, not incidental state to bundle.
#[allow(clippy::too_many_arguments)]
pub fn emit_patient_samples<F>(
    patient: PatientId,
    clinic: Clinic,
    pro: &[Vec<f64>],
    activity: &[Vec<f64>],
    label_for_visit: F,
    cfg: &PipelineConfig,
    rows: &mut Vec<Vec<f64>>,
    labels: &mut Vec<f64>,
    meta: &mut Vec<SampleMeta>,
) where
    F: Fn(usize) -> Option<f64>,
{
    let n_features = pro.len() + activity.len();
    for window in 1u8..=2 {
        let visit_month = 9 * window as usize;
        let Some(label) = label_for_visit(visit_month) else {
            continue;
        };
        for i in 1usize..=8 {
            let month = i + (window as usize - 1) * 9;
            let mut row = Vec::with_capacity(n_features);
            for q in pro {
                row.push(q[month - 1]);
            }
            for channel in activity {
                row.push(channel[month - 1]);
            }
            let missing = row.iter().filter(|v| v.is_nan()).count();
            if missing > cfg.max_missing_features {
                continue;
            }
            rows.push(row);
            labels.push(label);
            meta.push(SampleMeta { patient, clinic, month, window });
        }
    }
}

/// Build `Sample_o` for one outcome: every in-window month of every
/// patient becomes a candidate sample; rows missing more than
/// `cfg.max_missing_features` features are dropped (QA).
pub fn build_samples(
    data: &CohortData,
    panel: &FeaturePanel,
    outcome: OutcomeKind,
    cfg: &PipelineConfig,
) -> SampleSet {
    let feature_names = FeaturePanel::feature_names();
    let n_features = feature_names.len();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();

    for patient in &data.patients {
        let p = patient.id.0 as usize;
        emit_patient_samples(
            patient.id,
            patient.clinic,
            &panel.pro[p],
            &panel.activity[p],
            |visit_month| data.outcome(patient.id, visit_month).map(|r| label_of(r, outcome)),
            cfg,
            &mut rows,
            &mut labels,
            &mut meta,
        );
    }

    let features =
        if rows.is_empty() { Matrix::zeros(0, n_features) } else { Matrix::from_rows(&rows) };
    SampleSet { features, feature_names, labels, meta, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msaw_cohort::{generate, CohortConfig};

    fn built() -> (CohortData, FeaturePanel, SampleSet) {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let set = build_samples(&data, &panel, OutcomeKind::Qol, &cfg);
        (data, panel, set)
    }

    #[test]
    fn feature_names_are_59_and_unique() {
        let names = FeaturePanel::feature_names();
        assert_eq!(names.len(), 59);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 59);
    }

    #[test]
    fn samples_have_consistent_shapes() {
        let (_, _, set) = built();
        assert!(!set.is_empty());
        assert_eq!(set.features.nrows(), set.labels.len());
        assert_eq!(set.features.nrows(), set.meta.len());
        assert_eq!(set.features.ncols(), 59);
    }

    #[test]
    fn qa_drops_a_plausible_fraction() {
        let (data, _, set) = built();
        let potential = data.patients.len() * 16;
        let kept = set.len() as f64 / potential as f64;
        // Paper: 2250 of 4176 ≈ 0.54 kept. Allow a band.
        assert!((0.30..=0.85).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn months_stay_inside_their_window() {
        let (_, _, set) = built();
        for m in &set.meta {
            match m.window {
                1 => assert!((1..=8).contains(&m.month)),
                2 => assert!((10..=17).contains(&m.month)),
                w => panic!("bad window {w}"),
            }
        }
    }

    #[test]
    fn no_kept_row_exceeds_missing_budget() {
        let (_, _, set) = built();
        let cfg = PipelineConfig::default();
        for row in set.features.rows() {
            let missing = row.iter().filter(|v| v.is_nan()).count();
            assert!(missing <= cfg.max_missing_features);
        }
    }

    #[test]
    fn pro_features_are_in_likert_range_when_present() {
        let (_, _, set) = built();
        for row in set.features.rows() {
            for &v in &row[..56] {
                if !v.is_nan() {
                    assert!((1.0..=5.0).contains(&v), "PRO monthly mean {v}");
                }
            }
        }
    }

    #[test]
    fn falls_labels_are_binary() {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let set = build_samples(&data, &panel, OutcomeKind::Falls, &cfg);
        assert!(set.labels.iter().all(|&l| l == 0.0 || l == 1.0));
        assert!(set.outcome.is_classification());
    }

    #[test]
    fn sppb_labels_are_integers_in_range() {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let set = build_samples(&data, &panel, OutcomeKind::Sppb, &cfg);
        assert!(set.labels.iter().all(|&l| (0.0..=12.0).contains(&l) && l.fract() == 0.0));
    }

    #[test]
    fn with_extra_feature_appends_column() {
        let (_, _, set) = built();
        let fi: Vec<f64> = (0..set.len()).map(|i| i as f64 * 0.01).collect();
        let augmented = set.with_extra_feature("fi_baseline", &fi);
        assert_eq!(augmented.features.ncols(), 60);
        assert_eq!(augmented.feature_names.last().unwrap(), "fi_baseline");
        assert_eq!(augmented.features.get(3, 59), 0.03);
    }

    #[test]
    fn filter_clinic_keeps_only_that_clinic() {
        let (_, _, set) = built();
        let modena = set.filter_clinic(Clinic::Modena);
        assert!(!modena.is_empty());
        assert!(modena.meta.iter().all(|m| m.clinic == Clinic::Modena));
        assert!(modena.len() < set.len());
    }

    #[test]
    fn tighter_interpolation_keeps_fewer_samples() {
        let data = generate(&CohortConfig::small(42));
        let strict = PipelineConfig { max_interpolation_gap: 0, ..Default::default() };
        let lax = PipelineConfig { max_interpolation_gap: 10, ..Default::default() };
        let n_strict =
            build_samples(&data, &FeaturePanel::build(&data, &strict), OutcomeKind::Qol, &strict)
                .len();
        let n_lax =
            build_samples(&data, &FeaturePanel::build(&data, &lax), OutcomeKind::Qol, &lax).len();
        assert!(n_strict < n_lax, "strict {n_strict} !< lax {n_lax}");
    }

    #[test]
    fn to_frame_round_trips_through_csv() {
        let (_, _, set) = built();
        let frame = set.to_frame();
        assert_eq!(frame.nrows(), set.len());
        assert_eq!(frame.ncols(), 4 + 59 + 1);
        // Round trip through CSV and confirm the label column survives.
        let mut buf = Vec::new();
        msaw_tabular::csv::write_csv(&frame, &mut buf).unwrap();
        let schema = msaw_tabular::csv::CsvSchema {
            columns: frame.schema().fields().iter().map(|f| (f.name.clone(), f.dtype)).collect(),
        };
        let back = msaw_tabular::csv::read_csv(std::io::Cursor::new(buf), &schema).unwrap();
        assert_eq!(back.nrows(), set.len());
        let labels = back.f64_column("label_QoL").unwrap();
        for (a, b) in labels.iter().zip(&set.labels) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn patient_groups_align_with_meta() {
        let (_, _, set) = built();
        let groups = set.patient_groups();
        assert_eq!(groups.len(), set.len());
        assert_eq!(groups[0], set.meta[0].patient.0 as u64);
    }
}
