//! Validating ingest: exported sample CSV → checked [`SampleSet`].
//!
//! The inverse of [`SampleSet::to_frame`] + `write_csv`, with the
//! `cohort::validate` pass wired in between CSV parse and sample
//! construction, so malformed data surfaces as one typed
//! [`SampleError`] naming the offending row/column — never a panic,
//! and never silently-poisoned training data.
//!
//! Strict mode fails on the first violation; lenient mode quarantines
//! offending rows (reported by index + reason in the returned
//! [`QuarantineReport`]) and proceeds with the clean subset.

use crate::error::SampleError;
use crate::samples::{OutcomeKind, SampleMeta, SampleSet};
use msaw_cohort::validate::{validate_lenient, validate_strict, QuarantineReport};
use msaw_cohort::{Clinic, PatientId};
use msaw_tabular::csv::{read_csv, CsvSchema};
use msaw_tabular::{DataType, Frame, Matrix, TabularError};
use std::io::BufRead;

/// How ingest reacts to invalid rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Error on the first violation (lowest row index).
    Strict,
    /// Quarantine offending rows and proceed with the clean subset.
    Lenient,
}

/// A successfully ingested sample set.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The validated (and, in lenient mode, filtered) samples.
    pub set: SampleSet,
    /// Lenient mode's account of what was dropped; `None` in strict
    /// mode (strict either passes everything or errors).
    pub quarantine: Option<QuarantineReport>,
}

impl OutcomeKind {
    /// Map an exported label column name back to its outcome.
    pub fn from_label_column(name: &str) -> Option<OutcomeKind> {
        match name {
            "label_QoL" => Some(OutcomeKind::Qol),
            "label_SPPB" => Some(OutcomeKind::Sppb),
            "label_Falls" => Some(OutcomeKind::Falls),
            _ => None,
        }
    }
}

/// The CSV schema implied by a sample-export header: provenance integer
/// columns, the categorical clinic, floats for everything else.
fn schema_for_header(header: &str) -> CsvSchema {
    let columns = header
        .split(',')
        .map(|name| {
            let dtype = match name {
                "patient" | "month" | "window" => DataType::Int,
                "clinic" => DataType::Categorical,
                _ => DataType::Float,
            };
            (name.to_string(), dtype)
        })
        .collect();
    CsvSchema { columns }
}

/// Read an exported sample CSV, validate it, and build a [`SampleSet`].
///
/// The column schema is inferred from the header, so any frame written
/// by [`SampleSet::to_frame`] + `write_csv` round-trips — including
/// FI-augmented exports with extra feature columns.
pub fn read_sample_csv<R: BufRead>(
    mut reader: R,
    mode: IngestMode,
) -> Result<Ingested, SampleError> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| TabularError::Csv { line: 1, message: e.to_string() })?;
    let header =
        text.lines().next().ok_or(TabularError::Csv { line: 1, message: "empty input".into() })?;
    let frame = read_csv(std::io::Cursor::new(text.as_bytes()), &schema_for_header(header))?;
    ingest_frame(&frame, mode)
}

/// Validate a parsed frame and build a [`SampleSet`] from it.
pub fn ingest_frame(frame: &Frame, mode: IngestMode) -> Result<Ingested, SampleError> {
    match mode {
        IngestMode::Strict => {
            validate_strict(frame)?;
            Ok(Ingested { set: frame_to_samples(frame)?, quarantine: None })
        }
        IngestMode::Lenient => {
            let report = validate_lenient(frame)?;
            if report.clean_rows.is_empty() && frame.nrows() > 0 {
                return Err(SampleError::NoCleanRows);
            }
            let clean = frame.take(&report.clean_rows)?;
            Ok(Ingested { set: frame_to_samples(&clean)?, quarantine: Some(report) })
        }
    }
}

/// Convert a (validated) sample frame into a [`SampleSet`]: provenance
/// columns become [`SampleMeta`], every float column except the label
/// becomes a feature, the `label_*` column becomes the labels.
pub fn frame_to_samples(frame: &Frame) -> Result<SampleSet, SampleError> {
    let schema = frame.schema();
    let (label_name, outcome) = schema
        .fields()
        .iter()
        .find_map(|f| OutcomeKind::from_label_column(&f.name).map(|o| (f.name.clone(), o)))
        .ok_or(SampleError::NoLabelColumn)?;
    let labels = frame.f64_column(&label_name)?.to_vec();

    let patients = frame.i64_column("patient")?;
    let months = frame.i64_column("month")?;
    let windows = frame.i64_column("window")?;
    let (clinic_codes, clinic_cats) =
        frame.column("clinic")?.as_categorical().ok_or(TabularError::TypeMismatch {
            column: "clinic".into(),
            expected: "categorical",
            actual: "non-categorical",
        })?;

    let n = frame.nrows();
    let mut meta = Vec::with_capacity(n);
    for row in 0..n {
        let require = |v: Option<i64>, column: &'static str| {
            v.ok_or(SampleError::MissingProvenance { row, column })
        };
        let clinic_name = clinic_codes[row]
            .map(|code| clinic_cats[code as usize].as_str())
            .ok_or(SampleError::MissingProvenance { row, column: "clinic" })?;
        let clinic = Clinic::from_name(clinic_name)
            .ok_or_else(|| SampleError::UnknownClinic { row, name: clinic_name.to_string() })?;
        meta.push(SampleMeta {
            patient: PatientId(require(patients[row], "patient")? as u32),
            clinic,
            month: require(months[row], "month")? as usize,
            window: require(windows[row], "window")? as u8,
        });
    }

    let feature_names: Vec<String> = schema
        .fields()
        .iter()
        .filter(|f| f.dtype == DataType::Float && f.name != label_name)
        .map(|f| f.name.clone())
        .collect();
    let columns: Vec<&[f64]> =
        feature_names.iter().map(|name| frame.f64_column(name)).collect::<Result<_, _>>()?;
    let features = if n == 0 {
        Matrix::zeros(0, feature_names.len())
    } else {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| columns.iter().map(|c| c[i]).collect()).collect();
        Matrix::from_rows(&rows)
    };

    Ok(SampleSet { features, feature_names, labels, meta, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{build_samples, FeaturePanel, PipelineConfig};
    use msaw_cohort::validate::{ValidateError, ViolationReason};
    use msaw_cohort::{generate, CohortConfig};
    use std::io::Cursor;

    fn exported(outcome: OutcomeKind) -> (SampleSet, Vec<u8>) {
        let data = generate(&CohortConfig::small(42));
        let cfg = PipelineConfig::default();
        let panel = FeaturePanel::build(&data, &cfg);
        let set = build_samples(&data, &panel, outcome, &cfg);
        let mut buf = Vec::new();
        msaw_tabular::csv::write_csv(&set.to_frame(), &mut buf).unwrap();
        (set, buf)
    }

    #[test]
    fn clean_export_round_trips_in_both_modes() {
        let (set, csv) = exported(OutcomeKind::Qol);
        for mode in [IngestMode::Strict, IngestMode::Lenient] {
            let got = read_sample_csv(Cursor::new(&csv), mode).unwrap();
            assert_eq!(got.set.len(), set.len());
            assert_eq!(got.set.outcome, OutcomeKind::Qol);
            assert_eq!(got.set.feature_names, set.feature_names);
            assert_eq!(got.set.meta, set.meta);
            for (a, b) in got.set.labels.iter().zip(&set.labels) {
                assert!((a - b).abs() < 1e-9);
            }
            if let Some(report) = got.quarantine {
                assert_eq!(report.n_quarantined(), 0);
            }
        }
    }

    /// Corrupt one cell of one data line (1-based line index from 1).
    fn corrupt_line(csv: &[u8], data_row: usize, column: &str, value: &str) -> Vec<u8> {
        let text = std::str::from_utf8(csv).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let col = lines[0].split(',').position(|c| c == column).unwrap();
        let mut cells: Vec<String> = lines[1 + data_row].split(',').map(String::from).collect();
        cells[col] = value.to_string();
        lines[1 + data_row] = cells.join(",");
        (lines.join("\n") + "\n").into_bytes()
    }

    #[test]
    fn strict_mode_errors_on_the_first_bad_row() {
        let (_, csv) = exported(OutcomeKind::Qol);
        let bad = corrupt_line(&csv, 3, "label_QoL", "7.5");
        let err = read_sample_csv(Cursor::new(&bad), IngestMode::Strict).unwrap_err();
        match err {
            SampleError::Validation(ValidateError::Violation(v)) => {
                assert_eq!(v.row, 3);
                assert_eq!(v.reason, ViolationReason::VasOutOfRange);
            }
            other => panic!("expected a strict violation, got {other}"),
        }
    }

    #[test]
    fn lenient_mode_quarantines_exactly_the_bad_rows() {
        let (set, csv) = exported(OutcomeKind::Qol);
        let bad = corrupt_line(
            &corrupt_line(&csv, 2, "label_QoL", "9.0"),
            5,
            "steps_monthly_mean",
            "-10",
        );
        let got = read_sample_csv(Cursor::new(&bad), IngestMode::Lenient).unwrap();
        let report = got.quarantine.unwrap();
        assert_eq!(
            report.quarantined,
            vec![(2, ViolationReason::VasOutOfRange), (5, ViolationReason::NegativeActivity)]
        );
        assert_eq!(got.set.len(), set.len() - 2);
        // The clean subset is the original minus the quarantined rows.
        let keep: Vec<usize> = (0..set.len()).filter(|i| *i != 2 && *i != 5).collect();
        assert_eq!(got.set.meta, set.take(&keep).meta);
    }

    #[test]
    fn non_numeric_cell_is_a_tabular_error() {
        let (_, csv) = exported(OutcomeKind::Qol);
        let bad = corrupt_line(&csv, 0, "label_QoL", "oops");
        let err = read_sample_csv(Cursor::new(&bad), IngestMode::Strict).unwrap_err();
        assert!(matches!(err, SampleError::Tabular(TabularError::Csv { line: 2, .. })), "{err}");
    }

    #[test]
    fn missing_column_is_a_schema_error() {
        let (set, _) = exported(OutcomeKind::Sppb);
        let frame = set.to_frame().drop_column("month").unwrap();
        let err = ingest_frame(&frame, IngestMode::Lenient).unwrap_err();
        assert!(matches!(err, SampleError::Validation(ValidateError::Schema(_))), "{err}");
    }

    #[test]
    fn all_rows_bad_is_no_clean_rows() {
        let (set, _) = exported(OutcomeKind::Falls);
        let mut labels = set.labels.clone();
        labels.fill(0.5);
        let poisoned = SampleSet { labels, ..set };
        let err = ingest_frame(&poisoned.to_frame(), IngestMode::Lenient).unwrap_err();
        assert!(matches!(err, SampleError::NoCleanRows));
    }

    #[test]
    fn fi_augmented_export_round_trips() {
        let (set, _) = exported(OutcomeKind::Qol);
        let fi: Vec<f64> = (0..set.len()).map(|i| (i % 10) as f64 * 0.05).collect();
        let augmented = set.with_extra_feature("fi_baseline", &fi);
        let mut buf = Vec::new();
        msaw_tabular::csv::write_csv(&augmented.to_frame(), &mut buf).unwrap();
        let got = read_sample_csv(Cursor::new(&buf), IngestMode::Strict).unwrap();
        assert_eq!(got.set.feature_names.last().unwrap(), "fi_baseline");
        assert_eq!(got.set.features.ncols(), 60);
    }
}
