//! Error type for training and inference.

use std::fmt;

/// Errors produced by `msaw-gbdt`.
#[derive(Debug, Clone, PartialEq)]
pub enum GbdtError {
    /// Training data had no rows.
    EmptyDataset,
    /// Labels and feature matrix disagree on row count.
    LabelLength { rows: usize, labels: usize },
    /// A parameter value was out of its valid range.
    InvalidParam { name: &'static str, message: String },
    /// Prediction input has a different feature count than the model.
    FeatureCount { expected: usize, actual: usize },
    /// A serialised model could not be decoded.
    Decode(String),
    /// Logistic objective requires labels in {0, 1}.
    NonBinaryLabel { row: usize, value: f64 },
}

impl fmt::Display for GbdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdtError::EmptyDataset => write!(f, "training data has no rows"),
            GbdtError::LabelLength { rows, labels } => {
                write!(f, "feature matrix has {rows} rows but {labels} labels were given")
            }
            GbdtError::InvalidParam { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            GbdtError::FeatureCount { expected, actual } => {
                write!(f, "model expects {expected} features, input has {actual}")
            }
            GbdtError::Decode(msg) => write!(f, "model decode error: {msg}"),
            GbdtError::NonBinaryLabel { row, value } => {
                write!(f, "logistic objective requires labels in {{0,1}}, row {row} has {value}")
            }
        }
    }
}

impl std::error::Error for GbdtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = GbdtError::FeatureCount { expected: 59, actual: 3 };
        let s = e.to_string();
        assert!(s.contains("59") && s.contains('3'));
    }
}
