//! Error types for training and inference.
//!
//! The taxonomy is split by pipeline stage so callers can be precise
//! about what they propagate: [`TrainError`] for everything reachable
//! while fitting a model, [`PredictError`] for everything reachable
//! while scoring or loading one. [`GbdtError`] is the crate umbrella
//! for APIs that cross both stages; it source-chains to the stage
//! error it wraps.

use std::fmt;

/// Errors reachable while fitting a model (bad data or parameters).
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Training data had no rows.
    EmptyDataset,
    /// Labels and feature matrix disagree on row count.
    LabelLength { rows: usize, labels: usize },
    /// A parameter value was out of its valid range.
    InvalidParam { name: &'static str, message: String },
    /// Logistic objective requires labels in {0, 1}.
    NonBinaryLabel { row: usize, value: f64 },
    /// Eval set width disagrees with the training matrix.
    EvalFeatureCount { expected: usize, actual: usize },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training data has no rows"),
            TrainError::LabelLength { rows, labels } => {
                write!(f, "feature matrix has {rows} rows but {labels} labels were given")
            }
            TrainError::InvalidParam { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TrainError::NonBinaryLabel { row, value } => {
                write!(f, "logistic objective requires labels in {{0,1}}, row {row} has {value}")
            }
            TrainError::EvalFeatureCount { expected, actual } => {
                write!(f, "eval set has {actual} features but training data has {expected}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Errors reachable while scoring with — or loading — a trained model.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// Prediction input has a different feature count than the model.
    FeatureCount { expected: usize, actual: usize },
    /// A serialised model could not be decoded.
    Decode(String),
    /// A batch-prediction pool job panicked; the panic was contained
    /// and `block` is deterministically the lowest failing block index
    /// (the pool's drain policy).
    Batch { block: usize, message: String },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::FeatureCount { expected, actual } => {
                write!(f, "model expects {expected} features, input has {actual}")
            }
            PredictError::Decode(msg) => write!(f, "model decode error: {msg}"),
            PredictError::Batch { block, message } => {
                write!(f, "batch prediction block {block} failed: {message}")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// Errors reachable while building, opening or training on a chunked
/// (out-of-core) binned matrix — see `crate::chunked`. Spilled chunk
/// files are untrusted input to `open`, so corruption is a first-class
/// variant rather than a panic.
#[derive(Debug)]
pub enum ChunkError {
    /// The spill file could not be read or written.
    Io(std::io::Error),
    /// The spill file failed structural or checksum validation.
    /// `what` names the field or region, `detail` says how it failed.
    Corrupt { what: &'static str, detail: String },
    /// A training-stage failure (bad parameters or labels).
    Train(TrainError),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Io(e) => write!(f, "chunk store I/O error: {e}"),
            ChunkError::Corrupt { what, detail } => {
                write!(f, "corrupt chunk store ({what}): {detail}")
            }
            ChunkError::Train(e) => write!(f, "chunked training failed: {e}"),
        }
    }
}

impl std::error::Error for ChunkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChunkError::Io(e) => Some(e),
            ChunkError::Train(e) => Some(e),
            ChunkError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for ChunkError {
    fn from(e: std::io::Error) -> Self {
        ChunkError::Io(e)
    }
}

impl From<TrainError> for ChunkError {
    fn from(e: TrainError) -> Self {
        ChunkError::Train(e)
    }
}

/// Crate umbrella over the per-stage errors, for callers that cross
/// both stages (e.g. load-then-score, train-then-evaluate).
#[derive(Debug, Clone, PartialEq)]
pub enum GbdtError {
    /// A training-stage failure.
    Train(TrainError),
    /// A prediction-stage failure.
    Predict(PredictError),
}

impl fmt::Display for GbdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdtError::Train(e) => write!(f, "training failed: {e}"),
            GbdtError::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for GbdtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GbdtError::Train(e) => Some(e),
            GbdtError::Predict(e) => Some(e),
        }
    }
}

impl From<TrainError> for GbdtError {
    fn from(e: TrainError) -> Self {
        GbdtError::Train(e)
    }
}

impl From<PredictError> for GbdtError {
    fn from(e: PredictError) -> Self {
        GbdtError::Predict(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn messages_carry_context() {
        let e = PredictError::FeatureCount { expected: 59, actual: 3 };
        let s = e.to_string();
        assert!(s.contains("59") && s.contains('3'));
    }

    #[test]
    fn umbrella_chains_to_the_stage_error() {
        let e = GbdtError::from(TrainError::EmptyDataset);
        let src = e.source().expect("umbrella has a source");
        assert_eq!(src.to_string(), TrainError::EmptyDataset.to_string());
        assert!(e.to_string().contains("training failed"));
    }
}
