//! Regression tree structure shared by training, prediction and TreeSHAP.

use serde::{Deserialize, Serialize};

/// A node in a tree, stored in a flat `Vec` (index 0 = root).
///
/// Both internal nodes and leaves carry `cover` (the sum of hessians of
/// the training rows that reached the node) because path-dependent
/// TreeSHAP weights branches by `cover(child) / cover(parent)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An internal split node.
    Split {
        /// Feature index tested by this node.
        feature: usize,
        /// Rows with `value < threshold` go left.
        threshold: f64,
        /// Where rows with a missing value go.
        default_left: bool,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
        /// Sum of hessians reaching this node.
        cover: f64,
        /// Gain realised by this split (used for importances).
        gain: f64,
    },
    /// A terminal node holding a weight (already shrunk by the
    /// learning rate).
    Leaf {
        /// Contribution added to the raw score.
        weight: f64,
        /// Sum of hessians reaching this leaf.
        cover: f64,
    },
}

impl Node {
    /// Cover of the node regardless of kind.
    pub fn cover(&self) -> f64 {
        match self {
            Node::Split { cover, .. } | Node::Leaf { cover, .. } => *cover,
        }
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }
}

/// One regression tree of the ensemble.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// An empty tree under construction.
    pub fn new() -> Self {
        Tree { nodes: Vec::new() }
    }

    /// Append a node, returning its index.
    pub fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Wrap an already-grown node list (root at index 0, child indices
    /// tree-relative) — how the scratch arena materialises its trees.
    pub(crate) fn from_nodes(nodes: Vec<Node>) -> Tree {
        Tree { nodes }
    }

    /// All nodes (root at index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth (root = 0). Empty tree → 0.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0usize;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((idx, d)) = stack.pop() {
            max = max.max(d);
            if let Node::Split { left, right, .. } = self.nodes[idx] {
                stack.push((left, d + 1));
                stack.push((right, d + 1));
            }
        }
        max
    }

    /// Index of the leaf a feature row falls into.
    pub fn leaf_index(&self, row: &[f64]) -> usize {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split { feature, threshold, default_left, left, right, .. } => {
                    let v = row[*feature];
                    idx = if v.is_nan() {
                        if *default_left {
                            *left
                        } else {
                            *right
                        }
                    } else if v < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Raw score contribution of this tree for one row.
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match &self.nodes[self.leaf_index(row)] {
            Node::Leaf { weight, .. } => *weight,
            Node::Split { .. } => unreachable!("leaf_index returns a leaf"),
        }
    }

    /// Structural sanity check used by tests and deserialisation:
    /// child indices in range, no cycles, every non-root reachable once.
    pub fn validate(&self) -> bool {
        check_structure(&self.nodes, None).is_ok()
    }

    /// [`Tree::validate`] with a located verdict: the first defect is
    /// returned with the offending node index, and split features are
    /// additionally bounds-checked against `n_features`. Decoding uses
    /// this so a malformed artifact is rejected *at decode time* with an
    /// error naming the node, instead of panicking at predict time.
    pub fn check_structure(&self, n_features: usize) -> Result<(), TreeDefect> {
        check_structure(&self.nodes, Some(n_features))
    }
}

/// A structural defect in a tree's node list, locating the offending
/// node (indices are tree-relative, root = 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeDefect {
    /// The tree has no nodes at all.
    Empty,
    /// A split node tests a feature the model does not have.
    FeatureOutOfRange {
        /// Offending node index.
        node: usize,
        /// The out-of-range feature it tests.
        feature: usize,
        /// The model's feature count.
        n_features: usize,
    },
    /// A split node points at a child index outside the tree.
    ChildOutOfRange {
        /// Offending split node index.
        node: usize,
        /// The out-of-range child index it holds.
        child: usize,
        /// The tree's node count.
        len: usize,
    },
    /// A node is reached by more than one parent (a cycle or diamond),
    /// so the node list is not tree-shaped.
    NotATree {
        /// The node reached twice.
        node: usize,
    },
    /// A node is unreachable from the root.
    Unreachable {
        /// The orphaned node.
        node: usize,
    },
}

impl std::fmt::Display for TreeDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeDefect::Empty => write!(f, "tree has no nodes"),
            TreeDefect::FeatureOutOfRange { node, feature, n_features } => {
                write!(f, "node {node} splits on feature {feature} but the model has {n_features}")
            }
            TreeDefect::ChildOutOfRange { node, child, len } => {
                write!(f, "node {node} has child index {child} outside the tree ({len} nodes)")
            }
            TreeDefect::NotATree { node } => {
                write!(f, "node {node} is reached by more than one parent")
            }
            TreeDefect::Unreachable { node } => {
                write!(f, "node {node} is unreachable from the root")
            }
        }
    }
}

/// Shared walker behind [`Tree::validate`] and [`Tree::check_structure`].
/// Feature bounds are only checked when `n_features` is given (the
/// boolean `validate` predates models knowing their width here).
fn check_structure(nodes: &[Node], n_features: Option<usize>) -> Result<(), TreeDefect> {
    if nodes.is_empty() {
        return Err(TreeDefect::Empty);
    }
    let n = nodes.len();
    // Index-order pre-pass so the *lowest* offending node is reported
    // deterministically, before reachability (which visits DFS-order).
    for (idx, node) in nodes.iter().enumerate() {
        if let Node::Split { feature, left, right, .. } = node {
            if let Some(width) = n_features {
                if *feature >= width {
                    return Err(TreeDefect::FeatureOutOfRange {
                        node: idx,
                        feature: *feature,
                        n_features: width,
                    });
                }
            }
            for child in [*left, *right] {
                if child >= n {
                    return Err(TreeDefect::ChildOutOfRange { node: idx, child, len: n });
                }
            }
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(idx) = stack.pop() {
        if seen[idx] {
            return Err(TreeDefect::NotATree { node: idx });
        }
        seen[idx] = true;
        if let Node::Split { left, right, .. } = nodes[idx] {
            stack.push(left);
            stack.push(right);
        }
    }
    match seen.iter().position(|s| !s) {
        Some(node) => Err(TreeDefect::Unreachable { node }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root: x0 < 0.5 ? leaf(-1) : (x1 < 2 ? leaf(1) : leaf(3)), missing x0 → right
    pub(crate) fn sample_tree() -> Tree {
        let mut t = Tree::new();
        t.push(Node::Split {
            feature: 0,
            threshold: 0.5,
            default_left: false,
            left: 1,
            right: 2,
            cover: 10.0,
            gain: 5.0,
        });
        t.push(Node::Leaf { weight: -1.0, cover: 4.0 });
        t.push(Node::Split {
            feature: 1,
            threshold: 2.0,
            default_left: true,
            left: 3,
            right: 4,
            cover: 6.0,
            gain: 2.0,
        });
        t.push(Node::Leaf { weight: 1.0, cover: 3.0 });
        t.push(Node::Leaf { weight: 3.0, cover: 3.0 });
        t
    }

    #[test]
    fn routing_follows_thresholds() {
        let t = sample_tree();
        assert_eq!(t.predict_row(&[0.0, 0.0]), -1.0);
        assert_eq!(t.predict_row(&[1.0, 0.0]), 1.0);
        assert_eq!(t.predict_row(&[1.0, 5.0]), 3.0);
    }

    #[test]
    fn missing_values_follow_default_direction() {
        let t = sample_tree();
        // x0 missing → right; x1 = 5 → right leaf(3).
        assert_eq!(t.predict_row(&[f64::NAN, 5.0]), 3.0);
        // x0 = 1 → right; x1 missing → default left → leaf(1).
        assert_eq!(t.predict_row(&[1.0, f64::NAN]), 1.0);
    }

    #[test]
    fn boundary_value_goes_right() {
        // `value < threshold` goes left, so the threshold itself goes right.
        let t = sample_tree();
        assert_eq!(t.predict_row(&[0.5, 0.0]), 1.0);
    }

    #[test]
    fn structure_statistics() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 2);
        assert!(t.validate());
    }

    #[test]
    fn validate_rejects_out_of_range_children() {
        let mut t = Tree::new();
        t.push(Node::Split {
            feature: 0,
            threshold: 0.0,
            default_left: true,
            left: 7,
            right: 8,
            cover: 1.0,
            gain: 0.0,
        });
        assert!(!t.validate());
    }

    #[test]
    fn validate_rejects_unreachable_nodes() {
        let mut t = Tree::new();
        t.push(Node::Leaf { weight: 0.0, cover: 1.0 });
        t.push(Node::Leaf { weight: 0.0, cover: 1.0 }); // orphan
        assert!(!t.validate());
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(!Tree::new().validate());
    }

    #[test]
    fn check_structure_accepts_sample_tree() {
        assert_eq!(sample_tree().check_structure(2), Ok(()));
    }

    #[test]
    fn check_structure_names_out_of_range_feature() {
        let t = sample_tree();
        // Feature 1 (tested at node 2) is out of range for a 1-wide model.
        assert_eq!(
            t.check_structure(1),
            Err(TreeDefect::FeatureOutOfRange { node: 2, feature: 1, n_features: 1 })
        );
    }

    #[test]
    fn check_structure_names_out_of_range_child() {
        let mut t = Tree::new();
        t.push(Node::Split {
            feature: 0,
            threshold: 0.0,
            default_left: true,
            left: 1,
            right: 9,
            cover: 1.0,
            gain: 0.0,
        });
        t.push(Node::Leaf { weight: 0.0, cover: 1.0 });
        assert_eq!(
            t.check_structure(1),
            Err(TreeDefect::ChildOutOfRange { node: 0, child: 9, len: 2 })
        );
    }

    #[test]
    fn check_structure_rejects_cycles_and_orphans() {
        // Root pointing at itself: reached twice.
        let mut cyclic = Tree::new();
        cyclic.push(Node::Split {
            feature: 0,
            threshold: 0.0,
            default_left: true,
            left: 0,
            right: 1,
            cover: 1.0,
            gain: 0.0,
        });
        cyclic.push(Node::Leaf { weight: 0.0, cover: 1.0 });
        assert_eq!(cyclic.check_structure(1), Err(TreeDefect::NotATree { node: 0 }));

        let mut orphan = Tree::new();
        orphan.push(Node::Leaf { weight: 0.0, cover: 1.0 });
        orphan.push(Node::Leaf { weight: 0.0, cover: 1.0 });
        assert_eq!(orphan.check_structure(1), Err(TreeDefect::Unreachable { node: 1 }));
        assert_eq!(Tree::new().check_structure(1), Err(TreeDefect::Empty));
    }
}
