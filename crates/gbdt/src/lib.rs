//! # msaw-gbdt
//!
//! Gradient-boosted decision trees built from scratch for the MySAwH
//! reproduction, following the XGBoost formulation (Chen & Guestrin,
//! KDD'16) the paper used:
//!
//! * second-order (gradient + hessian) split gain with L2 leaf
//!   regularisation (`lambda`) and a split penalty (`gamma`);
//! * **sparsity-aware** split enumeration: every split learns a default
//!   direction for missing values (`NaN`s) by trying both sides;
//! * shrinkage (`learning_rate`), row subsampling and per-tree column
//!   subsampling;
//! * two objectives — squared error for regression (QoL, SPPB) and
//!   logistic loss with `scale_pos_weight` for the imbalanced Falls
//!   classification;
//! * two split finders behind one API — the exact greedy enumerator and
//!   a histogram finder over quantile-sketch bins (the paper's learner
//!   supports both; they form one of our ablation benches);
//! * early stopping against a held-out evaluation set;
//! * gain / cover / frequency feature importances;
//! * binary model (de)serialisation;
//! * a shared-preparation engine: [`TrainingContext`] indexes and bins a
//!   matrix once, then [`Booster::train_on_rows`] trains any number of
//!   models on row-index views of it — bit-for-bit identical (exact
//!   method) to copying the rows out and training from scratch, which
//!   is what makes repeated CV/grid fits cheap (see `context`/`engine`).
//!
//! The tree layout (flat node arrays carrying per-node covers) is chosen
//! so `msaw-shap` can run exact path-dependent TreeSHAP over it.
//!
//! ```
//! use msaw_gbdt::{Booster, Params};
//! use msaw_tabular::Matrix;
//!
//! // y = x0, with one feature: a stump learns it quickly.
//! let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0]]);
//! let y = vec![0.0, 0.0, 1.0, 1.0];
//! let params = Params { n_estimators: 80, max_depth: 2, ..Params::regression() };
//! let model = Booster::train(&params, &x, &y).unwrap();
//! let preds = model.predict(&x);
//! assert!((preds[0] - 0.0).abs() < 0.1);
//! assert!((preds[2] - 1.0).abs() < 0.1);
//! ```

pub mod artifact;
pub mod binning;
pub mod booster;
pub mod chunked;
pub mod context;
mod engine;
pub mod error;
pub mod forest;
pub mod importance;
pub mod objective;
pub mod params;
pub mod serialize;
pub mod simd;
pub mod split;
pub mod tree;

pub use artifact::{fnv1a_64, ModelArtifact, ARTIFACT_VERSION};
pub use booster::{Booster, EvalRecord, FitRun, TrainReport};
pub use chunked::{
    encode_rows, predict_rows_chunked, train_chunked, train_chunked_on, ChunkedFitRun,
    ChunkedMatrix, ChunkedMatrixBuilder, ChunkedView, CutSketch, DEFAULT_BLOCK_ROWS,
    DEFAULT_SKETCH_DISTINCT,
};
pub use context::{ContextCache, ExactIndex, TrainingContext, MISSING_RANK};
#[doc(hidden)]
pub use engine::build_hists_for_bench;
pub use engine::TreeScratch;
pub use error::{ChunkError, GbdtError, PredictError, TrainError};
pub use forest::FlatForest;
pub use importance::{FeatureImportance, ImportanceKind};
pub use objective::Objective;
pub use params::{Params, TreeMethod, DEFAULT_CONTEXT_BINS};
pub use simd::SimdLevel;
pub use tree::{Node, Tree, TreeDefect};

/// Crate-wide result alias; the default error is the [`GbdtError`]
/// umbrella, but stage-specific APIs narrow it (`Result<T, TrainError>`,
/// `Result<T, PredictError>`).
pub type Result<T, E = GbdtError> = std::result::Result<T, E>;
