//! Runtime-dispatched SIMD kernels for the two hottest loops: flat-forest
//! traversal (prediction) and gradient/hessian histogram accumulation
//! (training).
//!
//! ## Dispatch strategy
//!
//! The toolchain is stable Rust, so kernels are written against
//! `std::arch` intrinsics and selected at **runtime**:
//!
//! 1. a process-wide forced level set through [`force_level`] (test hook)
//!    wins if present;
//! 2. otherwise the `MSAW_FORCE_SCALAR` environment variable (any value
//!    other than empty or `0`) pins the scalar fallback — read once and
//!    cached, like the rest of the process' env-derived config;
//! 3. otherwise the best level the CPU supports, probed via
//!    `is_x86_feature_detected!` (always [`SimdLevel::Scalar`] off
//!    x86_64).
//!
//! Forced levels are clamped to the detected capability, so forcing
//! [`SimdLevel::Avx2`] on a machine without AVX2 degrades to scalar
//! instead of executing unsupported instructions.
//!
//! ## Bit-identity contract
//!
//! Every SIMD path must produce results **bitwise equal** to the scalar
//! code it replaces (which is kept compiled on every target as the
//! fallback). The kernels only use operations with exact IEEE semantics:
//!
//! * traversal: `_CMP_LT_OQ` is precisely the scalar `v < t` (false for
//!   NaN), gathers/selects move bits without rounding, and each lane's
//!   leaf weights are added to its accumulator in tree order — the same
//!   operands in the same order as the scalar lockstep walk;
//! * histograms: lanes never share an accumulator cell, each `(g, h)`
//!   cell takes the same two IEEE additions per row in the same row
//!   order (a 128-bit pair-add is two independent f64 adds), and the
//!   subtraction trick stays element-wise.
//!
//! The equivalence is locked by `tests/simd_equivalence.rs` and by the
//! archived `results/*.txt`, which must regenerate byte-identical with
//! SIMD enabled.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A vector capability tier the kernels can target. Ordered: higher
/// levels strictly extend lower ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// The always-available scalar fallback (the pre-SIMD code paths,
    /// kept verbatim).
    Scalar,
    /// AVX2 gathers + 256-bit lanes (x86_64 only).
    Avx2,
    /// AVX-512F gathers + 512-bit lanes (x86_64 only) — the same
    /// traversal algorithm as the AVX2 tier at eight lanes per vector.
    Avx512,
}

/// Process-wide forced level: 0 = none, 1 = Scalar, 2 = Avx2, 3 = Avx512.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Best level the running CPU supports.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// The level the environment selects when nothing is forced in-process:
/// `MSAW_FORCE_SCALAR` pins scalar, otherwise the detected capability.
fn env_level() -> SimdLevel {
    static ENV: OnceLock<SimdLevel> = OnceLock::new();
    *ENV.get_or_init(|| {
        let forced_scalar =
            std::env::var_os("MSAW_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        if forced_scalar {
            SimdLevel::Scalar
        } else {
            detected_level()
        }
    })
}

/// The level the kernels will dispatch on for the next batch/round.
/// Entry points read this once per call, so a level change never lands
/// mid-kernel.
pub fn active_level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2.min(detected_level()),
        3 => SimdLevel::Avx512.min(detected_level()),
        _ => env_level(),
    }
}

/// Test/bench hook: force a dispatch level process-wide (`None` restores
/// the environment/detected default). Levels above the detected
/// capability are clamped at dispatch time, so this can never select an
/// unsupported instruction set.
#[doc(hidden)]
pub fn force_level(level: Option<SimdLevel>) {
    let code = match level {
        None => 0,
        Some(SimdLevel::Scalar) => 1,
        Some(SimdLevel::Avx2) => 2,
        Some(SimdLevel::Avx512) => 3,
    };
    FORCED.store(code, Ordering::Relaxed);
}

/// Human-readable name of the active kernel tier (bench/report labels).
pub fn kernel_name() -> &'static str {
    match active_level() {
        SimdLevel::Scalar => "scalar",
        SimdLevel::Avx2 => "avx2",
        SimdLevel::Avx512 => "avx512",
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    //! AVX2 and AVX-512 kernels. Everything here assumes the caller
    //! verified the matching CPU capability ([`super::active_level`]
    //! never returns a level the CPU lacks).

    use crate::forest::{FlatNode, FLAT_DEFAULT_LEFT_BIT};
    use std::arch::x86_64::*;

    /// f64 lanes per 256-bit vector.
    const QUAD: usize = 4;
    /// Quads walked in lockstep per tree: enough independent gather
    /// chains to hide gather latency.
    const UNROLL: usize = 4;
    /// Rows per lockstep group.
    pub(crate) const GROUP: usize = QUAD * UNROLL;

    /// One routing hop for four rows: gather the node fields for four
    /// (possibly distinct) node indices, gather each row's feature
    /// value, and select the child index per lane.
    ///
    /// `FlatNode` is `#[repr(C)]`, 24 bytes: threshold at byte 0,
    /// children pair at byte 8, feature word at byte 16 (asserted at
    /// compile time in `forest.rs`), so for node index `i` the gathers
    /// use f64/i64 index `3i` (scale 8) and i32 index `6i + 4`
    /// (scale 4) — the latter avoids touching the 4 padding bytes.
    ///
    /// # Safety
    ///
    /// Every lane of `idx` must be a valid node index, every lane of
    /// `row_off + feature` a valid index into `data` — guaranteed by
    /// `FlatForest`'s construction-time validation (features
    /// `< n_features`, children in range) plus the dispatcher's row
    /// bounds checks. Requires AVX2.
    #[inline(always)]
    unsafe fn step_quad(
        node_ptr: *const FlatNode,
        data_ptr: *const f64,
        idx: __m256i,
        row_off: __m256i,
        lane_mask: __m256i,
        feat_mask: __m128i,
    ) -> __m256i {
        let i3 = _mm256_add_epi64(_mm256_add_epi64(idx, idx), idx);
        let t = _mm256_i64gather_pd::<8>(node_ptr as *const f64, i3);
        let ch = _mm256_i64gather_epi64::<8>((node_ptr as *const u8).add(8) as *const i64, i3);
        let i6p4 = _mm256_add_epi64(_mm256_add_epi64(i3, i3), _mm256_set1_epi64x(4));
        let fd = _mm256_i64gather_epi32::<4>(node_ptr as *const i32, i6p4);
        let col = _mm256_cvtepu32_epi64(_mm_and_si128(fd, feat_mask));
        let v = _mm256_i64gather_pd::<8>(data_ptr, _mm256_add_epi64(row_off, col));
        // go_left = (v < t) | (isnan(v) & default_left): LT_OQ is false
        // for NaN (exactly the scalar `v < t`), UNORD_Q is the NaN test,
        // and sign-extending the feature word puts the default-left bit
        // in the lane's sign bit — the only bit blendv consults.
        let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(v, t);
        let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(v, v);
        let dl = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(fd));
        let go_left = _mm256_or_pd(lt, _mm256_and_pd(unord, dl));
        let left = _mm256_and_si256(ch, lane_mask);
        let right = _mm256_srli_epi64::<32>(ch);
        _mm256_castpd_si256(_mm256_blendv_pd(
            _mm256_castsi256_pd(right),
            _mm256_castsi256_pd(left),
            go_left,
        ))
    }

    /// The AVX2 twin of `FlatForest::accumulate`: add every tree's leaf
    /// weight for the rows described by `row_off` (per output row, the
    /// f64 index of that row's first feature in `data`) into `out`.
    /// Trees outer, [`GROUP`] rows in lockstep inside; the per-tree
    /// remainder (`< GROUP` rows) walks scalar hops that mirror
    /// `step_unchecked` exactly.
    ///
    /// # Safety
    ///
    /// Requires AVX2. `nodes`/`roots`/`depths` must be a validated
    /// forest (as built by `FlatForest::from_trees`), `row_off.len()`
    /// must equal `out.len()`, and every `row_off[k] + f` for
    /// `f < n_features` must index into `data`. Trees of depth > 0
    /// imply `n_features > 0`, so the leaf self-loop's column-0 gather
    /// stays in bounds.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn accumulate_avx2(
        nodes: &[FlatNode],
        roots: &[u32],
        depths: &[u16],
        data: &[f64],
        row_off: &[i64],
        out: &mut [f64],
    ) {
        let n = out.len();
        debug_assert_eq!(row_off.len(), n);
        let node_ptr = nodes.as_ptr();
        let data_ptr = data.as_ptr();
        let lane_mask = _mm256_set1_epi64x(0xFFFF_FFFF);
        let feat_mask = _mm_set1_epi32((!FLAT_DEFAULT_LEFT_BIT) as i32);
        for (t, &root) in roots.iter().enumerate() {
            let depth = *depths.get_unchecked(t) as usize;
            if depth == 0 {
                let w = nodes.get_unchecked(root as usize).threshold;
                for o in out.iter_mut() {
                    *o += w;
                }
                continue;
            }
            let root_v = _mm256_set1_epi64x(root as i64);
            let mut base = 0usize;
            while base + GROUP <= n {
                let mut off = [_mm256_setzero_si256(); UNROLL];
                let mut idx = [root_v; UNROLL];
                for (q, o) in off.iter_mut().enumerate() {
                    *o =
                        _mm256_loadu_si256(row_off.as_ptr().add(base + q * QUAD) as *const __m256i);
                }
                for _ in 0..depth {
                    for q in 0..UNROLL {
                        idx[q] =
                            step_quad(node_ptr, data_ptr, idx[q], off[q], lane_mask, feat_mask);
                    }
                }
                for (q, &i) in idx.iter().enumerate() {
                    let i3 = _mm256_add_epi64(_mm256_add_epi64(i, i), i);
                    let w = _mm256_i64gather_pd::<8>(node_ptr as *const f64, i3);
                    let op = out.as_mut_ptr().add(base + q * QUAD);
                    _mm256_storeu_pd(op, _mm256_add_pd(_mm256_loadu_pd(op), w));
                }
                base += GROUP;
            }
            for k in base..n {
                let ro = *row_off.get_unchecked(k) as usize;
                let mut i = root as usize;
                for _ in 0..depth {
                    let node = nodes.get_unchecked(i);
                    let fd = node.feature_and_default;
                    let v = *data_ptr.add(ro + (fd & !FLAT_DEFAULT_LEFT_BIT) as usize);
                    let go_left =
                        (v < node.threshold) | (v.is_nan() & (fd & FLAT_DEFAULT_LEFT_BIT != 0));
                    i = *node.children.get_unchecked(usize::from(!go_left)) as usize;
                }
                *out.get_unchecked_mut(k) += nodes.get_unchecked(i).threshold;
            }
        }
    }

    /// f64 lanes per 512-bit vector.
    const OCT: usize = 8;
    /// Octs walked in lockstep per tree by the AVX-512 kernel.
    const UNROLL512: usize = 4;
    /// Rows per AVX-512 lockstep group.
    pub(crate) const GROUP512: usize = OCT * UNROLL512;

    /// [`step_quad`] at eight lanes: one hop for eight rows using
    /// AVX-512F gathers and mask registers. The byte-offset addressing
    /// is identical (`8 × 3i` for threshold/children, `4 × (6i + 4)`
    /// for the feature word); the routing predicate composes in a
    /// `__mmask8` instead of a sign-bit vector.
    ///
    /// # Safety
    ///
    /// Same contract as [`step_quad`]; requires AVX-512F.
    #[inline(always)]
    unsafe fn step_oct(
        node_ptr: *const FlatNode,
        data_ptr: *const f64,
        idx: __m512i,
        row_off: __m512i,
        lane_mask: __m512i,
        feat_mask: __m256i,
    ) -> __m512i {
        let i3 = _mm512_add_epi64(_mm512_add_epi64(idx, idx), idx);
        let t = _mm512_i64gather_pd::<8>(i3, node_ptr as *const f64);
        let ch = _mm512_i64gather_epi64::<8>(i3, (node_ptr as *const u8).add(8) as *const i64);
        let i6p4 = _mm512_add_epi64(_mm512_add_epi64(i3, i3), _mm512_set1_epi64(4));
        let fd = _mm512_i64gather_epi32::<4>(i6p4, node_ptr as *const i32);
        let col = _mm512_cvtepu32_epi64(_mm256_and_si256(fd, feat_mask));
        let v = _mm512_i64gather_pd::<8>(_mm512_add_epi64(row_off, col), data_ptr);
        // go_left = (v < t) | (isnan(v) & default_left), composed in a
        // k-register; cmplt on the sign-extended feature word reads the
        // default-left bit.
        let lt = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, t);
        let unord = _mm512_cmp_pd_mask::<_CMP_UNORD_Q>(v, v);
        let dl = _mm512_cmplt_epi64_mask(_mm512_cvtepi32_epi64(fd), _mm512_setzero_si512());
        let go_left = lt | (unord & dl);
        let left = _mm512_and_si512(ch, lane_mask);
        let right = _mm512_srli_epi64::<32>(ch);
        _mm512_mask_blend_epi64(go_left, right, left)
    }

    /// [`accumulate_avx2`] at eight lanes per vector ([`GROUP512`] rows
    /// in lockstep per tree). Same structure, same remainder handling,
    /// same bit-identity argument.
    ///
    /// # Safety
    ///
    /// Same contract as [`accumulate_avx2`]; requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn accumulate_avx512(
        nodes: &[FlatNode],
        roots: &[u32],
        depths: &[u16],
        data: &[f64],
        row_off: &[i64],
        out: &mut [f64],
    ) {
        let n = out.len();
        debug_assert_eq!(row_off.len(), n);
        let node_ptr = nodes.as_ptr();
        let data_ptr = data.as_ptr();
        let lane_mask = _mm512_set1_epi64(0xFFFF_FFFF);
        let feat_mask = _mm256_set1_epi32((!FLAT_DEFAULT_LEFT_BIT) as i32);
        for (t, &root) in roots.iter().enumerate() {
            let depth = *depths.get_unchecked(t) as usize;
            if depth == 0 {
                let w = nodes.get_unchecked(root as usize).threshold;
                for o in out.iter_mut() {
                    *o += w;
                }
                continue;
            }
            let root_v = _mm512_set1_epi64(root as i64);
            let mut base = 0usize;
            while base + GROUP512 <= n {
                let mut off = [_mm512_setzero_si512(); UNROLL512];
                let mut idx = [root_v; UNROLL512];
                for (q, o) in off.iter_mut().enumerate() {
                    *o = _mm512_loadu_si512(row_off.as_ptr().add(base + q * OCT) as *const _);
                }
                for _ in 0..depth {
                    for q in 0..UNROLL512 {
                        idx[q] = step_oct(node_ptr, data_ptr, idx[q], off[q], lane_mask, feat_mask);
                    }
                }
                for (q, &i) in idx.iter().enumerate() {
                    let i3 = _mm512_add_epi64(_mm512_add_epi64(i, i), i);
                    let w = _mm512_i64gather_pd::<8>(i3, node_ptr as *const f64);
                    let op = out.as_mut_ptr().add(base + q * OCT);
                    _mm512_storeu_pd(op, _mm512_add_pd(_mm512_loadu_pd(op), w));
                }
                base += GROUP512;
            }
            for k in base..n {
                let ro = *row_off.get_unchecked(k) as usize;
                let mut i = root as usize;
                for _ in 0..depth {
                    let node = nodes.get_unchecked(i);
                    let fd = node.feature_and_default;
                    let v = *data_ptr.add(ro + (fd & !FLAT_DEFAULT_LEFT_BIT) as usize);
                    let go_left =
                        (v < node.threshold) | (v.is_nan() & (fd & FLAT_DEFAULT_LEFT_BIT != 0));
                    i = *node.children.get_unchecked(usize::from(!go_left)) as usize;
                }
                *out.get_unchecked_mut(k) += nodes.get_unchecked(i).threshold;
            }
        }
    }

    /// `cell += (g, h)` as one 128-bit add: two independent IEEE f64
    /// additions, bit-identical to the scalar pair. SSE2 is part of the
    /// x86_64 baseline, so this needs no capability check.
    #[inline(always)]
    pub(crate) fn pair_add(cell: &mut [f64; 2], gh: __m128d) {
        // SAFETY: `cell` is a valid pair; unaligned load/store has no
        // alignment requirement.
        unsafe {
            let cur = _mm_loadu_pd(cell.as_ptr());
            _mm_storeu_pd(cell.as_mut_ptr(), _mm_add_pd(cur, gh));
        }
    }

    /// Pack `(g, h)` into the lane order [`pair_add`] expects
    /// (`g` low, matching `[f64; 2]` memory order).
    #[inline(always)]
    pub(crate) fn pack_gh(g: f64, h: f64) -> __m128d {
        // SAFETY: no memory access.
        unsafe { _mm_set_pd(h, g) }
    }

    /// Load a histogram cell as a 128-bit lane pair (`g` low), the
    /// counterpart of [`pair_add`] for read-only operands.
    #[inline(always)]
    pub(crate) fn load_pair(cell: &[f64; 2]) -> __m128d {
        // SAFETY: `cell` is a valid pair; unaligned load has no
        // alignment requirement.
        unsafe { _mm_loadu_pd(cell.as_ptr()) }
    }

    /// Element-wise `a[i] -= b[i]` over flattened histogram cells, four
    /// f64 lanes at a time — each subtraction is the same single IEEE
    /// operation the scalar loop performs on that cell.
    ///
    /// # Safety
    ///
    /// Requires AVX2. Slices must be equally long (the scalar `zip`
    /// truncates; callers only ever pass equal lengths).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sub_f64_avx2(a: &mut [f64], b: &[f64]) {
        let n = a.len().min(b.len());
        let mut i = 0usize;
        while i + QUAD <= n {
            let ap = a.as_mut_ptr().add(i);
            let d = _mm256_sub_pd(_mm256_loadu_pd(ap), _mm256_loadu_pd(b.as_ptr().add(i)));
            _mm256_storeu_pd(ap, d);
            i += QUAD;
        }
        while i < n {
            *a.get_unchecked_mut(i) -= *b.get_unchecked(i);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `force_level` is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn forced_level_clamps_to_detected_capability() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Forcing Avx2 must never exceed what the CPU supports.
        force_level(Some(SimdLevel::Avx2));
        assert!(active_level() <= detected_level());
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(active_level(), SimdLevel::Scalar);
        force_level(None);
        assert!(active_level() <= detected_level());
    }

    #[test]
    fn kernel_name_matches_level() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(kernel_name(), "scalar");
        force_level(None);
        assert!(active_level() <= detected_level());
    }
}
