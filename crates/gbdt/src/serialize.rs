//! Compact binary (de)serialisation of trained boosters.
//!
//! Format (little endian via `bytes`):
//! `b"MSGB"` magic · `u16` version · objective tag (+payload) ·
//! `f64` base score · `u32` feature count · `u32` tree count ·
//! per tree: `u32` node count · tagged nodes.

use crate::booster::Booster;
use crate::error::PredictError;
use crate::objective::Objective;
use crate::tree::{Node, Tree};
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MSGB";
const VERSION: u16 = 1;

const OBJ_SQUARED: u8 = 0;
const OBJ_LOGISTIC: u8 = 1;
const NODE_LEAF: u8 = 0;
const NODE_SPLIT: u8 = 1;

/// Encode a trained model into a byte buffer.
pub fn encode(model: &Booster) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + model.trees().len() * 256);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    match model.objective() {
        Objective::SquaredError => buf.put_u8(OBJ_SQUARED),
        Objective::Logistic { scale_pos_weight } => {
            buf.put_u8(OBJ_LOGISTIC);
            buf.put_f64_le(scale_pos_weight);
        }
    }
    buf.put_f64_le(model.base_score());
    buf.put_u32_le(model.n_features() as u32);
    buf.put_u32_le(model.trees().len() as u32);
    for tree in model.trees() {
        buf.put_u32_le(tree.len() as u32);
        for node in tree.nodes() {
            match node {
                Node::Leaf { weight, cover } => {
                    buf.put_u8(NODE_LEAF);
                    buf.put_f64_le(*weight);
                    buf.put_f64_le(*cover);
                }
                Node::Split { feature, threshold, default_left, left, right, cover, gain } => {
                    buf.put_u8(NODE_SPLIT);
                    buf.put_u32_le(*feature as u32);
                    buf.put_f64_le(*threshold);
                    buf.put_u8(u8::from(*default_left));
                    buf.put_u32_le(*left as u32);
                    buf.put_u32_le(*right as u32);
                    buf.put_f64_le(*cover);
                    buf.put_f64_le(*gain);
                }
            }
        }
    }
    buf.freeze()
}

/// Decode a model previously produced by [`encode`].
pub fn decode(mut data: &[u8]) -> Result<Booster, PredictError> {
    fn need(data: &[u8], n: usize, what: &str) -> Result<(), PredictError> {
        if data.remaining() < n {
            Err(PredictError::Decode(format!("truncated input while reading {what}")))
        } else {
            Ok(())
        }
    }
    need(data, 6, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PredictError::Decode("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(PredictError::Decode(format!("unsupported version {version}")));
    }
    need(data, 1, "objective")?;
    let objective = match data.get_u8() {
        OBJ_SQUARED => Objective::SquaredError,
        OBJ_LOGISTIC => {
            need(data, 8, "scale_pos_weight")?;
            Objective::Logistic { scale_pos_weight: data.get_f64_le() }
        }
        other => return Err(PredictError::Decode(format!("unknown objective tag {other}"))),
    };
    need(data, 16, "base score and counts")?;
    let base_score = data.get_f64_le();
    let n_features = data.get_u32_le() as usize;
    let n_trees = data.get_u32_le() as usize;
    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        need(data, 4, "tree node count")?;
        let n_nodes = data.get_u32_le() as usize;
        let mut tree = Tree::new();
        for _ in 0..n_nodes {
            need(data, 1, "node tag")?;
            match data.get_u8() {
                NODE_LEAF => {
                    need(data, 16, "leaf")?;
                    let weight = data.get_f64_le();
                    let cover = data.get_f64_le();
                    tree.push(Node::Leaf { weight, cover });
                }
                NODE_SPLIT => {
                    need(data, 4 + 8 + 1 + 4 + 4 + 8 + 8, "split")?;
                    let feature = data.get_u32_le() as usize;
                    let threshold = data.get_f64_le();
                    let default_left = data.get_u8() != 0;
                    let left = data.get_u32_le() as usize;
                    let right = data.get_u32_le() as usize;
                    let cover = data.get_f64_le();
                    let gain = data.get_f64_le();
                    tree.push(Node::Split {
                        feature,
                        threshold,
                        default_left,
                        left,
                        right,
                        cover,
                        gain,
                    });
                }
                other => return Err(PredictError::Decode(format!("unknown node tag {other}"))),
            }
        }
        if !tree.validate() {
            return Err(PredictError::Decode(format!("tree {t} failed structural validation")));
        }
        trees.push(tree);
    }
    if data.has_remaining() {
        return Err(PredictError::Decode(format!("{} trailing bytes", data.remaining())));
    }
    Ok(Booster { trees, base_score, objective, n_features })
}

impl Booster {
    /// Persist the model to a file in the binary format.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, encode(self))
    }

    /// Load a model previously written by [`Booster::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Booster, PredictError> {
        let bytes = std::fs::read(path)
            .map_err(|e| PredictError::Decode(format!("cannot read model file: {e}")))?;
        decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use msaw_tabular::Matrix;

    fn trained(objective_binary: bool) -> Booster {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 12) as f64, (i % 5) as f64]).collect();
        let x = Matrix::from_rows(&rows);
        if objective_binary {
            let y: Vec<f64> = rows.iter().map(|r| f64::from(r[0] > 5.0)).collect();
            Booster::train(&Params { n_estimators: 8, ..Params::binary(2.0) }, &x, &y).unwrap()
        } else {
            let y: Vec<f64> = rows.iter().map(|r| r[0] + 0.5 * r[1]).collect();
            Booster::train(&Params { n_estimators: 8, ..Params::regression() }, &x, &y).unwrap()
        }
    }

    #[test]
    fn round_trip_regression_model() {
        let model = trained(false);
        let decoded = decode(&encode(&model)).unwrap();
        assert_eq!(model, decoded);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = trained(true);
        let decoded = decode(&encode(&model)).unwrap();
        let row = vec![3.0, f64::NAN];
        assert_eq!(model.predict_row(&row), decoded.predict_row(&row));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&trained(false)).to_vec();
        // Chop at several points; every prefix must fail cleanly.
        for cut in [0, 3, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }

    #[test]
    fn save_load_file_round_trip() {
        let model = trained(false);
        let dir = std::env::temp_dir().join("msaw_gbdt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.msgb");
        model.save(&path).unwrap();
        let loaded = Booster::load(&path).unwrap();
        assert_eq!(model, loaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_a_decode_error() {
        let err = Booster::load("/nonexistent/path/model.msgb").unwrap_err();
        assert!(matches!(err, PredictError::Decode(_)));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }
}
