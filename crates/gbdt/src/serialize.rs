//! Compact binary (de)serialisation of trained boosters.
//!
//! Format (little endian via `bytes`):
//! `b"MSGB"` magic · `u16` version · objective tag (+payload) ·
//! `f64` base score · `u32` feature count · `u32` tree count ·
//! per tree: `u32` node count · tagged nodes.

use crate::booster::Booster;
use crate::error::PredictError;
use crate::objective::Objective;
use crate::tree::{Node, Tree};
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};

pub(crate) const MAGIC: &[u8; 4] = b"MSGB";
const VERSION: u16 = 1;

const OBJ_SQUARED: u8 = 0;
const OBJ_LOGISTIC: u8 = 1;
const NODE_LEAF: u8 = 0;
const NODE_SPLIT: u8 = 1;

/// Smallest possible on-wire tree record: the `u32` node count alone.
/// Any claimed tree count above `remaining / MIN_TREE_BYTES` cannot be
/// backed by real data, so it is rejected *before* allocating.
const MIN_TREE_BYTES: usize = 4;

/// Smallest possible on-wire node record: a leaf (`u8` tag + two
/// `f64`s). The per-tree node-count cap divides by this.
const MIN_NODE_BYTES: usize = 1 + 16;

/// Truncation guard shared by every decoder in this crate.
pub(crate) fn need(data: &[u8], n: usize, what: &str) -> Result<(), PredictError> {
    if data.remaining() < n {
        Err(PredictError::Decode(format!("truncated input while reading {what}")))
    } else {
        Ok(())
    }
}

/// Reject a claimed element count that the bytes actually remaining in
/// the buffer cannot possibly back (`min_bytes` per element), so a
/// corrupt header yields a typed error instead of a huge `with_capacity`
/// allocation (the OOM-abort DoS a 12-byte header used to be able to
/// trigger).
pub(crate) fn check_count(
    data: &[u8],
    count: usize,
    min_bytes: usize,
    what: &str,
) -> Result<(), PredictError> {
    if count > data.remaining() / min_bytes {
        return Err(PredictError::Decode(format!(
            "claimed {what} count {count} exceeds what {} remaining bytes can hold",
            data.remaining()
        )));
    }
    Ok(())
}

pub(crate) fn put_objective(buf: &mut BytesMut, objective: Objective) {
    match objective {
        Objective::SquaredError => buf.put_u8(OBJ_SQUARED),
        Objective::Logistic { scale_pos_weight } => {
            buf.put_u8(OBJ_LOGISTIC);
            buf.put_f64_le(scale_pos_weight);
        }
    }
}

pub(crate) fn get_objective(data: &mut &[u8]) -> Result<Objective, PredictError> {
    need(data, 1, "objective")?;
    match data.get_u8() {
        OBJ_SQUARED => Ok(Objective::SquaredError),
        OBJ_LOGISTIC => {
            need(data, 8, "scale_pos_weight")?;
            Ok(Objective::Logistic { scale_pos_weight: data.get_f64_le() })
        }
        other => Err(PredictError::Decode(format!("unknown objective tag {other}"))),
    }
}

/// Append one tree's record (`u32` node count, then tagged nodes).
pub(crate) fn put_tree(buf: &mut BytesMut, tree: &Tree) {
    buf.put_u32_le(tree.len() as u32);
    for node in tree.nodes() {
        match node {
            Node::Leaf { weight, cover } => {
                buf.put_u8(NODE_LEAF);
                buf.put_f64_le(*weight);
                buf.put_f64_le(*cover);
            }
            Node::Split { feature, threshold, default_left, left, right, cover, gain } => {
                buf.put_u8(NODE_SPLIT);
                buf.put_u32_le(*feature as u32);
                buf.put_f64_le(*threshold);
                buf.put_u8(u8::from(*default_left));
                buf.put_u32_le(*left as u32);
                buf.put_u32_le(*right as u32);
                buf.put_f64_le(*cover);
                buf.put_f64_le(*gain);
            }
        }
    }
}

/// Decode tree `t` of an ensemble, validating node-count plausibility
/// before allocating and tree shape + feature bounds before returning,
/// so a malformed record is a typed error naming the tree and node —
/// never a later predict-time panic or out-of-bounds read.
pub(crate) fn get_tree(
    data: &mut &[u8],
    t: usize,
    n_features: usize,
) -> Result<Tree, PredictError> {
    need(data, 4, "tree node count")?;
    let n_nodes = data.get_u32_le() as usize;
    check_count(data, n_nodes, MIN_NODE_BYTES, "node")?;
    let mut tree = Tree::new();
    for _ in 0..n_nodes {
        need(data, 1, "node tag")?;
        match data.get_u8() {
            NODE_LEAF => {
                need(data, 16, "leaf")?;
                let weight = data.get_f64_le();
                let cover = data.get_f64_le();
                tree.push(Node::Leaf { weight, cover });
            }
            NODE_SPLIT => {
                need(data, 4 + 8 + 1 + 4 + 4 + 8 + 8, "split")?;
                let feature = data.get_u32_le() as usize;
                let threshold = data.get_f64_le();
                let default_left = data.get_u8() != 0;
                let left = data.get_u32_le() as usize;
                let right = data.get_u32_le() as usize;
                let cover = data.get_f64_le();
                let gain = data.get_f64_le();
                tree.push(Node::Split {
                    feature,
                    threshold,
                    default_left,
                    left,
                    right,
                    cover,
                    gain,
                });
            }
            other => return Err(PredictError::Decode(format!("unknown node tag {other}"))),
        }
    }
    if let Err(defect) = tree.check_structure(n_features) {
        return Err(PredictError::Decode(format!("tree {t}: {defect}")));
    }
    Ok(tree)
}

/// Encode a trained model into a byte buffer.
pub fn encode(model: &Booster) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + model.trees().len() * 256);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    put_objective(&mut buf, model.objective());
    buf.put_f64_le(model.base_score());
    buf.put_u32_le(model.n_features() as u32);
    buf.put_u32_le(model.trees().len() as u32);
    for tree in model.trees() {
        put_tree(&mut buf, tree);
    }
    buf.freeze()
}

/// Decode a model previously produced by [`encode`].
///
/// Every count is checked against the bytes actually remaining before
/// any allocation, and every tree is structurally validated (child
/// indices, tree shape, split features against the feature count)
/// before it is accepted — corrupt input is always a typed
/// [`PredictError::Decode`], never a panic, OOM abort, or a model that
/// fails later at predict time.
pub fn decode(mut data: &[u8]) -> Result<Booster, PredictError> {
    need(data, 6, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PredictError::Decode("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(PredictError::Decode(format!("unsupported version {version}")));
    }
    let booster = decode_booster_body(&mut data)?;
    if data.has_remaining() {
        return Err(PredictError::Decode(format!("{} trailing bytes", data.remaining())));
    }
    Ok(booster)
}

/// The version-independent booster payload (objective, base score,
/// counts, trees) shared by the v1 format and the v2 artifact bundle.
pub(crate) fn decode_booster_body(data: &mut &[u8]) -> Result<Booster, PredictError> {
    let objective = get_objective(data)?;
    need(data, 16, "base score and counts")?;
    let base_score = data.get_f64_le();
    let n_features = data.get_u32_le() as usize;
    let n_trees = data.get_u32_le() as usize;
    check_count(data, n_trees, MIN_TREE_BYTES, "tree")?;
    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        trees.push(get_tree(data, t, n_features)?);
    }
    Ok(Booster { trees, base_score, objective, n_features })
}

impl Booster {
    /// Persist the model to a file in the binary format.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, encode(self))
    }

    /// Load a model previously written by [`Booster::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Booster, PredictError> {
        let bytes = std::fs::read(path)
            .map_err(|e| PredictError::Decode(format!("cannot read model file: {e}")))?;
        decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use msaw_tabular::Matrix;

    fn trained(objective_binary: bool) -> Booster {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 12) as f64, (i % 5) as f64]).collect();
        let x = Matrix::from_rows(&rows);
        if objective_binary {
            let y: Vec<f64> = rows.iter().map(|r| f64::from(r[0] > 5.0)).collect();
            Booster::train(&Params { n_estimators: 8, ..Params::binary(2.0) }, &x, &y).unwrap()
        } else {
            let y: Vec<f64> = rows.iter().map(|r| r[0] + 0.5 * r[1]).collect();
            Booster::train(&Params { n_estimators: 8, ..Params::regression() }, &x, &y).unwrap()
        }
    }

    #[test]
    fn round_trip_regression_model() {
        let model = trained(false);
        let decoded = decode(&encode(&model)).unwrap();
        assert_eq!(model, decoded);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = trained(true);
        let decoded = decode(&encode(&model)).unwrap();
        let row = vec![3.0, f64::NAN];
        assert_eq!(model.predict_row(&row), decoded.predict_row(&row));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&trained(false)).to_vec();
        // Chop at several points; every prefix must fail cleanly.
        for cut in [0, 3, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }

    #[test]
    fn save_load_file_round_trip() {
        let model = trained(false);
        let dir = std::env::temp_dir().join("msaw_gbdt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.msgb");
        model.save(&path).unwrap();
        let loaded = Booster::load(&path).unwrap();
        assert_eq!(model, loaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_a_decode_error() {
        let err = Booster::load("/nonexistent/path/model.msgb").unwrap_err();
        assert!(matches!(err, PredictError::Decode(_)));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode(&trained(false)).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(PredictError::Decode(_))));
    }

    /// Byte offset of the `u32` tree count in a regression-model header:
    /// magic (4) + version (2) + objective tag (1) + base score (8) +
    /// feature count (4).
    const TREE_COUNT_AT: usize = 19;

    #[test]
    fn absurd_tree_count_is_a_typed_error_not_an_allocation() {
        // A corrupt 23-byte header claiming u32::MAX trees used to
        // pre-allocate gigabytes before the first byte was read.
        let mut bytes = encode(&trained(false)).to_vec();
        bytes[TREE_COUNT_AT..TREE_COUNT_AT + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        let PredictError::Decode(msg) = err else { panic!("wrong error kind") };
        assert!(msg.contains("count"), "{msg}");
    }

    #[test]
    fn absurd_node_count_is_a_typed_error_not_an_allocation() {
        let mut bytes = encode(&trained(false)).to_vec();
        // First tree's node count sits right after the header.
        let at = TREE_COUNT_AT + 4;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        let PredictError::Decode(msg) = err else { panic!("wrong error kind") };
        assert!(msg.contains("count"), "{msg}");
    }

    /// A booster whose single tree is handed in unvalidated — the
    /// encode path trusts training, so this produces artifacts with the
    /// defects a corrupted file could carry.
    fn booster_with_tree(tree: Tree, n_features: usize) -> Booster {
        Booster {
            trees: vec![tree],
            base_score: 0.5,
            objective: crate::objective::Objective::SquaredError,
            n_features,
        }
    }

    fn split(feature: usize, left: usize, right: usize) -> Node {
        Node::Split {
            feature,
            threshold: 1.0,
            default_left: true,
            left,
            right,
            cover: 2.0,
            gain: 0.1,
        }
    }

    fn leaf() -> Node {
        Node::Leaf { weight: 0.25, cover: 1.0 }
    }

    #[test]
    fn split_feature_out_of_range_is_rejected_at_decode() {
        // feature 7 on a 2-feature model: used to decode cleanly, then
        // read out of bounds (or panic) at predict time.
        let mut tree = Tree::new();
        tree.push(split(7, 1, 2));
        tree.push(leaf());
        tree.push(leaf());
        let bytes = encode(&booster_with_tree(tree, 2));
        let err = decode(&bytes).unwrap_err();
        let PredictError::Decode(msg) = err else { panic!("wrong error kind") };
        assert!(
            msg.contains("tree 0") && msg.contains("node 0") && msg.contains("feature 7"),
            "{msg}"
        );
    }

    #[test]
    fn child_index_out_of_range_is_rejected_at_decode() {
        let mut tree = Tree::new();
        tree.push(split(0, 1, 5));
        tree.push(leaf());
        tree.push(leaf());
        let bytes = encode(&booster_with_tree(tree, 2));
        let err = decode(&bytes).unwrap_err();
        let PredictError::Decode(msg) = err else { panic!("wrong error kind") };
        assert!(msg.contains("tree 0") && msg.contains("child index 5"), "{msg}");
    }

    #[test]
    fn cyclic_tree_is_rejected_at_decode() {
        // Root's left child points back at the root: an infinite
        // predict-time loop had this decoded.
        let mut tree = Tree::new();
        tree.push(split(0, 0, 1));
        tree.push(leaf());
        let bytes = encode(&booster_with_tree(tree, 2));
        let err = decode(&bytes).unwrap_err();
        let PredictError::Decode(msg) = err else { panic!("wrong error kind") };
        assert!(msg.contains("tree 0") && msg.contains("more than one parent"), "{msg}");
    }
}
